//! Push observation end to end: a producer streams heartbeats to a
//! collector, and an observer — written once against the unified `Observe`
//! trait — receives *pushed* snapshots and health transitions instead of
//! polling. The same `watch` function also runs unchanged against the
//! in-process reader, demonstrating the point of the unification.
//!
//! ```text
//! cargo run --example observe_push
//! ```

use std::sync::Arc;
use std::time::Duration;

use app_heartbeats::heartbeats::observe::{
    Interest, Observe, ObserveEventKind, ObserveFilter,
};
use app_heartbeats::heartbeats::{Backend, HeartbeatBuilder};
use app_heartbeats::net::{Collector, RemoteReader, TcpBackend};

/// One observer, any transport: subscribe, then narrate what is pushed.
/// Nothing in here knows whether `source` is local, shared-memory, or a
/// remote collector client.
fn watch(label: &str, source: &impl Observe, events: usize) {
    let filter = ObserveFilter::new(Interest::SNAPSHOTS | Interest::HEALTH)
        .min_interval(Duration::from_millis(50));
    let stream = source.subscribe(&filter).expect("subscribe");
    println!("[{label}] subscribed to {:?}", source.name());
    for event in stream.take(events) {
        match event.kind {
            ObserveEventKind::Snapshot(snapshot) => println!(
                "[{label}] {} snapshot: {} beats, rate {:?}",
                event.app, snapshot.total_beats, snapshot.rate_bps
            ),
            ObserveEventKind::Health { from, to } => {
                println!("[{label}] {} health: {from:?} -> {to:?}", event.app)
            }
            ObserveEventKind::Beats { beats, .. } => {
                println!("[{label}] {} beats: {} records", event.app, beats.len())
            }
        }
    }
}

fn main() {
    // A collector on ephemeral loopback ports.
    let collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").expect("bind collector");

    // The producer: an ordinary heartbeat-instrumented application whose
    // beats are mirrored to the collector.
    let backend = Arc::new(TcpBackend::new(
        collector.ingest_addr().to_string(),
        "worker",
    ));
    let hb = HeartbeatBuilder::new("worker")
        .backend(Arc::clone(&backend) as Arc<dyn Backend>)
        .build()
        .expect("build heartbeat");
    let producer = std::thread::spawn(move || {
        for _ in 0..200 {
            hb.heartbeat();
            std::thread::sleep(Duration::from_millis(5));
        }
        hb.flush().expect("flush");
    });

    // Remote observation: pushed events over a real connection — after the
    // subscription handshake the observer issues zero requests.
    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );
    let remote = reader.app("worker");
    watch("remote", &remote, 6);

    // Local observation with the identical code: the reader synthesizes
    // the same event stream from in-process state.
    let local_hb = HeartbeatBuilder::new("local-worker")
        .build()
        .expect("build local heartbeat");
    let local_reader = local_hb.reader();
    let beater = std::thread::spawn(move || {
        for _ in 0..100 {
            local_hb.heartbeat();
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    watch("local", &local_reader, 4);

    producer.join().expect("producer");
    beater.join().expect("beater");
    println!(
        "collector answered {} queries while pushing {} events",
        collector.state().queries_total(),
        collector.state().events_total()
    );
}
