//! The paper's Section 5.3 experiment as a runnable example: an external
//! scheduler reads an application's heartbeats and adjusts its core
//! allocation to hold the declared performance window with as few cores as
//! possible.
//!
//! Run with: `cargo run --example external_scheduler`

use app_heartbeats::prelude::*;
use app_heartbeats::scheduler::ExternalScheduler;
use app_heartbeats::workloads::parsec;

fn main() {
    let machine = Machine::paper_testbed();

    // The application: the Figure 5 bodytrack input, beating once per frame.
    // It declares the 2.5-3.5 beat/s goal through the Heartbeats API.
    let mut workload = SimWorkload::with_window(parsec::bodytrack_fig5(), &machine, 10);
    workload
        .heartbeat()
        .set_target_rate(2.5, 3.5)
        .expect("valid target");

    // The external observer: reads heartbeats, controls cores. It starts the
    // application on a single core.
    let mut scheduler =
        ExternalScheduler::paper_defaults(workload.reader(), machine.total_cores(), 10, 3);

    println!("{:>5}  {:>10}  {:>5}", "beat", "rate (b/s)", "cores");
    while !workload.is_done() {
        workload.step(scheduler.cores());
        scheduler.tick();
        let beat = workload.items_done();
        if beat.is_multiple_of(20) {
            let rate = workload.reader().current_rate(10).unwrap_or(0.0);
            println!("{beat:>5}  {rate:>10.2}  {:>5}", scheduler.cores());
        }
    }

    let changes = scheduler.changes();
    println!("\nallocation changes: {changes}");
    println!(
        "final allocation:   {} core(s) — the load dropped at beat 141, so the scheduler\n\
         reclaimed cores while keeping the application inside its 2.5-3.5 beat/s window.",
        scheduler.cores()
    );
}
