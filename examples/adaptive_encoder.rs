//! The paper's Section 5.2 experiment as a runnable example: a video encoder
//! that watches its own heart rate and trades image quality for speed until
//! it meets its 30 frames-per-second goal.
//!
//! Run with: `cargo run --example adaptive_encoder`

use app_heartbeats::encoder::{AdaptiveEncoder, VideoTrace};
use app_heartbeats::heartbeats::MovingRate;
use app_heartbeats::sim::Machine;

fn main() {
    let machine = Machine::paper_testbed();
    let trace = VideoTrace::demanding_uniform(640, 42);
    let mut encoder = AdaptiveEncoder::paper_configuration(trace, &machine);

    println!("encoding {} frames; goal: >= {} frames/s\n", 640, encoder.target_min_bps());
    println!("{:>6}  {:>10}  {:>8}  config", "frame", "rate (f/s)", "ladder");

    let mut moving = MovingRate::new(40);
    while let Some(_frame) = encoder.encode_next(8) {
        let frames = encoder.frames_encoded();
        let rate = moving.push(encoder.heartbeat().last_beat_ns().unwrap());
        if frames.is_multiple_of(80) {
            println!(
                "{frames:>6}  {:>10.1}  {:>8}  {:?}",
                rate.unwrap_or(0.0),
                encoder.level(),
                encoder.config().motion_estimation
            );
        }
    }

    println!("\nadaptation decisions:");
    for adaptation in encoder.adaptations() {
        println!(
            "  frame {:>4}: rate {:>5.1} f/s below goal -> ladder step {} -> {}",
            adaptation.at_frame,
            adaptation.observed_rate_bps,
            adaptation.from_level,
            adaptation.to_level
        );
    }
    println!(
        "\nfinal 40-frame rate: {:.1} f/s (started near 8.8 f/s with the demanding settings)",
        encoder.reader().current_rate(40).unwrap()
    );
}
