//! The Section 2.6 "cloud computing" scenario: a load balancer that routes
//! requests to worker nodes based on their heartbeats, detects a failing node
//! from its slowing heart rate, and fails over before the node dies entirely.
//!
//! Run with: `cargo run --example cloud_load_balancer`

use std::sync::Arc;

use app_heartbeats::heartbeats::{
    HealthStatus, Heartbeat, HeartbeatBuilder, ManualClock, Registry, Tag,
};

/// One simulated worker node: serves requests at `requests_per_sec`, beating
/// once per request. A node can degrade (slow down) or die (stop beating).
struct WorkerNode {
    name: String,
    hb: Heartbeat,
    clock: ManualClock,
    requests_per_sec: f64,
    alive: bool,
}

impl WorkerNode {
    fn new(registry: &Registry, name: &str, requests_per_sec: f64) -> Self {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new(name)
            .window(20)
            .clock(Arc::new(clock.clone()))
            .register_in(registry)
            .build()
            .unwrap();
        // Every node promises at least 50 requests/s to the balancer.
        hb.set_target_rate(50.0, 500.0).unwrap();
        WorkerNode {
            name: name.to_string(),
            hb,
            clock,
            requests_per_sec,
            alive: true,
        }
    }

    /// Serves `n` requests (or silently drops them if the node has died —
    /// time still passes, but no heartbeats are produced).
    fn serve(&self, n: u64) {
        for i in 0..n {
            self.clock.advance_secs(1.0 / self.requests_per_sec);
            if self.alive {
                self.hb.heartbeat_tagged(Tag::new(i));
            }
        }
        if !self.alive {
            // Even a dead node's wall clock advances while the balancer waits.
            self.clock.advance_secs(n as f64 / self.requests_per_sec);
        }
    }
}

fn main() {
    let registry = Registry::new();
    let mut nodes = vec![
        WorkerNode::new(&registry, "node-a", 120.0),
        WorkerNode::new(&registry, "node-b", 110.0),
        WorkerNode::new(&registry, "node-c", 130.0),
    ];

    println!("round  node-a        node-b        node-c        balancer decision");
    for round in 1..=8 {
        // Inject trouble: node-b degrades at round 3 and dies at round 6.
        if round == 3 {
            nodes[1].requests_per_sec = 30.0;
        }
        if round == 6 {
            nodes[1].alive = false;
        }

        // Every node serves a batch of requests.
        for node in &nodes {
            node.serve(40);
        }

        // The balancer only looks at heartbeat data: rate vs the declared
        // target, and time since the last beat.
        let mut statuses = Vec::new();
        let mut decision = String::new();
        for node in &nodes {
            let reader = registry.attach(&node.name).unwrap();
            let rate = reader.current_rate(0).unwrap_or(0.0);
            let stale_after = 1_000_000_000; // 1 s without a beat = presumed dead
            let health = reader.health(stale_after);
            let label = match health {
                HealthStatus::Alive if rate >= reader.target_min() => format!("{rate:6.1} ok  "),
                HealthStatus::Alive => format!("{rate:6.1} SLOW"),
                HealthStatus::Stalled => "  ---  DEAD".to_string(),
                HealthStatus::NeverBeat => "  ---  new ".to_string(),
            };
            statuses.push(label);
            match health {
                HealthStatus::Stalled => {
                    decision = format!("fail over: drain {} and restart it", node.name)
                }
                HealthStatus::Alive if rate < reader.target_min() && decision.is_empty() => {
                    decision = format!("shift new traffic away from {}", node.name)
                }
                _ => {}
            }
        }
        if decision.is_empty() {
            decision = "all nodes healthy: route round-robin".to_string();
        }
        println!(
            "{round:>5}  {}  {}  {}  {}",
            statuses[0], statuses[1], statuses[2], decision
        );
    }

    println!(
        "\nThe balancer never inspects CPU load or machine metrics — only heart rates vs\n\
         declared goals (slow node) and beat staleness (dead node), as proposed in the\n\
         paper's cloud-computing discussion."
    );
}
