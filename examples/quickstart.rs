//! Quickstart: instrument a loop with Application Heartbeats, declare a goal,
//! and observe progress from both inside and outside the "application".
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use app_heartbeats::heartbeats::{
    HealthStatus, HeartbeatBuilder, ManualClock, Registry, Tag, TargetStatus,
};

fn main() {
    // A virtual clock makes the example deterministic; real applications
    // simply omit `.clock(...)` and get wall-clock time.
    let clock = ManualClock::new();
    let registry = Registry::new();

    // HB_initialize: default window of 20 beats, discoverable by name.
    let hb = HeartbeatBuilder::new("quickstart-worker")
        .window(20)
        .clock(Arc::new(clock.clone()))
        .register_in(&registry)
        .build()
        .expect("valid heartbeat configuration");

    // HB_set_target_rate: we want 40-60 items per second.
    hb.set_target_rate(40.0, 60.0).expect("valid target");

    // An external observer attaches through the registry, exactly like the
    // paper's OS-level scheduler would.
    let observer = registry.attach("quickstart-worker").expect("registered");

    // The "application": three phases with different per-item costs.
    let phases = [(100u64, 0.030_f64), (100, 0.012), (100, 0.050)];
    for (phase, &(items, seconds_per_item)) in phases.iter().enumerate() {
        for item in 0..items {
            clock.advance_secs(seconds_per_item); // ... do one unit of work ...
            hb.heartbeat_tagged(Tag::new(item)); // HB_heartbeat
        }
        let rate = hb.current_rate(0).unwrap(); // HB_current_rate(default window)
        let verdict = match hb.target_status(0) {
            TargetStatus::BelowTarget => "below target  -> need more resources or less work",
            TargetStatus::WithinTarget => "within target -> all good",
            TargetStatus::AboveTarget => "above target  -> could release resources",
            TargetStatus::NoTarget => "no target set",
        };
        println!("phase {phase}: {rate:6.1} beats/s  {verdict}");
    }

    // The external observer sees the same information without touching the
    // application: rate, history, goals and liveness.
    println!("\n-- external observer --");
    println!("total beats:        {}", observer.total_beats());
    println!("lifetime average:   {:.1} beats/s", observer.global_average_rate().unwrap());
    println!(
        "declared goal:      {:?} beats/s",
        observer.target().expect("goal was declared")
    );
    let last = observer.history(3);
    println!("last 3 heartbeats:  {last:?}");
    let health = observer.health(1_000_000_000);
    assert_eq!(health, HealthStatus::Alive);
    println!("health:             {health:?}");
}
