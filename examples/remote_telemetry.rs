//! Remote telemetry end to end: N simulated services mirror their heartbeat
//! streams over TCP to one collector daemon; a remote observer reads every
//! service's rate and goals off the collector, and a control loop drives one
//! service back into its declared performance window — all without touching
//! the producing threads.
//!
//! Run with: `cargo run --example remote_telemetry`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use app_heartbeats::control::{RateMonitor, StepController};
use app_heartbeats::heartbeats::{Backend, HeartbeatBuilder};
use app_heartbeats::net::{Collector, RemoteReader, TcpBackend, TcpBackendConfig};
use app_heartbeats::prelude::Controller;

/// One simulated service: beats on every "request served". Its service rate
/// is `workers * RATE_PER_WORKER`, so adding workers is the actuator.
struct Service {
    name: &'static str,
    workers: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

const RATE_PER_WORKER: f64 = 40.0; // requests/s each worker can serve

impl Service {
    fn spawn(name: &'static str, ingest: String, workers: u64, target: Option<(f64, f64)>) -> Self {
        let workers = Arc::new(AtomicU64::new(workers));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let workers = Arc::clone(&workers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let backend = Arc::new(TcpBackend::with_config(
                    ingest,
                    name,
                    TcpBackendConfig {
                        flush_interval: Duration::from_millis(2),
                        default_window: 20,
                        ..TcpBackendConfig::default()
                    },
                ));
                let hb = HeartbeatBuilder::new(name)
                    .window(20)
                    .backend(Arc::clone(&backend) as Arc<dyn Backend>)
                    .build()
                    .expect("valid heartbeat config");
                if let Some((min, max)) = target {
                    hb.set_target_rate(min, max).expect("valid target");
                }
                while !stop.load(Ordering::Relaxed) {
                    let rate = workers.load(Ordering::Relaxed) as f64 * RATE_PER_WORKER;
                    std::thread::sleep(Duration::from_secs_f64(1.0 / rate));
                    hb.heartbeat();
                }
                hb.flush().ok();
            })
        };
        Service {
            name,
            workers,
            stop,
            thread: Some(thread),
        }
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("service thread");
        }
    }
}

fn main() {
    // The collector daemon (in production: `hb-collector` on another host).
    let collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").expect("bind collector");
    let ingest = collector.ingest_addr().to_string();
    println!(
        "collector up: ingest={} query={}\n",
        collector.ingest_addr(),
        collector.query_addr()
    );

    // Three services. `search` starts undersized for its 180-220 req/s goal;
    // the other two are steady background tenants without goals.
    let mut services = vec![
        Service::spawn("search", ingest.clone(), 2, Some((180.0, 220.0))),
        Service::spawn("thumbnails", ingest.clone(), 1, None),
        Service::spawn("checkout", ingest, 3, None),
    ];

    // The remote observer: a reader over the query port, plus a step
    // controller that scales `search` workers from the collector's view.
    let reader =
        Arc::new(RemoteReader::connect(collector.query_addr().to_string()).expect("connect"));
    let mut monitor = RateMonitor::new(reader.app("search")).with_check_every(20);
    let mut controller = StepController::default();

    println!(
        "{:>4}  {:<12} {:>12}  {:>14}  {:>8}",
        "tick", "service", "rate (b/s)", "target", "workers"
    );
    for tick in 1..=20 {
        std::thread::sleep(Duration::from_millis(150));

        // Control loop for `search`, fed entirely by remote observations.
        if let Some(obs) = monitor.poll() {
            if let (Some(rate), Some(target)) = (obs.rate_bps, obs.target) {
                let level = services[0].workers.load(Ordering::Relaxed) as f64;
                let desired = controller.desired_level(rate, target, level).round().max(1.0);
                if (desired - level).abs() >= 1.0 {
                    services[0].workers.store(desired as u64, Ordering::Relaxed);
                }
            }
        }

        if tick % 5 == 0 {
            for service in &services {
                let snap = reader
                    .snapshot(service.name)
                    .ok()
                    .flatten()
                    .expect("service registered");
                let rate = snap
                    .rate_bps
                    .map(|r| format!("{r:.1}"))
                    .unwrap_or_else(|| "n/a".into());
                let target = snap
                    .target
                    .map(|(min, max)| format!("[{min:.0}, {max:.0}]"))
                    .unwrap_or_else(|| "unset".into());
                println!(
                    "{tick:>4}  {:<12} {rate:>12}  {target:>14}  {:>8}",
                    service.name,
                    service.workers.load(Ordering::Relaxed)
                );
            }
        }
    }

    // Final state, straight from the Prometheus export.
    println!("\nPrometheus export (excerpt):");
    for line in reader
        .metrics()
        .expect("metrics")
        .lines()
        .filter(|l| l.starts_with("hb_app_rate_bps") || l.starts_with("hb_app_target"))
    {
        println!("  {line}");
    }

    let final_rate = reader
        .snapshot("search")
        .ok()
        .flatten()
        .and_then(|s| s.rate_bps)
        .unwrap_or(0.0);
    println!(
        "\nsearch settled at {final_rate:.1} req/s with {} workers (goal 180-220)",
        services[0].workers.load(Ordering::Relaxed)
    );

    for service in &mut services {
        service.stop();
    }
}
