//! Reproduces Table 2 of the paper from the example side: runs each
//! PARSEC-like workload on the simulated eight-core machine and prints where
//! its heartbeat is registered and the average heart rate achieved.
//!
//! Run with: `cargo run --example parsec_table`

use app_heartbeats::sim::Machine;
use app_heartbeats::workloads::{parsec, SimWorkload, PAPER_TESTBED_CORES};

fn main() {
    println!(
        "{:<14}  {:<22}  {:>12}  {:>14}",
        "Benchmark", "Heartbeat Location", "Paper (b/s)", "Measured (b/s)"
    );
    println!("{}", "-".repeat(70));
    for spec in parsec::all_table2() {
        let paper = parsec::paper_rate(&spec.name).unwrap();
        let name = spec.name.clone();
        let location = spec.heartbeat_location.clone();
        let machine = Machine::paper_testbed();
        let mut workload = SimWorkload::new(spec, &machine);
        let summary = workload.run_to_completion(PAPER_TESTBED_CORES);
        println!(
            "{name:<14}  {location:<22}  {paper:>12.2}  {:>14.2}",
            summary.average_rate_bps
        );
    }
    println!(
        "\nEach workload registers its heartbeat exactly where the paper's instrumentation\n\
         does (one beat per frame, per query, per 25 000 options, ...), and the simulated\n\
         eight-core machine is calibrated so the native-input averages match Table 2."
    );
}
