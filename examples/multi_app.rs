//! Multi-application arbitration: two heartbeat-enabled applications share an
//! eight-core machine; the scheduler moves cores toward the one missing its
//! goal, the "organic operating system" use case from Section 2.4 of the
//! paper.
//!
//! Run with: `cargo run --example multi_app`

use std::sync::Arc;

use app_heartbeats::heartbeats::{Heartbeat, HeartbeatBuilder, ManualClock};
use app_heartbeats::scheduler::MultiAppScheduler;

struct SimApp {
    hb: Heartbeat,
    clock: ManualClock,
    /// Beats per second contributed by each core this app is granted.
    per_core_rate: f64,
}

impl SimApp {
    fn new(name: &str, per_core_rate: f64, target: (f64, f64)) -> Self {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new(name)
            .window(10)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        hb.set_target_rate(target.0, target.1).unwrap();
        SimApp {
            hb,
            clock,
            per_core_rate,
        }
    }

    fn produce(&self, cores: usize, beats: usize) {
        let rate = self.per_core_rate * cores.max(1) as f64;
        for _ in 0..beats {
            self.clock.advance_secs(1.0 / rate);
            self.hb.heartbeat();
        }
    }
}

fn main() {
    // "render" needs lots of cores to hit 5-6 beats/s; "telemetry" is happy
    // on a single core.
    let render = SimApp::new("render", 1.0, (5.0, 6.0));
    let telemetry = SimApp::new("telemetry", 10.0, (5.0, 11.0));

    let mut scheduler = MultiAppScheduler::new(8, 10);
    scheduler.add_app(render.hb.reader());
    scheduler.add_app(telemetry.hb.reader());

    println!("{:>6}  {:>8}  {:>10}", "round", "render", "telemetry");
    for round in 1..=25 {
        render.produce(scheduler.cores_of("render"), 3);
        telemetry.produce(scheduler.cores_of("telemetry"), 3);
        scheduler.rebalance();
        if round % 5 == 0 {
            println!(
                "{round:>6}  {:>8}  {:>10}",
                scheduler.cores_of("render"),
                scheduler.cores_of("telemetry")
            );
        }
    }

    println!(
        "\nfinal allocation: render={} cores, telemetry={} cores (of 8)\n\
         Cores flow to the application whose heart rate misses its declared goal.",
        scheduler.cores_of("render"),
        scheduler.cores_of("telemetry")
    );
}
