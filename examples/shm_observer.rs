//! Cross-process observability: the producer mirrors its heartbeats into a
//! POSIX shared-memory segment (and a log file), and an independent observer
//! attaches to the segment by name — the way the paper's reference
//! implementation exposes heartbeat data to external services.
//!
//! Run with: `cargo run --example shm_observer`

use std::sync::Arc;

use app_heartbeats::heartbeats::{HeartbeatBuilder, ManualClock, Tag};
use app_heartbeats::shm::{FileBackend, FileObserver, ShmBackend, ShmObserver, ShmSegment};

fn main() {
    let shm_name = format!("hb-example-{}", std::process::id());
    let log_path = std::env::temp_dir().join(format!("hb-example-{}.log", std::process::id()));

    // ---- producer side -------------------------------------------------
    let clock = ManualClock::new();
    let hb = HeartbeatBuilder::new("shm-producer")
        .window(20)
        .clock(Arc::new(clock.clone()))
        .backend(Arc::new(
            ShmBackend::create(&shm_name, 4096, 20).expect("shared memory available"),
        ))
        .backend(Arc::new(FileBackend::create(&log_path).expect("log file writable")))
        .build()
        .expect("valid heartbeat configuration");
    hb.set_target_rate(90.0, 110.0).expect("valid target");

    for item in 0..500u64 {
        clock.advance_secs(0.01); // 100 items/s
        hb.heartbeat_tagged(Tag::new(item));
    }
    hb.flush().expect("log flushed");

    // ---- observer side (would normally be a different process) ---------
    let shm = ShmObserver::attach(&shm_name).expect("segment exists");
    println!("-- shared-memory observer --");
    println!("total beats:   {}", shm.total_beats());
    println!("target:        {:?}", shm.target());
    println!("current rate:  {:.1} beats/s", shm.current_rate(0).unwrap());
    println!("last 3 beats:  {:?}", shm.history(3));

    let file = FileObserver::new(&log_path);
    println!("\n-- file-log observer --");
    println!("total beats:   {}", file.total_beats());
    println!("target:        {:?}", file.target());
    println!("current rate:  {:.1} beats/s", file.current_rate(20).unwrap());

    // Clean up the named resources created by the example.
    ShmSegment::unlink(&shm_name).ok();
    std::fs::remove_file(&log_path).ok();
}
