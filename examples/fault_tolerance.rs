//! The paper's Section 5.4 experiment as a runnable example: cores fail while
//! a video encoder runs; the heartbeat-driven adaptive encoder absorbs the
//! failures by trading quality for speed, the unmodified encoder does not.
//!
//! Run with: `cargo run --example fault_tolerance`

use app_heartbeats::encoder::{AdaptiveEncoder, EncoderConfig, EncoderModel, HbEncoder, VideoTrace};
use app_heartbeats::heartbeats::MovingRate;
use app_heartbeats::scheduler::FaultInjector;
use app_heartbeats::sim::Machine;

fn run_unmodified(trace: VideoTrace) -> Vec<(u64, f64)> {
    let mut machine = Machine::paper_testbed();
    let mut injector = FaultInjector::paper_figure8();
    let mut encoder = HbEncoder::new(
        trace,
        EncoderModel::figure8(),
        EncoderConfig::paper_demanding(),
        &machine.clone(),
    );
    let mut moving = MovingRate::new(20);
    let mut samples = Vec::new();
    while !encoder.is_done() {
        injector.apply(encoder.frames_encoded(), &mut machine);
        encoder.encode_next(machine.working_cores());
        if let Some(rate) = moving.push(encoder.heartbeat().last_beat_ns().unwrap()) {
            samples.push((encoder.frames_encoded(), rate));
        }
    }
    samples
}

fn run_adaptive(trace: VideoTrace) -> Vec<(u64, f64)> {
    let mut machine = Machine::paper_testbed();
    let mut injector = FaultInjector::paper_figure8();
    let mut encoder = AdaptiveEncoder::new(trace, EncoderModel::figure8(), &machine.clone(), 40, 30.0);
    let mut moving = MovingRate::new(20);
    let mut samples = Vec::new();
    while !encoder.is_done() {
        if let Some(fault) = injector.apply(encoder.frames_encoded(), &mut machine) {
            println!(
                "  !! core failure at beat {} ({} cores remain)",
                fault.at_beat, fault.working_after
            );
        }
        encoder.encode_next(machine.working_cores());
        if let Some(rate) = moving.push(encoder.heartbeat().last_beat_ns().unwrap()) {
            samples.push((encoder.frames_encoded(), rate));
        }
    }
    samples
}

fn main() {
    let trace = VideoTrace::demanding_uniform(640, 7);
    println!("running the unmodified encoder under core failures...");
    let unhealthy = run_unmodified(trace.clone());
    println!("running the adaptive encoder under core failures...");
    let adaptive = run_adaptive(trace);

    println!("\n{:>6}  {:>12}  {:>12}", "frame", "unmodified", "adaptive");
    for checkpoint in [100u64, 200, 300, 400, 500, 600] {
        let pick = |samples: &[(u64, f64)]| {
            samples
                .iter()
                .rev()
                .find(|&&(frame, _)| frame <= checkpoint)
                .map(|&(_, rate)| rate)
                .unwrap_or(0.0)
        };
        println!(
            "{checkpoint:>6}  {:>12.1}  {:>12.1}",
            pick(&unhealthy),
            pick(&adaptive)
        );
    }
    println!(
        "\nThe adaptive encoder never learns which cores failed — it only sees its heart\n\
         rate drop below 30 beats/s and switches to cheaper encoding algorithms."
    );
}
