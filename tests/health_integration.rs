//! End-to-end loopback tests of the health subsystem: a producer
//! (`TcpBackend`) streams into a collector whose history ring and windowed
//! anomaly detector are then read back three ways — binary
//! `RemoteReader::{history, health}` queries, the `HISTORY`/`HEALTH`/`HELP`
//! line protocol, and the `hb_app_health` Prometheus gauge — and finally
//! drive a health-guarded control loop.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use app_heartbeats::control::{
    DiscreteActuator, HealthLevel, HealthSource, RateMonitor, StepController,
};
use app_heartbeats::net::{
    Collector, CollectorConfig, HealthConfig, HealthStatus, RemoteReader, TcpBackend,
    TcpBackendConfig,
};

/// Polls `probe` until it returns `Some` or the timeout elapses.
fn wait_for<T>(timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> Option<T> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(value) = probe() {
            return Some(value);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A collector with a short health window, plus a connected producer.
fn rig(app: &str, window: Duration) -> (Collector, Arc<TcpBackend>, app_heartbeats::heartbeats::Heartbeat) {
    let collector = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            health: HealthConfig {
                window,
                // Sleep-paced test producers jitter with the scheduler;
                // only genuine pathologies should trip the detector here.
                jitter_cv: 10.0,
                ..HealthConfig::default()
            },
            ..CollectorConfig::default()
        },
    )
    .expect("bind collector");
    let backend = Arc::new(TcpBackend::with_config(
        collector.ingest_addr().to_string(),
        app,
        TcpBackendConfig {
            flush_interval: Duration::from_millis(2),
            ..TcpBackendConfig::default()
        },
    ));
    let hb = app_heartbeats::heartbeats::HeartbeatBuilder::new(app)
        .backend(Arc::clone(&backend) as Arc<dyn app_heartbeats::heartbeats::Backend>)
        .build()
        .expect("build heartbeat");
    (collector, backend, hb)
}

/// The acceptance scenario: a producer that stalls mid-run is reported
/// `Stalled` by `RemoteReader::health()` within one health window, then
/// `Healthy` again after resuming.
#[test]
fn stall_is_detected_and_recovery_observed() {
    const WINDOW: Duration = Duration::from_millis(400);
    let (collector, _backend, hb) = rig("stall-app", WINDOW);
    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );

    // Phase 1: steady beating -> Healthy.
    for _ in 0..30 {
        std::thread::sleep(Duration::from_millis(2));
        hb.heartbeat();
    }
    hb.flush().expect("flush");
    let healthy = wait_for(Duration::from_secs(5), || {
        reader
            .health("stall-app")
            .ok()
            .flatten()
            .filter(|r| r.status == HealthStatus::Healthy)
    })
    .expect("steady producer reported healthy");
    assert!(healthy.window_beats >= 2);
    assert!(healthy.reasons.is_empty());

    // Phase 2: the producer stalls mid-run. Within one health window (plus
    // scheduling slack) the collector must report Stalled.
    let stalled = wait_for(WINDOW * 5, || {
        reader
            .health("stall-app")
            .ok()
            .flatten()
            .filter(|r| r.status == HealthStatus::Stalled)
    })
    .expect("stalled producer reported Stalled within the window");
    assert!(
        stalled.silent_ns >= WINDOW.as_nanos() as u64,
        "stall report carries the silence duration"
    );

    // Phase 3: the producer resumes; health returns to Healthy.
    for _ in 0..30 {
        std::thread::sleep(Duration::from_millis(2));
        hb.heartbeat();
    }
    hb.flush().expect("flush");
    wait_for(Duration::from_secs(5), || {
        reader
            .health("stall-app")
            .ok()
            .flatten()
            .filter(|r| r.status == HealthStatus::Healthy)
    })
    .expect("resumed producer reported Healthy again");
}

#[test]
fn history_flows_to_remote_observers() {
    let (collector, _backend, hb) = rig("hist-app", Duration::from_secs(5));
    const BEATS: u64 = 40;
    for _ in 0..BEATS {
        std::thread::sleep(Duration::from_millis(1));
        hb.heartbeat();
    }
    hb.flush().expect("flush");

    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );
    // Binary path: the full ring arrives once every beat landed.
    let chunk = wait_for(Duration::from_secs(10), || {
        reader
            .history("hist-app", 0)
            .ok()
            .flatten()
            .filter(|c| c.total >= BEATS)
    })
    .expect("history reaches the remote reader");
    assert_eq!(chunk.app, "hist-app");
    assert_eq!(chunk.samples.len() as u64, chunk.total, "ring not yet full");
    let timestamps: Vec<u64> = chunk.samples.iter().map(|s| s.timestamp_ns).collect();
    let mut sorted = timestamps.clone();
    sorted.sort_unstable();
    assert_eq!(timestamps, sorted, "samples are chronological");
    assert!(
        chunk.samples.last().unwrap().rate_bps.is_some(),
        "late samples carry the at-ingest rate estimate"
    );

    // Limited query returns exactly the newest n.
    let tail = reader
        .history("hist-app", 5)
        .expect("limited history")
        .expect("known app");
    assert_eq!(tail.samples.len(), 5);
    assert_eq!(
        tail.samples.last().unwrap().timestamp_ns,
        *timestamps.last().unwrap()
    );

    // Unknown apps are None, not an error.
    assert!(reader.history("ghost", 0).expect("query ok").is_none());
    assert!(reader.health("ghost").expect("query ok").is_none());

    // Mixing line and binary queries on the same connection works.
    reader.ping().expect("ping after binary queries");
    assert_eq!(reader.apps().expect("LIST"), vec!["hist-app".to_string()]);

    // The health status also lands in the Prometheus export.
    let metrics = reader.metrics().expect("METRICS");
    assert!(
        metrics.contains("hb_app_health{app=\"hist-app\"}"),
        "metrics: {metrics}"
    );
}

/// The `HISTORY` and `HELP` line commands over a raw query-port socket.
#[test]
fn history_and_help_over_the_line_protocol() {
    let (collector, _backend, hb) = rig("line-app", Duration::from_secs(5));
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(1));
        hb.heartbeat();
    }
    hb.flush().expect("flush");

    // Wait until the collector absorbed everything.
    let state = collector.state();
    wait_for(Duration::from_secs(10), || {
        (state.snapshot("line-app")?.total_beats >= 10).then_some(())
    })
    .expect("beats ingested");

    let stream = TcpStream::connect(collector.query_addr()).expect("connect query port");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut conn = BufReader::new(stream);
    fn send(conn: &BufReader<TcpStream>, cmd: &str) {
        conn.get_ref()
            .write_all(cmd.as_bytes())
            .expect("send command");
    }
    fn lines_until_end(conn: &mut BufReader<TcpStream>) -> Vec<String> {
        let mut out = Vec::new();
        loop {
            let mut line = String::new();
            conn.read_line(&mut line).expect("read line");
            if line.trim() == "END" {
                return out;
            }
            out.push(line.trim().to_string());
        }
    }

    send(&conn, "HISTORY line-app\n");
    let history = lines_until_end(&mut conn);
    assert!(
        history[0].starts_with("HISTORY app=line-app total=10 count=10"),
        "header: {}",
        history[0]
    );
    assert_eq!(history.len(), 11, "header + one S line per sample");
    assert!(history[1].starts_with("S seq="));

    send(&conn, "HEALTH line-app\n");
    let mut health = String::new();
    conn.read_line(&mut health).expect("read health");
    assert!(
        health.starts_with("HEALTH app=line-app status="),
        "health: {health}"
    );

    send(&conn, "HELP\n");
    let help = lines_until_end(&mut conn).join("\n");
    for command in ["PING", "LIST", "GET", "HISTORY", "HEALTH", "METRICS", "STATS", "QUIT"] {
        assert!(help.contains(command), "HELP must document {command}");
    }
}

/// A guarded control loop driven end-to-end from the collector: acts while
/// the producer is alive, holds while it is stalled.
#[test]
fn guarded_control_loop_holds_on_remote_stall() {
    const WINDOW: Duration = Duration::from_millis(300);
    let (collector, _backend, hb) = rig("ctl-app", WINDOW);
    hb.set_target_rate(10_000.0, 20_000.0).expect("target");
    for _ in 0..30 {
        std::thread::sleep(Duration::from_millis(2));
        hb.heartbeat();
    }
    hb.flush().expect("flush");

    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );
    let remote = reader.app("ctl-app");
    wait_for(Duration::from_secs(5), || {
        remote.health_level().is_actionable().then_some(())
    })
    .expect("remote app actionable while beating");

    let monitor = RateMonitor::new(reader.app("ctl-app")).with_check_every(1);
    let mut control = app_heartbeats::control::ControlLoop::new(
        monitor,
        StepController::new(),
        DiscreteActuator::new(1, 8, 4),
    );

    // Alive and far below target: the guarded tick acts.
    let (level, event) = control.tick_guarded();
    assert!(level.is_actionable(), "level: {level:?}");
    assert!(event.is_some());

    // Stall the producer; once the collector reports it, the guarded tick
    // must hold the actuator no matter what the stale rate says.
    wait_for(WINDOW * 5, || {
        (control.tick_guarded().0 == HealthLevel::Stalled).then_some(())
    })
    .expect("guarded loop sees the stall");
    let held = control.level();
    for _ in 0..5 {
        let (level, event) = control.tick_guarded();
        assert_eq!(level, HealthLevel::Stalled);
        assert!(event.is_none(), "no action while stalled");
    }
    assert_eq!(control.level(), held, "actuator held through the stall");
}
