//! Federation chaos: a 3-level collector tree driven through a seeded,
//! deterministic fault schedule — partial reads, frame truncation, byte
//! corruption, injected delays, connection resets, and a hard partition —
//! and proven correct by exact accounting on both planes.
//!
//! Topology: `leaf-a, leaf-b → mid → root`, every uplink routed through an
//! [`hb_net::faultnet::FaultProxy`]. All four collectors share a cluster
//! secret, so every link establishment also exercises the keyed-MAC
//! challenge/response. The acceptance criteria, all reproducible from the
//! logged seed (`CHAOS_SEED=<hex> cargo test ...`):
//!
//! * **Rollup plane**: for every application, at the root,
//!   `total_beats + producer_dropped == produced` — loss under chaos is
//!   accounted exactly, retransmitted batches are never double-applied.
//! * **Event plane**: a root subscription spanning both leaves receives
//!   every produced beat exactly once despite resets mid-stream — the
//!   per-subscription cursors resume delivery, replayed duplicates are
//!   detected and discarded, and the gap counters stay at zero.
//! * **Security**: corruption never forges anything — no auth rejection
//!   fires on a correctly-keyed tree (a mangled frame dies at the CRC,
//!   surfacing as a protocol error, not a bad MAC) — while a two-node
//!   cycle and a wrong-secret child are each refused with the matching
//!   `hb_collector_uplink_rejected_total` reason.

use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

use app_heartbeats::heartbeats::observe::Interest;
use app_heartbeats::heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
use app_heartbeats::net::faultnet::{FaultConfig, FaultProxy};
use app_heartbeats::net::{
    Collector, CollectorConfig, EventPayload, UpstreamConfig, WireBeat,
};

const SECRET: &str = "chaos-cluster-secret";
const APPS_PER_LEAF: usize = 6;
const BEATS_PER_BATCH: usize = 4;
const ROUNDS: usize = 14;
/// The mid→root proxy is partitioned from the start of this round...
const KILL_ROUND: usize = 5;
/// ...until the start of this one.
const HEAL_ROUND: usize = 9;

/// The fault schedule seed: `CHAOS_SEED` (hex or decimal) overrides the
/// default, and the chosen value is printed so any failure can be replayed
/// bit-for-bit.
fn chaos_seed() -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|raw| {
            let raw = raw.trim();
            raw.strip_prefix("0x")
                .map_or_else(|| raw.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
        })
        .unwrap_or(0xC0FF_EE00_5EED);
    eprintln!("chaos seed = {seed:#x} (set CHAOS_SEED to reproduce)");
    seed
}

fn faults(seed: u64, salt: u64) -> FaultConfig {
    FaultConfig {
        seed: seed ^ salt,
        // Keep injected delays short so the test converges quickly; the
        // schedule itself (fragment/corrupt/truncate/reset) is the default
        // hostile mix.
        max_delay: Duration::from_millis(2),
        ..FaultConfig::default()
    }
}

fn uplink(parent: String, node: &str) -> UpstreamConfig {
    UpstreamConfig {
        tick: Duration::from_millis(1),
        backoff_min: Duration::from_millis(5),
        backoff_max: Duration::from_millis(80),
        secret: Some(SECRET.into()),
        ..UpstreamConfig::new(parent, node)
    }
}

fn collector(upstream: Option<UpstreamConfig>) -> Collector {
    Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 1,
            // Generous event queues: the partition backlog must fit in the
            // replay ring so resume can close every gap (a shed event would
            // surface as a counted gap, failing the zero-gap criterion).
            sub_queue_capacity: 16_384,
            cluster_secret: Some(SECRET.into()),
            upstream,
            ..CollectorConfig::default()
        },
    )
    .expect("collector")
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

fn batch(start_seq: u64, count: usize) -> Vec<WireBeat> {
    (0..count as u64)
        .map(|i| WireBeat {
            record: HeartbeatRecord::new(
                start_seq + i,
                (start_seq + i) * 10_000_000,
                Tag::NONE,
                BeatThreadId(0),
            ),
            scope: BeatScope::Global,
        })
        .collect()
}

/// The main chaos run: both planes stay exact through the full fault
/// schedule plus a hard mid-tree partition.
#[test]
fn chaos_tree_balances_ledgers_and_resumes_events() {
    let seed = chaos_seed();

    let mut root = collector(None);
    let root_proxy = FaultProxy::spawn(root.ingest_addr().to_string(), faults(seed, 0x01));
    let mut mid = collector(Some(uplink(root_proxy.addr().to_string(), "mid")));
    let leaf_proxies: Vec<FaultProxy> = (0..2)
        .map(|i| {
            FaultProxy::spawn(mid.ingest_addr().to_string(), faults(seed, 0x10 + i as u64))
        })
        .collect();
    let mut leaves: Vec<Collector> = leaf_proxies
        .iter()
        .zip(["leaf-a", "leaf-b"])
        .map(|(proxy, node)| collector(Some(uplink(proxy.addr().to_string(), node))))
        .collect();

    // The event-plane probe: a root glob spanning both leaves. It must be
    // live everywhere before beats flow — events are generated at ingest.
    let root_state = root.state();
    let sub = root_state
        .subscribe_local("*", Interest::BEATS, Duration::ZERO)
        .expect("root subscription");
    assert!(
        wait_until(Duration::from_secs(30), || {
            mid.state().subscriptions().active() == 1
                && leaves.iter().all(|l| l.state().subscriptions().active() == 1)
        }),
        "the root subscription never propagated through the faulty tree"
    );

    let mut produced: HashMap<String, u64> = HashMap::new();
    let mut delivered: HashMap<String, u64> = HashMap::new();
    let drain = |delivered: &mut HashMap<String, u64>| {
        for event in sub.drain() {
            if let EventPayload::Beats { beats, .. } = &event.payload {
                *delivered.entry(event.app.clone()).or_insert(0) += beats.len() as u64;
            }
        }
    };

    for round in 0..ROUNDS {
        if round == KILL_ROUND {
            root_proxy.partition(true);
            root_proxy.sever();
        }
        if round == HEAL_ROUND {
            root_proxy.partition(false);
        }
        for (leaf, node) in leaves.iter().zip(["leaf-a", "leaf-b"]) {
            for a in 0..APPS_PER_LEAF {
                let app = format!("app{a}");
                let sent = produced.entry(format!("mid/{node}/{app}")).or_insert(0);
                leaf.state().ingest_batch(&app, 0, batch(*sent, BEATS_PER_BATCH));
                *sent += BEATS_PER_BATCH as u64;
            }
        }
        drain(&mut delivered);
        thread::sleep(Duration::from_millis(5));
    }

    // Rollup plane: every beat is delivered or accounted, never both.
    let balanced = wait_until(Duration::from_secs(120), || {
        produced.iter().all(|(app, &sent)| {
            root_state
                .snapshot(app)
                .is_some_and(|snap| snap.total_beats + snap.producer_dropped == sent)
        })
    });
    if !balanced {
        for (app, &sent) in &produced {
            let (total, dropped) = root_state
                .snapshot(app)
                .map_or((0, 0), |s| (s.total_beats, s.producer_dropped));
            if total + dropped != sent {
                eprintln!("unbalanced {app}: total {total} + dropped {dropped} != produced {sent}");
            }
        }
    }
    assert!(balanced, "root ledger never balanced under chaos (seed {seed:#x})");

    // Event plane: exactly-once delivery converges despite the resets.
    let converged = wait_until(Duration::from_secs(120), || {
        drain(&mut delivered);
        delivered == produced
    });
    if !converged {
        for (state, label) in [(&root_state, "root"), (&mid.state(), "mid")] {
            for o in state.origins() {
                eprintln!(
                    "{label} origin {}: connected={} relayed_events={} stream_dups={} stream_gaps={}",
                    o.node, o.connected, o.relayed_events, o.event_stream_duplicates, o.event_stream_gaps
                );
            }
        }
        eprintln!("root sub dropped={}", sub.dropped());
    }
    assert!(
        converged,
        "event delivery never converged (seed {seed:#x}): delivered {delivered:?} vs produced {produced:?}"
    );
    // ...and stays converged: a late replayed duplicate would overshoot.
    thread::sleep(Duration::from_millis(400));
    drain(&mut delivered);
    assert_eq!(
        delivered, produced,
        "late events broke exactly-once delivery (seed {seed:#x})"
    );
    assert_eq!(sub.dropped(), 0, "the root subscriber queue must not shed");

    // Zero event-sequence gaps after resume, at every hop. Duplicates are
    // legal (retransmits after a reset) — they are counted and discarded —
    // but a gap would mean an event was lost without being accounted.
    for (state, label) in [(&root_state, "root"), (&mid.state(), "mid")] {
        for origin in state.origins() {
            assert_eq!(
                origin.event_stream_gaps, 0,
                "{label} saw a cursor gap from {} (seed {seed:#x})",
                origin.node
            );
        }
    }

    // A correctly-keyed tree under corruption must never report an auth
    // (or loop) rejection: mangled frames die at the CRC layer instead.
    for (state, label) in [
        (root.state(), "root"),
        (mid.state(), "mid"),
        (leaves[0].state(), "leaf-a"),
        (leaves[1].state(), "leaf-b"),
    ] {
        assert_eq!(
            state.uplink_rejections(),
            (0, 0),
            "{label} rejected an uplink on a healthy tree (seed {seed:#x})"
        );
    }

    // The schedule must actually have bitten: otherwise this test proves
    // nothing about resume. (With the default probabilities and this much
    // traffic, a fault-free run means the proxy is not in the path.)
    let injected: u64 = std::iter::once(&root_proxy)
        .chain(leaf_proxies.iter())
        .map(|p| p.stats().total_faults())
        .sum();
    assert!(injected > 0, "the fault schedule never fired (seed {seed:#x})");

    for leaf in &mut leaves {
        leaf.shutdown();
    }
    mid.shutdown();
    root.shutdown();
}

/// Two collectors pointed at each other: whichever uplink lands second
/// carries the other's name in its path vector and must be refused with
/// `reason="loop"` — the cycle never closes.
#[test]
fn cycle_is_refused() {
    // Bind each collector first, then point them at each other through
    // passthrough proxies (no faults — this test is about the path vector).
    let seed = chaos_seed();
    let a_seat = std::net::TcpListener::bind("127.0.0.1:0").expect("seat");
    let a_ingest = a_seat.local_addr().expect("addr");
    drop(a_seat);

    let mut b = collector(Some(uplink(a_ingest.to_string(), "node-b")));
    let mut a = Collector::with_config(
        &a_ingest.to_string(),
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 1,
            cluster_secret: Some(SECRET.into()),
            upstream: Some(uplink(b.ingest_addr().to_string(), "node-a")),
            ..CollectorConfig::default()
        },
    )
    .expect("collector a");

    // One direction links; the reverse hello then carries a path that
    // contains the receiver's own name and is refused. Under flapping both
    // sides may refuse — at least one `reason="loop"` must fire somewhere.
    let refused = wait_until(Duration::from_secs(30), || {
        a.state().uplink_rejections().0 + b.state().uplink_rejections().0 >= 1
    });
    let (a_rej, b_rej) = (a.state().uplink_rejections(), b.state().uplink_rejections());
    assert!(
        refused,
        "no loop rejection fired (seed {seed:#x}): a={a_rej:?} b={b_rej:?}"
    );
    assert_eq!(a_rej.1 + b_rej.1, 0, "a cycle must be refused as loop, not auth");

    // The refusal is visible on the metrics surface too.
    let metrics = a.state().prometheus() + &b.state().prometheus();
    assert!(
        metrics.contains(r#"hb_collector_uplink_rejected_total{reason="loop"}"#),
        "loop rejections must be exported"
    );

    a.shutdown();
    b.shutdown();
}

/// A child keyed with the wrong secret answers the challenge with a MAC
/// the parent cannot verify: the link is refused with `reason="auth"` and
/// none of the child's beats are ever absorbed.
#[test]
fn wrong_secret_is_refused() {
    let seed = chaos_seed();
    let mut parent = collector(None);
    let mut child = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 1,
            cluster_secret: Some("the-wrong-secret".into()),
            upstream: Some(UpstreamConfig {
                secret: Some("the-wrong-secret".into()),
                ..uplink(parent.ingest_addr().to_string(), "impostor")
            }),
            ..CollectorConfig::default()
        },
    )
    .expect("child collector");

    let child_state = child.state();
    child_state.ingest_batch("stolen", 0, batch(0, BEATS_PER_BATCH));

    let parent_state = parent.state();
    assert!(
        wait_until(Duration::from_secs(30), || {
            parent_state.uplink_rejections().1 >= 1
        }),
        "no auth rejection fired (seed {seed:#x})"
    );
    assert_eq!(
        parent_state.uplink_rejections().0,
        0,
        "a bad MAC must be refused as auth, not loop"
    );
    // A refused handshake must retry on the full-jitter schedule, not at
    // connect speed: only failed TCP connects once backed off, so a
    // wrong-secret child hammered its parent at ~1000 attempts/s.
    let before = parent_state.uplink_rejections().1;
    std::thread::sleep(Duration::from_millis(600));
    let retries = parent_state.uplink_rejections().1 - before;
    assert!(
        retries <= 40,
        "refused uplink retried {retries} times in 600ms — handshake refusals bypass backoff"
    );
    assert!(
        parent_state.snapshot("impostor/stolen").is_none(),
        "an unauthenticated child's beats must never be absorbed"
    );
    assert!(
        parent_state
            .prometheus()
            .contains(r#"hb_collector_uplink_rejected_total{reason="auth"}"#),
        "auth rejections must be exported"
    );

    child.shutdown();
    parent.shutdown();
}
