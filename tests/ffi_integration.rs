//! Integration test of the C-compatible FFI layer: the full Table 1 call
//! sequence a C program would make, end to end.

use std::ffi::CString;

use app_heartbeats::heartbeats::ffi::{
    HB_current_rate, HB_finalize, HB_get_history, HB_get_target_max, HB_get_target_min,
    HB_heartbeat, HB_initialize, HB_set_target_rate, HB_total_beats, HBRecord,
};

#[test]
fn full_c_style_session() {
    let name = CString::new("ffi-integration").unwrap();
    // HB_initialize(window = 20)
    let handle = unsafe { HB_initialize(name.as_ptr(), 20) };
    assert!(handle >= 0);

    // HB_set_target_rate(30, 35) and the two getters.
    assert_eq!(HB_set_target_rate(handle, 30.0, 35.0), 0);
    assert_eq!(HB_get_target_min(handle), 30.0);
    assert_eq!(HB_get_target_max(handle), 35.0);

    // HB_heartbeat in a loop, alternating global and local beats.
    for frame in 0..100i64 {
        assert_eq!(HB_heartbeat(handle, frame, 0), frame);
        HB_heartbeat(handle, frame, 1);
    }
    assert_eq!(HB_total_beats(handle), 100);

    // HB_current_rate with the default window (wall-clock based, so only its
    // sign is meaningful here).
    let rate = HB_current_rate(handle, 0, 0);
    assert!(rate > 0.0 || rate == -1.0);

    // HB_get_history(10): chronological, carrying the tags we supplied.
    let mut out = vec![
        HBRecord {
            seq: 0,
            timestamp_ns: 0,
            tag: 0,
            thread_id: 0,
            _reserved: 0
        };
        10
    ];
    let written = unsafe { HB_get_history(handle, 10, out.as_mut_ptr(), 0) };
    assert_eq!(written, 10);
    assert_eq!(out[0].tag, 90);
    assert_eq!(out[9].tag, 99);
    assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));

    // Local history is independent.
    let written_local = unsafe { HB_get_history(handle, 10, out.as_mut_ptr(), 1) };
    assert_eq!(written_local, 10);

    assert_eq!(HB_finalize(handle), 0);
    assert_eq!(HB_total_beats(handle), -1, "handle is dead after finalize");
}

#[test]
fn several_ffi_applications_coexist() {
    let a_name = CString::new("ffi-app-a").unwrap();
    let b_name = CString::new("ffi-app-b").unwrap();
    let a = unsafe { HB_initialize(a_name.as_ptr(), 10) };
    let b = unsafe { HB_initialize(b_name.as_ptr(), 10) };
    assert!(a >= 0 && b >= 0 && a != b);
    for _ in 0..5 {
        HB_heartbeat(a, 0, 0);
    }
    for _ in 0..3 {
        HB_heartbeat(b, 0, 0);
    }
    assert_eq!(HB_total_beats(a), 5);
    assert_eq!(HB_total_beats(b), 3);
    assert_eq!(HB_finalize(a), 0);
    assert_eq!(HB_finalize(b), 0);
}
