//! Federation soak: a 3-level collector tree proven correct by exact
//! accounting.
//!
//! Topology: 4 leaf collectors federate into one mid-tier collector, which
//! federates into one root — `leafN → mid → root`. Each leaf ingests
//! hundreds of simulated applications; the root must end up with an exact
//! per-app ledger under `mid/leafN/app` names.
//!
//! Mid-soak, the `leaf0 → mid` uplink (routed through an in-test TCP proxy)
//! is severed and held down across several feeding rounds, forcing the
//! relay through its reconnect/backoff/resume path. The acceptance
//! criterion is **zero unaccounted loss**: for every application,
//!
//! ```text
//! root.total_beats + root.producer_dropped == beats produced at the leaf
//! ```
//!
//! and globally the root's dropped sum equals exactly what the leaf and
//! mid capture taps shed — every beat is either delivered or counted,
//! never double-counted, across the forced reconnect.
//!
//! Health rolls up too: applications that go silent early must be reported
//! `Stalled` by the root's own detector, and the per-origin rollups
//! (`origin_rollups`) must reconcile against the per-app ledger.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use app_heartbeats::heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
use app_heartbeats::net::{
    Collector, CollectorConfig, HealthConfig, HealthStatus, UpstreamConfig, WireBeat,
};

const LEAVES: usize = 4;
/// Applications per leaf; the first `QUIET_PER_LEAF` beat only in round 0
/// and then fall silent (the stall class), the rest beat every round.
const APPS_PER_LEAF: usize = 150;
const QUIET_PER_LEAF: usize = 10;
const ROUNDS: usize = 20;
const BEATS_PER_BATCH: usize = 5;
/// The proxy is held down from the start of this round...
const KILL_ROUND: usize = 8;
/// ...until the start of this one.
const HEAL_ROUND: usize = 14;

/// A killable TCP proxy: the listener persists for the lifetime of the
/// test (so reconnects succeed), but `sever` cuts every live connection
/// and `set_paused(true)` makes new connections die immediately after
/// accept — simulating a parent that is reachable but dead.
struct Proxy {
    addr: String,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    paused: Arc<AtomicBool>,
}

impl Proxy {
    fn spawn(target: String) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        let conns = Arc::new(Mutex::new(Vec::<TcpStream>::new()));
        let paused = Arc::new(AtomicBool::new(false));
        let held = Arc::clone(&conns);
        let gate = Arc::clone(&paused);
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(client) = stream else { break };
                if gate.load(Ordering::SeqCst) {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(server) = TcpStream::connect(&target) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                {
                    let mut live = held.lock().unwrap();
                    live.push(client.try_clone().expect("clone"));
                    live.push(server.try_clone().expect("clone"));
                }
                let (c, s) = (client.try_clone().expect("clone"), server.try_clone().expect("clone"));
                thread::spawn(move || pipe(client, server));
                thread::spawn(move || pipe(s, c));
            }
        });
        Proxy { addr, conns, paused }
    }

    /// Cut every live connection through the proxy.
    fn sever(&self) {
        let mut live = self.conns.lock().unwrap();
        for conn in live.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// While paused, freshly accepted connections are closed immediately,
    /// so the relay's reconnect attempts keep failing and it walks its
    /// backoff schedule.
    fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }
}

fn pipe(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Polls `cond` until it holds or `timeout` elapses.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

fn batch(start_seq: u64, count: usize) -> Vec<WireBeat> {
    (0..count as u64)
        .map(|i| WireBeat {
            record: HeartbeatRecord::new(
                start_seq + i,
                (start_seq + i) * 10_000_000,
                Tag::NONE,
                BeatThreadId(0),
            ),
            scope: BeatScope::Global,
        })
        .collect()
}

/// The whole tree runs authenticated: every uplink in the soak also
/// exercises the keyed-MAC challenge/response on each (re)connect.
const SOAK_SECRET: &str = "soak-cluster-secret";

fn uplink(parent: String, node: &str) -> UpstreamConfig {
    UpstreamConfig {
        tick: Duration::from_millis(1),
        backoff_min: Duration::from_millis(5),
        backoff_max: Duration::from_millis(80),
        secret: Some(SOAK_SECRET.into()),
        ..UpstreamConfig::new(parent, node)
    }
}

#[test]
fn three_level_tree_exact_accounting_across_reconnect() {
    let health = HealthConfig {
        window: Duration::from_millis(400),
        ..HealthConfig::default()
    };

    let mut root = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 2,
            health: health.clone(),
            cluster_secret: Some(SOAK_SECRET.into()),
            ..CollectorConfig::default()
        },
    )
    .expect("root collector");

    let mut mid = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 2,
            health: health.clone(),
            cluster_secret: Some(SOAK_SECRET.into()),
            upstream: Some(uplink(root.ingest_addr().to_string(), "mid")),
            ..CollectorConfig::default()
        },
    )
    .expect("mid collector");

    // leaf0's uplink runs through the killable proxy; the others connect to
    // the mid tier directly.
    let proxy = Proxy::spawn(mid.ingest_addr().to_string());
    let mut leaves = Vec::new();
    for i in 0..LEAVES {
        let parent = if i == 0 {
            proxy.addr.clone()
        } else {
            mid.ingest_addr().to_string()
        };
        leaves.push(
            Collector::with_config(
                "127.0.0.1:0",
                "127.0.0.1:0",
                CollectorConfig {
                    io_threads: 1,
                    health: health.clone(),
                    upstream: Some(uplink(parent, &format!("leaf{i}"))),
                    ..CollectorConfig::default()
                },
            )
            .expect("leaf collector"),
        );
    }

    // Drive the soak: every round every fast app gets one batch; quiet apps
    // beat only in round 0. The leaf0 uplink is held down for rounds
    // [KILL_ROUND, HEAL_ROUND) — local ingest must keep flowing regardless.
    let mut produced: HashMap<String, u64> = HashMap::new();
    for round in 0..ROUNDS {
        if round == KILL_ROUND {
            proxy.set_paused(true);
            proxy.sever();
        }
        if round == HEAL_ROUND {
            proxy.set_paused(false);
        }
        for (i, leaf) in leaves.iter().enumerate() {
            let state = leaf.state();
            for a in 0..APPS_PER_LEAF {
                if a < QUIET_PER_LEAF && round > 0 {
                    continue;
                }
                let app = format!("cam{a:03}");
                let key = format!("mid/leaf{i}/{app}");
                let sent = produced.entry(key).or_insert(0);
                state.ingest_batch(&app, 0, batch(*sent, BEATS_PER_BATCH));
                *sent += BEATS_PER_BATCH as u64;
            }
        }
        thread::sleep(Duration::from_millis(5));
    }

    // The outage must have forced the leaf0 relay through at least one
    // reconnect (it was up before round KILL_ROUND, and converges after).
    let leaf0_stats = leaves[0].state().upstream_stats().expect("leaf0 uplink stats");

    // Quiesce: every application's ledger at the root must balance exactly
    // — delivered plus accounted-dropped equals produced.
    let root_state = root.state();
    let converged = wait_until(Duration::from_secs(60), || {
        produced.iter().all(|(key, &sent)| {
            root_state
                .snapshot(key)
                .is_some_and(|snap| snap.total_beats + snap.producer_dropped == sent)
        })
    });
    if !converged {
        let mut missing = 0u64;
        for (key, &sent) in &produced {
            let got = root_state
                .snapshot(key)
                .map_or(0, |s| s.total_beats + s.producer_dropped);
            if got != sent {
                missing += 1;
                if missing <= 5 {
                    eprintln!("unbalanced {key}: accounted {got} != produced {sent}");
                }
            }
        }
        panic!("{missing} of {} apps never balanced at the root", produced.len());
    }

    assert!(
        leaf0_stats.reconnects() >= 1,
        "severing the uplink must force a reconnect (saw {})",
        leaf0_stats.reconnects()
    );

    // Zero unaccounted loss, globally: whatever the root records as dropped
    // is exactly what the capture taps shed while links were down. Nothing
    // vanished, nothing was counted twice.
    let root_dropped: u64 = produced
        .keys()
        .map(|key| root_state.snapshot(key).expect("snapshot").producer_dropped)
        .sum();
    let taps_shed: u64 = leaves
        .iter()
        .map(|leaf| leaf.state().upstream_tap().expect("leaf tap").dropped_beats())
        .sum::<u64>()
        + mid.state().upstream_tap().expect("mid tap").dropped_beats();
    assert_eq!(
        root_dropped, taps_shed,
        "root dropped ledger must equal exactly what the taps shed"
    );
    let root_total: u64 = produced
        .keys()
        .map(|key| root_state.snapshot(key).expect("snapshot").total_beats)
        .sum();
    let sent_total: u64 = produced.values().sum();
    assert_eq!(root_total + root_dropped, sent_total, "global ledger must balance");

    // Auth hygiene: every link in the tree carries the shared secret, so
    // the whole soak — including every forced reconnect — must complete
    // without a single uplink rejection of either kind.
    assert_eq!(root_state.uplink_rejections(), (0, 0), "root rejected an uplink");
    assert_eq!(mid.state().uplink_rejections(), (0, 0), "mid rejected an uplink");

    // Origin topology: the root sees exactly one connected child ("mid");
    // the mid tier sees all four leaves, all connected after the heal.
    let origins = root_state.origins();
    assert_eq!(origins.len(), 1, "root has one child: {origins:?}");
    assert_eq!(origins[0].node, "mid");
    assert!(origins[0].connected, "mid link must be up at quiesce");
    assert!(wait_until(Duration::from_secs(10), || {
        let mid_origins = mid.state().origins();
        mid_origins.len() == LEAVES && mid_origins.iter().all(|o| o.connected)
    }));

    // Per-cluster rollups reconcile against the per-app ledger.
    let rollups = root_state.origin_rollups();
    assert_eq!(rollups.len(), 1);
    let rollup = &rollups[0];
    assert_eq!(rollup.node, "mid");
    assert_eq!(rollup.apps, (LEAVES * APPS_PER_LEAF) as u64);
    assert_eq!(rollup.beats_total, root_total);
    assert_eq!(rollup.dropped_total, root_dropped);
    assert_eq!(
        rollup.health_counts.iter().sum::<u64>(),
        rollup.apps,
        "every app lands in exactly one health class"
    );

    // Health at the root: the quiet class went silent in round 0, far past
    // the 400ms health window by now — the root's own detector must call
    // them Stalled. The fast class has beats, so it can never be NoSignal.
    let stalled_ok = wait_until(Duration::from_secs(10), || {
        (0..LEAVES).all(|i| {
            (0..QUIET_PER_LEAF).all(|a| {
                root_state
                    .health(&format!("mid/leaf{i}/cam{a:03}"))
                    .is_some_and(|report| report.status == HealthStatus::Stalled)
            })
        })
    });
    assert!(stalled_ok, "quiet apps must be reported Stalled at the root");
    for key in produced.keys() {
        let report = root_state.health(key).expect("health report");
        assert_ne!(
            report.status,
            HealthStatus::NoSignal,
            "{key} has beats on record, NoSignal is impossible"
        );
    }

    // Leaf ground truth: every leaf kept ingesting through the outage —
    // its local ledger holds the full production run.
    for (i, leaf) in leaves.iter().enumerate() {
        let state = leaf.state();
        for a in 0..APPS_PER_LEAF {
            let app = format!("cam{a:03}");
            let key = format!("mid/leaf{i}/{app}");
            let local = state.snapshot(&app).expect("leaf snapshot");
            assert_eq!(
                local.total_beats, produced[&key],
                "leaf{i}/{app}: local ingest must be unaffected by the uplink outage"
            );
        }
    }

    for leaf in &mut leaves {
        leaf.shutdown();
    }
    mid.shutdown();
    root.shutdown();
}
