//! Fan-out soak: 64 push subscribers, each watching all 8 producing
//! applications through a `fan-*` glob, every beat forwarded as a raw-beat
//! event — with **exact** per-app delivery counts at every subscriber.
//!
//! This is the push plane's answer to the "N pollers hammering the
//! collector" problem: one ingest stream fans out to 64 independent
//! bounded queues, and nothing is lost as long as the subscribers keep
//! draining (every drop would be visible in the collector's
//! `events_dropped` counter and each subscription's `lost()` — both pinned
//! to zero here).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use app_heartbeats::heartbeats::observe::{Interest, ObserveFilter};
use app_heartbeats::heartbeats::{Backend, HeartbeatBuilder};
use app_heartbeats::net::{
    Collector, CollectorConfig, EventPayload, RemoteReader, TcpBackend, TcpBackendConfig,
};

const APPS: usize = 8;
const SUBSCRIBERS: usize = 64;
const BEATS_PER_APP: u64 = 200;

#[test]
fn fanout_64_subscribers_8_apps_exact_counts() {
    let collector = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            // Batches (not beats) bound the queue; 200-beat producers flush
            // every 2 ms, so a few hundred slots is generous headroom.
            sub_queue_capacity: 4096,
            ..CollectorConfig::default()
        },
    )
    .expect("bind collector");

    // All subscribers first: raw-beat events only cover beats ingested
    // after the subscription, and exactness needs every beat.
    let filter = ObserveFilter::new(Interest::BEATS).min_interval(Duration::ZERO);
    let subs: Vec<_> = (0..SUBSCRIBERS)
        .map(|i| {
            let reader = Arc::new(
                RemoteReader::connect(collector.query_addr().to_string())
                    .unwrap_or_else(|e| panic!("subscriber {i} connect: {e}")),
            );
            let sub = reader
                .subscribe("fan-*", &filter)
                .unwrap_or_else(|e| panic!("subscriber {i} subscribe: {e}"));
            (reader, sub)
        })
        .collect();
    assert_eq!(collector.state().subscriptions().active(), SUBSCRIBERS);

    // 8 producers beat concurrently, exactly BEATS_PER_APP times each.
    let producers: Vec<_> = (0..APPS)
        .map(|i| {
            let app = format!("fan-{i}");
            let ingest = collector.ingest_addr().to_string();
            std::thread::spawn(move || {
                let backend = Arc::new(TcpBackend::with_config(
                    ingest,
                    &app,
                    TcpBackendConfig {
                        flush_interval: Duration::from_millis(2),
                        ..TcpBackendConfig::default()
                    },
                ));
                let hb = HeartbeatBuilder::new(&app)
                    .backend(Arc::clone(&backend) as Arc<dyn Backend>)
                    .build()
                    .expect("build heartbeat");
                for _ in 0..BEATS_PER_APP {
                    hb.heartbeat();
                    std::thread::sleep(Duration::from_micros(200));
                }
                hb.flush().expect("flush");
                assert_eq!(backend.dropped_beats(), 0, "{app}: producer shed beats");
            })
        })
        .collect();
    for producer in producers {
        producer.join().expect("producer thread");
    }

    // Every subscriber must account for every beat of every app — exactly.
    let deadline = Instant::now() + Duration::from_secs(60);
    for (index, (_reader, sub)) in subs.iter().enumerate() {
        let mut per_app: HashMap<String, u64> = HashMap::new();
        let mut delivered: u64 = 0;
        while delivered < APPS as u64 * BEATS_PER_APP {
            let remaining = deadline.saturating_duration_since(Instant::now());
            assert!(
                !remaining.is_zero(),
                "subscriber {index}: timed out at {delivered} beats ({per_app:?})"
            );
            let event = sub
                .next_timeout(remaining.min(Duration::from_secs(5)))
                .unwrap_or_else(|| {
                    panic!("subscriber {index}: no event at {delivered} beats ({per_app:?})")
                });
            match event.payload {
                EventPayload::Beats { beats, .. } => {
                    let n = beats.len() as u64;
                    delivered += n;
                    *per_app.entry(event.app).or_default() += n;
                }
                other => panic!("subscriber {index}: unexpected event {other:?}"),
            }
        }
        for i in 0..APPS {
            assert_eq!(
                per_app.get(&format!("fan-{i}")).copied(),
                Some(BEATS_PER_APP),
                "subscriber {index}: exact per-app count"
            );
        }
        assert_eq!(sub.lost(), 0, "subscriber {index}: client queue overflowed");
    }

    let state = collector.state();
    assert_eq!(
        state.events_dropped_total(),
        0,
        "collector shed events despite draining subscribers"
    );
    assert_eq!(
        state.queries_total(),
        0,
        "the whole soak ran on pushes alone — not one poll"
    );
}
