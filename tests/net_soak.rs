//! Soak test: 256 concurrent producers streaming batched beats into one
//! collector while 16 observers poll queries — the load shape the
//! event-driven reactor exists for.
//!
//! Asserts that (a) every application's server-side total matches exactly
//! what its producer sent (batches are absorbed atomically, nothing is
//! dropped or double-counted), and (b) the collector served all 272
//! sockets with its fixed, configured I/O thread pool rather than a thread
//! per connection.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use app_heartbeats::heartbeats::{Backend, BeatScope, BeatThreadId, HeartbeatRecord, Tag};
use app_heartbeats::net::{Collector, CollectorConfig, RemoteReader, TcpBackend, TcpBackendConfig};

const PRODUCERS: usize = 256;
const OBSERVERS: usize = 16;
const BEATS_PER_PRODUCER: u64 = 100;
const IO_THREADS: usize = 2;

/// Counts live threads of this process whose name starts with `prefix`
/// (Linux: thread names are exposed in /proc/self/task/\*/comm).
#[cfg(target_os = "linux")]
fn threads_named(prefix: &str) -> usize {
    let mut count = 0;
    for entry in std::fs::read_dir("/proc/self/task").expect("read /proc/self/task") {
        let mut path = entry.expect("task entry").path();
        path.push("comm");
        if let Ok(name) = std::fs::read_to_string(path) {
            if name.trim_end().starts_with(prefix) {
                count += 1;
            }
        }
    }
    count
}

#[test]
fn soak_256_producers_16_observers() {
    let mut collector = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: IO_THREADS,
            ..CollectorConfig::default()
        },
    )
    .expect("bind collector");
    assert_eq!(collector.io_threads(), IO_THREADS);
    let ingest = collector.ingest_addr().to_string();
    let query = collector.query_addr().to_string();

    // Observers poll the query port for the whole run.
    let done = Arc::new(AtomicBool::new(false));
    let observers: Vec<_> = (0..OBSERVERS)
        .map(|i| {
            let query = query.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let reader = loop {
                    match RemoteReader::connect(query.clone()) {
                        Ok(reader) => break reader,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                let mut polls = 0u64;
                while !done.load(Ordering::Relaxed) {
                    match i % 3 {
                        0 => {
                            let _ = reader.apps();
                        }
                        1 => {
                            let _ = reader.snapshot(&format!("soak-{}", i * 7 % PRODUCERS));
                        }
                        _ => {
                            let _ = reader.metrics();
                        }
                    }
                    polls += 1;
                    std::thread::sleep(Duration::from_millis(20));
                }
                polls
            })
        })
        .collect();

    // 256 producers, each its own TCP connection streaming batched beats.
    let backends: Vec<Arc<TcpBackend>> = (0..PRODUCERS)
        .map(|i| {
            Arc::new(TcpBackend::with_config(
                ingest.clone(),
                format!("soak-{i}"),
                TcpBackendConfig {
                    flush_interval: Duration::from_millis(2),
                    ..TcpBackendConfig::default()
                },
            ))
        })
        .collect();
    for (i, backend) in backends.iter().enumerate() {
        for seq in 0..BEATS_PER_PRODUCER {
            let record = HeartbeatRecord::new(
                seq,
                seq * 1_000_000 + i as u64, // ~1 kbps, distinct per app
                Tag::NONE,
                BeatThreadId(0),
            );
            backend.on_beat("ignored", &record, BeatScope::Global);
        }
    }

    // Every beat must land: batches are delivered reliably once connected,
    // and the queues are far larger than the per-producer volume.
    let state = collector.state();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let complete = state
            .snapshots()
            .iter()
            .filter(|s| s.total_beats >= BEATS_PER_PRODUCER)
            .count();
        if complete == PRODUCERS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {complete}/{PRODUCERS} producers fully ingested before the deadline"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Exact per-app accounting: nothing dropped, nothing double-counted.
    let snapshots = state.snapshots();
    assert_eq!(snapshots.len(), PRODUCERS);
    for snap in &snapshots {
        assert_eq!(
            snap.total_beats, BEATS_PER_PRODUCER,
            "app {} total mismatch",
            snap.app
        );
        assert_eq!(snap.producer_dropped, 0, "app {} dropped beats", snap.app);
    }
    for backend in &backends {
        assert_eq!(backend.dropped_beats(), 0);
        assert_eq!(backend.sent(), BEATS_PER_PRODUCER);
    }

    // The collector served 256 producers + 16 observers with its fixed pool.
    let reader = RemoteReader::connect(query.clone()).expect("connect stats reader");
    let stats = reader.stats().expect("STATS");
    assert_eq!(stats.io_threads as usize, IO_THREADS);
    assert_eq!(stats.connections as usize, PRODUCERS);
    assert_eq!(stats.apps as usize, PRODUCERS);
    drop(reader);

    #[cfg(target_os = "linux")]
    {
        assert_eq!(
            threads_named("hb-reactor-"),
            IO_THREADS,
            "collector must use exactly its configured I/O threads"
        );
        assert_eq!(
            threads_named("hb-collector-producer")
                + threads_named("hb-collector-observer")
                + threads_named("hb-collector-ingest")
                + threads_named("hb-collector-query"),
            0,
            "no thread-per-connection serving threads may exist"
        );
    }

    done.store(true, Ordering::Relaxed);
    for observer in observers {
        let polls = observer.join().expect("observer thread");
        assert!(polls > 0, "every observer made progress");
    }
    drop(backends);
    collector.shutdown();
}
