//! Sharded-reactor soak: 1024 producers spread over 4 independent I/O
//! shards, driven in waves so the test respects file-descriptor and
//! thread limits while still registering all 1024 applications.
//!
//! Asserts the three invariants the sharded design stands on:
//!
//! 1. **Exact accounting** — every application's server-side total matches
//!    what its producer sent, across all shards.
//! 2. **No cross-shard ingest** — a producer connection migrates to its
//!    application's home shard at hello time, so the steady-state ingest
//!    path never touches another shard's registry partition. The debug
//!    counter `CollectorState::cross_shard_ingest` must read zero after
//!    the run.
//! 3. **Per-shard counters partition the aggregates** — summing the
//!    per-shard connection and frame counters reproduces the collector's
//!    aggregate counters exactly (nothing attributed twice or dropped).

use std::sync::Arc;
use std::time::{Duration, Instant};

use app_heartbeats::heartbeats::{Backend, BeatScope, BeatThreadId, HeartbeatRecord, Tag};
use app_heartbeats::net::{Collector, CollectorConfig, TcpBackend, TcpBackendConfig};

const PRODUCERS: usize = 1024;
const WAVES: usize = 8;
const WAVE_SIZE: usize = PRODUCERS / WAVES;
const BEATS_PER_PRODUCER: u64 = 20;
const IO_THREADS: usize = 4;

#[test]
fn soak_1024_producers_across_4_shards() {
    let mut collector = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: IO_THREADS,
            // 1024 apps; keep the per-app history ring small so the test's
            // footprint stays modest.
            history_capacity: 8,
            ..CollectorConfig::default()
        },
    )
    .expect("bind collector");
    assert_eq!(collector.io_threads(), IO_THREADS);
    let ingest = collector.ingest_addr().to_string();
    let state = collector.state();

    for wave in 0..WAVES {
        let backends: Vec<Arc<TcpBackend>> = (0..WAVE_SIZE)
            .map(|i| {
                Arc::new(TcpBackend::with_config(
                    ingest.clone(),
                    format!("shard-soak-{}", wave * WAVE_SIZE + i),
                    TcpBackendConfig {
                        flush_interval: Duration::from_millis(2),
                        ..TcpBackendConfig::default()
                    },
                ))
            })
            .collect();
        for (i, backend) in backends.iter().enumerate() {
            for seq in 0..BEATS_PER_PRODUCER {
                let record = HeartbeatRecord::new(
                    seq,
                    seq * 1_000_000 + (wave * WAVE_SIZE + i) as u64,
                    Tag::NONE,
                    BeatThreadId(0),
                );
                backend.on_beat("ignored", &record, BeatScope::Global);
            }
        }

        // Wait for this wave's beats to land before tearing its
        // connections down; nothing is buffered client-side at that point.
        let expected_apps = (wave + 1) * WAVE_SIZE;
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let complete = state
                .snapshots()
                .iter()
                .filter(|s| s.total_beats >= BEATS_PER_PRODUCER)
                .count();
            if complete == expected_apps {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "wave {wave}: only {complete}/{expected_apps} apps fully ingested"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        for backend in &backends {
            assert_eq!(backend.dropped_beats(), 0);
            assert_eq!(backend.sent(), BEATS_PER_PRODUCER);
        }
        drop(backends);
    }

    // Exact per-app accounting across every shard.
    let snapshots = state.snapshots();
    assert_eq!(snapshots.len(), PRODUCERS);
    for snap in &snapshots {
        assert_eq!(
            snap.total_beats, BEATS_PER_PRODUCER,
            "app {} total mismatch",
            snap.app
        );
        assert_eq!(snap.producer_dropped, 0, "app {} dropped beats", snap.app);
    }

    // Hello-time migration means the hot ingest path never crossed shards.
    assert_eq!(
        state.cross_shard_ingest(),
        0,
        "steady-state ingest must stay on each app's home shard"
    );

    // Per-shard counters are an exact partition of the aggregates.
    let shards = state.shard_counters();
    assert_eq!(shards.len(), IO_THREADS);
    let conn_sum: u64 = shards.iter().map(|(c, _)| c).sum();
    let frame_sum: u64 = shards.iter().map(|(_, f)| f).sum();
    assert_eq!(conn_sum, state.connections_total());
    assert_eq!(frame_sum, state.frames_total());
    assert_eq!(conn_sum as usize, PRODUCERS);
    // With 4 shards serving 1024 hashed apps, every shard must have seen
    // real work — the hash actually spreads load.
    for (shard, (connections, frames)) in shards.iter().enumerate() {
        assert!(*connections > 0, "shard {shard} served no connections");
        assert!(*frames > 0, "shard {shard} ingested no frames");
    }

    collector.shutdown();
}
