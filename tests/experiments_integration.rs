//! End-to-end integration tests of the paper's scenarios, built only from the
//! public APIs of the workspace crates (no test-only hooks): the adaptive
//! encoder, the external scheduler, fault tolerance and the workload suite.

use app_heartbeats::encoder::{
    AdaptiveEncoder, EncoderConfig, EncoderModel, HbEncoder, VideoTrace,
};
use app_heartbeats::scheduler::{
    run_scheduled_step, FaultInjector, ScheduledRunConfig,
};
use app_heartbeats::sim::{FailurePlan, Machine};
use app_heartbeats::workloads::{parsec, SimWorkload, PAPER_TESTBED_CORES};

#[test]
fn table2_reproduction_is_close_for_every_benchmark() {
    for spec in parsec::all_table2() {
        let paper = parsec::paper_rate(&spec.name).unwrap();
        let name = spec.name.clone();
        let machine = Machine::paper_testbed();
        let mut workload = SimWorkload::new(spec, &machine);
        let measured = workload
            .run_to_completion(PAPER_TESTBED_CORES)
            .average_rate_bps;
        let error = (measured - paper).abs() / paper;
        assert!(
            error < 0.25,
            "{name}: measured {measured:.2} vs paper {paper:.2} ({:.0}% off)",
            error * 100.0
        );
    }
}

#[test]
fn single_core_runs_are_much_slower_than_eight_core_runs() {
    // The whole premise of the scheduler experiments: core count visibly
    // changes the heart rate.
    for spec in [parsec::blackscholes(), parsec::x264(), parsec::ferret()] {
        let machine_a = Machine::paper_testbed();
        let rate_8 = SimWorkload::new(spec.clone().with_items(100), &machine_a)
            .run_to_completion(8)
            .average_rate_bps;
        let machine_b = Machine::paper_testbed();
        let rate_1 = SimWorkload::new(spec.clone().with_items(100), &machine_b)
            .run_to_completion(1)
            .average_rate_bps;
        assert!(
            rate_8 > 2.5 * rate_1,
            "{}: 8-core {rate_8:.2} vs 1-core {rate_1:.2}",
            spec.name
        );
    }
}

#[test]
fn adaptive_encoder_meets_goal_and_baseline_does_not() {
    let trace = VideoTrace::demanding_uniform(640, 99);

    let machine_a = Machine::paper_testbed();
    let mut adaptive = AdaptiveEncoder::paper_configuration(trace.clone(), &machine_a);
    adaptive.encode_all(8);
    let adaptive_rate = adaptive.reader().current_rate(40).unwrap();

    let machine_b = Machine::paper_testbed();
    let mut baseline = HbEncoder::new(
        trace,
        EncoderModel::paper(),
        EncoderConfig::paper_demanding(),
        &machine_b,
    );
    baseline.encode_all(8);
    let baseline_rate = baseline.reader().current_rate(40).unwrap();

    assert!(adaptive_rate >= 30.0, "adaptive {adaptive_rate:.1}");
    assert!(baseline_rate < 15.0, "baseline {baseline_rate:.1}");
}

#[test]
fn external_scheduler_uses_fewer_cores_than_the_machine_offers() {
    // Figure 7's headline: the target is held with 4-6 of the 8 cores.
    let mut machine = Machine::paper_testbed();
    let config = ScheduledRunConfig {
        target: (30.0, 35.0),
        scheduler_window: 20,
        check_every: 5,
        plot_window: 20,
        failures: FailurePlan::none(),
    };
    let result = run_scheduled_step(parsec::x264_fig7(), &mut machine, &config);
    let cores = result.series.get("cores").unwrap();
    let mean_cores = cores.mean_y();
    assert!(
        mean_cores < 7.0,
        "the scheduler should not need the whole machine (mean {mean_cores:.1})"
    );
    assert!(result.settled_fraction_in_target > 0.4);
}

#[test]
fn scheduler_tracks_a_mid_run_core_failure() {
    let mut machine = Machine::paper_testbed();
    let config = ScheduledRunConfig {
        target: (2.5, 3.5),
        scheduler_window: 10,
        check_every: 3,
        plot_window: 20,
        failures: FailurePlan::at_beats(vec![(60, 3)]),
    };
    let result = run_scheduled_step(parsec::bodytrack_fig5(), &mut machine, &config);
    assert_eq!(machine.working_cores(), 5);
    let cores = result.series.get("cores").unwrap();
    assert!(cores
        .points
        .iter()
        .filter(|&&(beat, _)| beat > 65.0)
        .all(|&(_, allocated)| allocated <= 5.0));
}

#[test]
fn fault_injector_and_adaptive_encoder_compose() {
    // The Figure 8 scenario assembled from its public parts.
    let mut machine = Machine::paper_testbed();
    let mut injector = FaultInjector::paper_figure8();
    let trace = VideoTrace::demanding_uniform(640, 123);
    let mut encoder = AdaptiveEncoder::new(trace, EncoderModel::figure8(), &machine.clone(), 40, 30.0);
    while !encoder.is_done() {
        injector.apply(encoder.frames_encoded(), &mut machine);
        encoder.encode_next(machine.working_cores());
    }
    assert_eq!(machine.working_cores(), 5);
    assert_eq!(injector.log().len(), 3);
    assert!(injector.exhausted());
    let final_rate = encoder.reader().current_rate(40).unwrap();
    assert!(final_rate >= 29.0, "final rate {final_rate:.1}");
    assert!(!encoder.adaptations().is_empty());
}

#[test]
fn registered_workloads_are_discoverable_while_running() {
    use app_heartbeats::heartbeats::Registry;
    let registry = Registry::new();
    let machine = Machine::paper_testbed();
    let mut workload =
        SimWorkload::registered(parsec::ferret().with_items(50), &machine, &registry, 20);
    let reader = registry.attach("ferret").unwrap();
    for _ in 0..25 {
        workload.step(8);
    }
    assert_eq!(reader.total_beats(), 25);
    assert!(reader.current_rate(0).unwrap() > 0.0);
    workload.run_to_completion(8);
    assert_eq!(reader.total_beats(), 50);
}
