//! Cross-crate integration tests: the Heartbeats API observed through the
//! registry, the file backend and the shared-memory backend at the same time,
//! plus the control-loop machinery reacting to the same stream.

use std::sync::Arc;

use app_heartbeats::control::{DiscreteActuator, PiController, RateMonitor, StepController};
use app_heartbeats::control::{Actuator, ControlLoop, Controller};
use app_heartbeats::heartbeats::{
    BeatScope, HeartbeatBuilder, ManualClock, Registry, Tag, TargetStatus,
};
use app_heartbeats::shm::{FileBackend, FileObserver, ShmBackend, ShmObserver, ShmSegment};

fn unique(tag: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!(
        "hb-int-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

#[test]
fn one_producer_three_observers_agree() {
    let shm_name = unique("agree");
    let log_path = std::env::temp_dir().join(format!("{}.log", unique("agree-log")));

    let clock = ManualClock::new();
    let registry = Registry::new();
    let hb = HeartbeatBuilder::new("triple-observed")
        .window(10)
        .clock(Arc::new(clock.clone()))
        .backend(Arc::new(ShmBackend::create(&shm_name, 1024, 10).unwrap()))
        .backend(Arc::new(FileBackend::create(&log_path).unwrap()))
        .register_in(&registry)
        .build()
        .unwrap();
    hb.set_target_rate(8.0, 12.0).unwrap();

    for i in 0..200u64 {
        clock.advance_secs(0.1); // 10 beats/s
        hb.heartbeat_tagged(Tag::new(i));
    }
    hb.flush().unwrap();

    // In-process observer via the registry.
    let reader = registry.attach("triple-observed").unwrap();
    assert_eq!(reader.total_beats(), 200);
    assert!((reader.current_rate(0).unwrap() - 10.0).abs() < 1e-6);
    assert_eq!(reader.target_status(0), TargetStatus::WithinTarget);

    // Cross-process observer via shared memory.
    let shm = ShmObserver::attach(&shm_name).unwrap();
    assert_eq!(shm.total_beats(), 200);
    assert!((shm.current_rate(0).unwrap() - 10.0).abs() < 1e-6);
    assert_eq!(shm.target(), Some((8.0, 12.0)));

    // Cross-process observer via the log file.
    let file = FileObserver::new(&log_path);
    assert_eq!(file.total_beats(), 200);
    assert!((file.current_rate(10).unwrap() - 10.0).abs() < 1e-6);
    assert_eq!(file.target(), Some((8.0, 12.0)));

    // All three report the same most-recent tag.
    let expected_tag = Tag::new(199);
    assert_eq!(reader.history(1)[0].tag, expected_tag);
    assert_eq!(shm.history(1)[0].tag, expected_tag);
    assert_eq!(file.history(1)[0].tag, expected_tag);

    ShmSegment::unlink(&shm_name).unwrap();
    std::fs::remove_file(&log_path).ok();
}

#[test]
fn local_beats_stay_out_of_global_observers() {
    let shm_name = unique("local");
    let clock = ManualClock::new();
    let hb = HeartbeatBuilder::new("local-vs-global")
        .window(5)
        .clock(Arc::new(clock.clone()))
        .backend(Arc::new(ShmBackend::create(&shm_name, 64, 5).unwrap()))
        .build()
        .unwrap();

    clock.advance_secs(0.1);
    hb.beat(Tag::new(1), BeatScope::Global);
    clock.advance_secs(0.1);
    hb.beat(Tag::new(2), BeatScope::Local);

    assert_eq!(hb.total_beats(), 1);
    assert_eq!(hb.total_local_beats(), 1);
    let shm = ShmObserver::attach(&shm_name).unwrap();
    assert_eq!(shm.total_beats(), 1, "local beats must not be mirrored globally");
    ShmSegment::unlink(&shm_name).unwrap();
}

#[test]
fn control_loop_drives_a_registered_application_to_its_goal() {
    // A full observe -> decide -> act loop built only from public APIs:
    // the "application" beats at 4 beats/s per allocated core and wants 30-38.
    let clock = ManualClock::new();
    let registry = Registry::new();
    let hb = HeartbeatBuilder::new("controlled-app")
        .window(10)
        .clock(Arc::new(clock.clone()))
        .register_in(&registry)
        .build()
        .unwrap();
    hb.set_target_rate(30.0, 38.0).unwrap();

    let monitor = RateMonitor::new(registry.attach("controlled-app").unwrap()).with_check_every(10);
    let mut control = ControlLoop::new(
        monitor,
        StepController::new(),
        DiscreteActuator::new(1, 16, 1),
    );

    for _ in 0..600 {
        let cores = control.level();
        let rate = 4.0 * cores;
        clock.advance_secs(1.0 / rate);
        hb.heartbeat();
        control.tick();
    }
    let final_rate = 4.0 * control.level();
    assert!(
        (30.0..=38.0).contains(&final_rate),
        "control loop failed to converge: {final_rate}"
    );
    assert!(control.events().iter().any(|e| e.changed()));
}

#[test]
fn step_and_pi_controllers_agree_on_steady_state() {
    // Both controller policies must end up with a level whose rate is inside
    // the target window on the same linear plant.
    let target = (30.0, 35.0);
    let plant = |level: f64| 5.0 * level;

    let run = |controller: &mut dyn Controller| {
        let mut level = 1.0f64;
        for _ in 0..60 {
            let rate = plant(level);
            level = controller.desired_level(rate, target, level).clamp(1.0, 8.0);
        }
        plant(level)
    };
    let mut step = StepController::new();
    let mut pi = PiController::default_gains();
    let step_rate = run(&mut step);
    let pi_rate = run(&mut pi);
    assert!((target.0..=target.1).contains(&step_rate), "step: {step_rate}");
    assert!((target.0..=target.1).contains(&pi_rate), "pi: {pi_rate}");
}

#[test]
fn actuator_saturation_is_visible_to_callers() {
    let mut actuator = DiscreteActuator::new(1, 4, 1);
    assert!(actuator.saturated_low());
    actuator.apply(10.0);
    assert!(actuator.saturated_high());
    assert_eq!(actuator.value(), 4);
}

#[test]
fn heartbeats_from_many_threads_are_all_observed() {
    let registry = Registry::new();
    let hb = HeartbeatBuilder::new("threaded")
        .window(100)
        .capacity(1 << 14)
        .register_in(&registry)
        .build()
        .unwrap();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let hb = hb.clone();
            std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    hb.heartbeat_tagged(Tag::new(t * 10_000 + i));
                    hb.heartbeat_local(Tag::new(i));
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }
    let reader = registry.attach("threaded").unwrap();
    assert_eq!(reader.total_beats(), 8_000);
    assert_eq!(reader.local_threads().len(), 8);
    for thread in reader.local_threads() {
        assert_eq!(reader.history_of_thread(thread, 10_000).len(), 1_000);
    }
}
