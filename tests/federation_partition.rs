//! Partition and recovery: the leaf→parent link dies mid-stream, the leaf
//! keeps ingesting, and after reconnect the drop counters account for the
//! loss **exactly**.
//!
//! The leaf's capture tap is deliberately tiny (`tap_capacity: 8`), so a
//! held-down uplink forces drop-oldest shedding at the tap. The contract
//! under test:
//!
//! * local ingest never blocks or loses a beat — the leaf's own ledger
//!   always equals production;
//! * the relay reconnects with bounded backoff once the parent returns;
//! * at quiesce the parent's ledger balances to the beat:
//!   `parent.total + parent.dropped == produced`, with
//!   `parent.dropped == tap.dropped_beats()` — loss is accounted, never
//!   silent, and resumed delivery never double-counts.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use app_heartbeats::heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
use app_heartbeats::net::{Collector, CollectorConfig, UpstreamConfig, WireBeat};

const APPS: usize = 12;
const BEATS_PER_BATCH: usize = 4;

struct Proxy {
    addr: String,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    paused: Arc<AtomicBool>,
}

impl Proxy {
    fn spawn(target: String) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        let conns = Arc::new(Mutex::new(Vec::<TcpStream>::new()));
        let paused = Arc::new(AtomicBool::new(false));
        let held = Arc::clone(&conns);
        let gate = Arc::clone(&paused);
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(client) = stream else { break };
                if gate.load(Ordering::SeqCst) {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(server) = TcpStream::connect(&target) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                {
                    let mut live = held.lock().unwrap();
                    live.push(client.try_clone().expect("clone"));
                    live.push(server.try_clone().expect("clone"));
                }
                let (c, s) = (client.try_clone().expect("clone"), server.try_clone().expect("clone"));
                thread::spawn(move || pipe(client, server));
                thread::spawn(move || pipe(s, c));
            }
        });
        Proxy { addr, conns, paused }
    }

    fn sever(&self) {
        let mut live = self.conns.lock().unwrap();
        for conn in live.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }
}

fn pipe(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

fn batch(start_seq: u64, count: usize) -> Vec<WireBeat> {
    (0..count as u64)
        .map(|i| WireBeat {
            record: HeartbeatRecord::new(
                start_seq + i,
                (start_seq + i) * 10_000_000,
                Tag::NONE,
                BeatThreadId(0),
            ),
            scope: BeatScope::Global,
        })
        .collect()
}

#[test]
fn partition_recovery_accounts_loss_exactly() {
    let mut parent = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 1,
            ..CollectorConfig::default()
        },
    )
    .expect("parent collector");

    let proxy = Proxy::spawn(parent.ingest_addr().to_string());
    let mut leaf = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 1,
            upstream: Some(UpstreamConfig {
                tick: Duration::from_millis(1),
                tap_capacity: 8,
                backoff_min: Duration::from_millis(5),
                backoff_max: Duration::from_millis(80),
                ..UpstreamConfig::new(proxy.addr.clone(), "edge")
            }),
            ..CollectorConfig::default()
        },
    )
    .expect("leaf collector");

    let leaf_state = leaf.state();
    let tap = leaf_state.upstream_tap().expect("leaf tap");
    let stats = leaf_state.upstream_stats().expect("leaf stats");
    let mut produced: HashMap<String, u64> = HashMap::new();
    let feed_round = |produced: &mut HashMap<String, u64>| {
        for a in 0..APPS {
            let app = format!("svc{a:02}");
            let sent = produced.entry(app.clone()).or_insert(0);
            leaf_state.ingest_batch(&app, 0, batch(*sent, BEATS_PER_BATCH));
            *sent += BEATS_PER_BATCH as u64;
        }
    };

    // Phase 1: healthy link, a few rounds flow through.
    for _ in 0..5 {
        feed_round(&mut produced);
        thread::sleep(Duration::from_millis(3));
    }
    assert!(
        wait_until(Duration::from_secs(20), || stats.connected()),
        "uplink must come up"
    );

    // Phase 2: partition. Hold the parent down and keep feeding until the
    // 8-slot tap has demonstrably shed — ingest never blocks, the oldest
    // captures are dropped and counted.
    proxy.set_paused(true);
    proxy.sever();
    let mut outage_rounds = 0;
    while tap.dropped_beats() == 0 || outage_rounds < 10 {
        feed_round(&mut produced);
        outage_rounds += 1;
        assert!(outage_rounds < 10_000, "tap never shed despite a dead uplink");
        thread::sleep(Duration::from_millis(1));
    }
    let shed_during_outage = tap.dropped_beats();
    assert!(shed_during_outage > 0, "outage must overflow the tiny tap");

    // The leaf's own registry is untouched by the partition.
    for (app, &sent) in &produced {
        let snap = leaf_state.snapshot(app).expect("leaf snapshot");
        assert_eq!(snap.total_beats, sent, "{app}: local ingest lost beats");
    }

    // Phase 3: heal, feed a little more, and let the relay reconnect and
    // drain its backlog.
    proxy.set_paused(false);
    for _ in 0..5 {
        feed_round(&mut produced);
        thread::sleep(Duration::from_millis(3));
    }

    let parent_state = parent.state();
    let balanced = wait_until(Duration::from_secs(60), || {
        produced.iter().all(|(app, &sent)| {
            parent_state
                .snapshot(&format!("edge/{app}"))
                .is_some_and(|snap| snap.total_beats + snap.producer_dropped == sent)
        })
    });
    assert!(balanced, "parent ledger never balanced after recovery");

    assert!(
        stats.reconnects() >= 1,
        "the relay must have reconnected (saw {})",
        stats.reconnects()
    );

    // Exact accounting, per app and in aggregate: everything the parent
    // calls dropped is exactly what the tap shed; nothing is double-counted
    // (the identity is equality, not >=, so a replayed batch would fail it).
    let mut parent_total = 0u64;
    let mut parent_dropped = 0u64;
    for (app, &sent) in &produced {
        let snap = parent_state.snapshot(&format!("edge/{app}")).expect("snapshot");
        assert_eq!(
            snap.total_beats + snap.producer_dropped,
            sent,
            "edge/{app}: delivered + accounted-dropped != produced"
        );
        parent_total += snap.total_beats;
        parent_dropped += snap.producer_dropped;
    }
    assert_eq!(
        parent_dropped,
        tap.dropped_beats(),
        "parent's dropped ledger must equal exactly what the tap shed"
    );
    assert_eq!(
        parent_total + parent_dropped,
        produced.values().sum::<u64>(),
        "global ledger must balance"
    );

    // An unkeyed tree never challenges: the parent must have established
    // every (re)connect directly, with zero loop or auth rejections.
    assert_eq!(
        parent_state.uplink_rejections(),
        (0, 0),
        "an unkeyed parent must not reject its child"
    );

    // The origin row confirms the resume path: the link is up, and any
    // retransmitted duplicates were detected, counted, and not applied.
    let origins = parent_state.origins();
    assert_eq!(origins.len(), 1);
    assert_eq!(origins[0].node, "edge");
    assert!(origins[0].connected);
    assert_eq!(origins[0].relayed_beats, parent_total, "relayed == absorbed");

    leaf.shutdown();
    parent.shutdown();
}
