//! Property-based tests (proptest) over the framework's core invariants:
//! history buffers, rate estimation, target classification, phase schedules,
//! speedup models and the statistics helpers.

use std::sync::Arc;

use proptest::prelude::*;

use app_heartbeats::heartbeats::{
    window, AtomicRing, BeatThreadId, HeartbeatBuilder, HistoryBuffer, ManualClock, MovingRate,
    MutexRing, Tag, TargetRate, TargetStatus,
};
use app_heartbeats::heartbeats::stats;
use app_heartbeats::sim::{Amdahl, PhaseSchedule, SpeedupModel, SplitMix64};

proptest! {
    /// Whatever is pushed, a ring buffer never returns more than
    /// min(n, capacity, total) records, they are seq-ordered, and the newest
    /// record is always the last one pushed.
    #[test]
    fn ring_buffers_return_bounded_ordered_history(
        capacity in 1usize..128,
        pushes in 0usize..400,
        n in 0usize..200,
    ) {
        for buffer in [
            Box::new(AtomicRing::new(capacity)) as Box<dyn HistoryBuffer>,
            Box::new(MutexRing::new(capacity)) as Box<dyn HistoryBuffer>,
        ] {
            for i in 0..pushes {
                buffer.push(i as u64 * 10, Tag::new(i as u64), BeatThreadId(0));
            }
            let history = buffer.last_n(n);
            prop_assert!(history.len() <= n.min(capacity).min(pushes));
            prop_assert!(history.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
            if !history.is_empty() && n > 0 && pushes > 0 {
                prop_assert_eq!(history.last().unwrap().seq, pushes as u64 - 1);
            }
            prop_assert_eq!(buffer.total(), pushes as u64);
        }
    }

    /// The windowed rate over evenly spaced beats equals 1/interval.
    #[test]
    fn uniform_beats_yield_exact_rate(
        interval_ms in 1u64..10_000,
        beats in 2usize..200,
    ) {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("prop-uniform")
            .window(beats.max(2))
            .capacity(beats.max(2))
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        for _ in 0..beats {
            clock.advance_ns(interval_ms * 1_000_000);
            hb.heartbeat();
        }
        let expected = 1_000.0 / interval_ms as f64;
        let rate = hb.current_rate(0).unwrap();
        prop_assert!((rate - expected).abs() / expected < 1e-9);
    }

    /// A windowed rate, when defined, is always positive, and reversing the
    /// relative spacing of beats never changes the rate of the whole window.
    #[test]
    fn windowed_rate_depends_only_on_span(
        mut intervals in prop::collection::vec(1u64..1_000_000, 2..50),
    ) {
        let build = |intervals: &[u64]| {
            let mut t = 0u64;
            let mut records = vec![app_heartbeats::heartbeats::HeartbeatRecord::new(
                0, 0, Tag::NONE, BeatThreadId(0),
            )];
            for (i, &dt) in intervals.iter().enumerate() {
                t += dt;
                records.push(app_heartbeats::heartbeats::HeartbeatRecord::new(
                    i as u64 + 1, t, Tag::NONE, BeatThreadId(0),
                ));
            }
            records
        };
        let forward = window::windowed_rate(&build(&intervals)).unwrap();
        intervals.reverse();
        let reversed = window::windowed_rate(&build(&intervals)).unwrap();
        prop_assert!(forward > 0.0);
        prop_assert!((forward - reversed).abs() / forward < 1e-9);
    }

    /// MovingRate over a window of w sees at most w beats and matches the
    /// closed-form rate for uniform spacing.
    #[test]
    fn moving_rate_matches_uniform_closed_form(
        window_size in 2usize..64,
        interval_ns in 1_000u64..1_000_000_000,
        beats in 2usize..200,
    ) {
        let mut tracker = MovingRate::new(window_size);
        let mut t = 0u64;
        let mut last = None;
        for _ in 0..beats {
            t += interval_ns;
            last = tracker.push(t);
        }
        prop_assert!(tracker.len() <= window_size);
        let expected = 1e9 / interval_ns as f64;
        let rate = last.unwrap();
        prop_assert!((rate - expected).abs() / expected < 1e-9);
    }

    /// Target classification is consistent with the declared range.
    #[test]
    fn target_classification_is_consistent(
        min in 0.0f64..1_000.0,
        width in 0.0f64..1_000.0,
        rate in 0.0f64..4_000.0,
    ) {
        let max = min + width;
        let target = TargetRate::new(min, max).unwrap();
        let status = target.classify(rate);
        if rate < min {
            prop_assert_eq!(status, TargetStatus::BelowTarget);
        } else if rate > max {
            prop_assert_eq!(status, TargetStatus::AboveTarget);
        } else {
            prop_assert_eq!(status, TargetStatus::WithinTarget);
        }
    }

    /// Inverted target ranges are always rejected and leave the target unset.
    #[test]
    fn inverted_targets_are_rejected(min in 1.0f64..1_000.0, delta in 0.001f64..100.0) {
        let target = TargetRate::unset();
        prop_assert!(target.set(min, min - delta).is_err());
        prop_assert!(!target.is_set());
    }

    /// A phase schedule built from breakpoints returns exactly the multiplier
    /// of the segment the index falls into.
    #[test]
    fn phase_schedule_lookup_matches_segments(
        mults in prop::collection::vec(0.01f64..10.0, 1..8),
        gaps in prop::collection::vec(1u64..500, 0..7),
        probe in 0u64..5_000,
    ) {
        let mut breakpoints = vec![(0u64, mults[0])];
        let mut start = 0u64;
        for (i, gap) in gaps.iter().enumerate().take(mults.len() - 1) {
            start += gap;
            breakpoints.push((start, mults[i + 1]));
        }
        let schedule = PhaseSchedule::from_breakpoints(&breakpoints);
        let expected = breakpoints
            .iter()
            .rev()
            .find(|&&(s, _)| probe >= s)
            .map(|&(_, m)| m)
            .unwrap();
        prop_assert_eq!(schedule.multiplier(probe), expected);
    }

    /// Amdahl speedup is monotone in cores, equals 1 at one core, and never
    /// exceeds the serial-fraction bound.
    #[test]
    fn amdahl_speedup_is_monotone_and_bounded(
        parallel in 0.0f64..1.0,
        efficiency in 0.05f64..1.0,
        cores in 1usize..64,
    ) {
        let model = Amdahl::with_efficiency(parallel, efficiency);
        prop_assert!((model.speedup(1) - 1.0).abs() < 1e-12);
        prop_assert!(model.speedup(cores) <= model.speedup(cores + 1) + 1e-12);
        if parallel < 1.0 {
            prop_assert!(model.speedup(cores) <= 1.0 / (1.0 - parallel) + 1e-9);
        }
        prop_assert!(model.speedup(cores) >= 1.0 - 1e-12);
    }

    /// Percentiles always lie between the minimum and maximum of the data,
    /// and the mean lies between the 0th and 100th percentile.
    #[test]
    fn percentile_and_mean_are_bounded(
        values in prop::collection::vec(-1_000.0f64..1_000.0, 1..100),
        p in 0.0f64..100.0,
    ) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let pct = stats::percentile(&values, p).unwrap();
        prop_assert!(pct >= lo - 1e-9 && pct <= hi + 1e-9);
        let mean = stats::mean(&values);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    /// Online statistics match the batch formulas for any input.
    #[test]
    fn online_stats_match_batch(values in prop::collection::vec(-1_000.0f64..1_000.0, 2..200)) {
        let mut online = stats::OnlineStats::new();
        for &v in &values {
            online.push(v);
        }
        prop_assert!((online.mean() - stats::mean(&values)).abs() < 1e-6);
        prop_assert!((online.stddev() - stats::stddev(&values)).abs() < 1e-6);
    }

    /// SplitMix64 stays inside requested bounds and is reproducible.
    #[test]
    fn splitmix_bounds_and_determinism(seed in any::<u64>(), lo in -100.0f64..100.0, width in 0.001f64..100.0) {
        let hi = lo + width;
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.uniform(lo, hi);
            prop_assert!(x >= lo && x < hi);
            prop_assert_eq!(x, b.uniform(lo, hi));
        }
    }

    /// Heartbeat sequence numbers are dense regardless of tag values or the
    /// number of beats.
    #[test]
    fn heartbeat_sequences_are_dense(tags in prop::collection::vec(any::<u64>(), 1..200)) {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("prop-seq")
            .window(2)
            .capacity(256)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        for (i, &tag) in tags.iter().enumerate() {
            clock.advance_ns(1);
            let seq = hb.heartbeat_tagged(Tag::new(tag));
            prop_assert_eq!(seq, i as u64);
        }
        prop_assert_eq!(hb.total_beats(), tags.len() as u64);
    }
}

// --- Federation naming: namespaced origins, globs, and wire round-trips ---

use app_heartbeats::heartbeats::{BeatScope, HeartbeatRecord};
use app_heartbeats::net::wire::{self, EventFrame, EventPayload, Frame, WireBeat};

/// Alphabet for federation node (origin) names: printable, no `/`, no `*`.
const NODE_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
/// Alphabet for application name components. Literal `*` is deliberately
/// included: application names may contain it even though patterns treat it
/// as a wildcard — the properties below pin down that asymmetry.
const APP_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-*";
/// Alphabet for arbitrary subscription patterns, wildcards and separators
/// included.
const PATTERN_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-*/";

/// Maps seed bytes into `alphabet`, yielding a name drawn from it.
fn from_alphabet(alphabet: &[u8], seeds: &[u8]) -> String {
    seeds
        .iter()
        .map(|&s| alphabet[s as usize % alphabet.len()] as char)
        .collect()
}

proptest! {
    /// `node/app` composes into a valid application name (parents accept
    /// it), while the composite is never itself a valid node name — `/` is
    /// reserved as the namespace separator, so re-prefixing at each tier
    /// parses unambiguously.
    #[test]
    fn namespaced_names_validate_as_apps_not_nodes(
        node_seed in prop::collection::vec(any::<u8>(), 1..16),
        app_seed in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let node = from_alphabet(NODE_ALPHABET, &node_seed);
        let app = from_alphabet(APP_ALPHABET, &app_seed);
        let name = format!("{node}/{app}");
        prop_assert!(wire::valid_node_name(&node));
        prop_assert!(wire::valid_app_name(&name));
        prop_assert!(!wire::valid_node_name(&name));
    }

    /// Namespaced names survive a v3 `Event` frame encode→decode round trip
    /// byte-identically, including literal `*` in the application part.
    #[test]
    fn namespaced_names_round_trip_event_frames(
        node_seed in prop::collection::vec(any::<u8>(), 1..16),
        app_seed in prop::collection::vec(any::<u8>(), 1..32),
        sub_id in any::<u32>(),
        sent_at_ns in any::<u64>(),
        dropped_total in any::<u64>(),
        seqs in prop::collection::vec(any::<u32>(), 0..20),
    ) {
        let node = from_alphabet(NODE_ALPHABET, &node_seed);
        let app = from_alphabet(APP_ALPHABET, &app_seed);
        let beats: Vec<WireBeat> = seqs
            .iter()
            .enumerate()
            .map(|(i, &s)| WireBeat {
                record: HeartbeatRecord::new(
                    s as u64,
                    (i as u64 + 1) * 1_000,
                    Tag::new(s as u64),
                    BeatThreadId(0),
                ),
                scope: BeatScope::Global,
            })
            .collect();
        let frame = Frame::Event(EventFrame {
            sub_id,
            sent_at_ns,
            cursor: 0,
            app: format!("{node}/{app}"),
            payload: EventPayload::Beats { dropped_total, beats },
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// The same holds inside the federation rollup envelope
    /// (`RelayEvent{seq, event}`), which carries the namespaced name one
    /// more hop up the tree.
    #[test]
    fn namespaced_names_round_trip_relay_events(
        node_seed in prop::collection::vec(any::<u8>(), 1..16),
        app_seed in prop::collection::vec(any::<u8>(), 1..32),
        seq in 1u64..u64::MAX,
        dropped_total in any::<u64>(),
    ) {
        let node = from_alphabet(NODE_ALPHABET, &node_seed);
        let app = from_alphabet(APP_ALPHABET, &app_seed);
        let frame = Frame::RelayEvent {
            seq,
            event: EventFrame {
                sub_id: 0,
                sent_at_ns: 0,
                cursor: 0,
                app: format!("{node}/{app}"),
                payload: EventPayload::Beats { dropped_total, beats: Vec::new() },
            },
        };
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Glob semantics over namespaced names: the universal and node-scoped
    /// wildcards match, a name used as its own pattern matches (a literal
    /// `*` in the name acts as a wildcard in the pattern, which can always
    /// re-consume the same text), and a *different* node's scope never
    /// matches — node names contain no `/`, so the separator can only align
    /// when the origins are equal.
    #[test]
    fn glob_matches_namespaced_names_coherently(
        node_seed in prop::collection::vec(any::<u8>(), 1..16),
        other_seed in prop::collection::vec(any::<u8>(), 1..16),
        app_seed in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let node = from_alphabet(NODE_ALPHABET, &node_seed);
        let other = from_alphabet(NODE_ALPHABET, &other_seed);
        let app = from_alphabet(APP_ALPHABET, &app_seed);
        let name = format!("{node}/{app}");
        prop_assert!(wire::glob_match("*", &name));
        prop_assert!(wire::glob_match(&format!("{node}/*"), &name));
        prop_assert!(wire::glob_match(&name, &name));
        if other != node {
            prop_assert!(!wire::glob_match(&format!("{other}/*"), &name));
        }
    }

    /// Propagation soundness: whenever a pattern matches some name under
    /// `node/`, `glob_overlaps_prefix` must report overlap for that prefix
    /// — the parent may over-propagate (it re-filters on delivery) but must
    /// never fail to propagate a subscription a child event could match.
    #[test]
    fn glob_overlap_never_false_negative(
        node_seed in prop::collection::vec(any::<u8>(), 1..16),
        app_seed in prop::collection::vec(any::<u8>(), 1..32),
        pattern_seed in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let node = from_alphabet(NODE_ALPHABET, &node_seed);
        let app = from_alphabet(APP_ALPHABET, &app_seed);
        let pattern = from_alphabet(PATTERN_ALPHABET, &pattern_seed);
        let name = format!("{node}/{app}");
        let prefix = format!("{node}/");
        if wire::glob_match(&pattern, &name) {
            prop_assert!(
                wire::glob_overlaps_prefix(&pattern, &prefix),
                "pattern {:?} matches {:?} but reports no overlap with {:?}",
                pattern, name, prefix
            );
        }
        // And the patterns federation itself synthesizes always overlap.
        prop_assert!(wire::glob_overlaps_prefix("*", &prefix));
        prop_assert!(wire::glob_overlaps_prefix(&format!("{node}/*"), &prefix));
        prop_assert!(wire::glob_overlaps_prefix(&name, &prefix));
    }
}
