//! End-to-end loopback tests of the network telemetry subsystem:
//! producer (`TcpBackend`) → collector daemon → observer (`RemoteReader`
//! driving a `control` monitor), plus the backpressure guarantees when the
//! collector is down.

use std::sync::Arc;
use std::time::{Duration, Instant};

use app_heartbeats::control::{RateMonitor, RateSource};
use app_heartbeats::heartbeats::{Backend, HeartbeatBuilder};
use app_heartbeats::net::{Collector, RemoteReader, TcpBackend, TcpBackendConfig};

/// Polls `probe` until it returns `Some` or the timeout elapses.
fn wait_for<T>(timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> Option<T> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(value) = probe() {
            return Some(value);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn producer_collector_observer_loopback() {
    let collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").expect("bind collector");

    // Producer: a heartbeat-instrumented app mirroring to the collector.
    let backend = Arc::new(TcpBackend::with_config(
        collector.ingest_addr().to_string(),
        "pipeline",
        TcpBackendConfig {
            flush_interval: Duration::from_millis(2),
            default_window: 20,
            ..TcpBackendConfig::default()
        },
    ));
    let hb = HeartbeatBuilder::new("pipeline")
        .window(20)
        .backend(Arc::clone(&backend) as Arc<dyn app_heartbeats::heartbeats::Backend>)
        .build()
        .expect("build heartbeat");
    hb.set_target_rate(30.0, 35.0).expect("set target");

    const BEATS: u64 = 150;
    for _ in 0..BEATS {
        std::thread::sleep(Duration::from_millis(1));
        hb.heartbeat();
    }
    hb.flush().expect("flush backends");

    // Observer: a remote reader over the query port.
    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );
    reader.ping().expect("collector answers ping");

    // All beats eventually land in the collector registry.
    let snapshot = wait_for(Duration::from_secs(10), || {
        reader
            .snapshot("pipeline")
            .ok()
            .flatten()
            .filter(|s| s.total_beats >= BEATS)
    })
    .expect("collector received all beats");
    assert_eq!(snapshot.total_beats, BEATS);
    assert!(snapshot.alive, "app beat recently, must be alive");
    assert_eq!(snapshot.producer_dropped, 0, "collector was up throughout");

    // The collector's windowed rate tracks the producer's local estimate
    // within 10% (both are computed from the same beat timestamps).
    let local_rate = hb.current_rate(0).expect("local rate");
    let remote_rate = snapshot.rate_bps.expect("remote rate");
    assert!(
        (remote_rate - local_rate).abs() / local_rate < 0.10,
        "remote {remote_rate} vs local {local_rate}"
    );

    // Target propagation: the initial goal and a later change both arrive.
    assert_eq!(snapshot.target, Some((30.0, 35.0)));
    hb.set_target_rate(50.0, 60.0).expect("retarget");
    hb.flush().expect("flush target");
    let updated = wait_for(Duration::from_secs(5), || {
        reader
            .snapshot("pipeline")
            .ok()
            .flatten()
            .filter(|s| s.target == Some((50.0, 60.0)))
    });
    assert!(updated.is_some(), "target change must reach the collector");

    // The remote app drives a control-layer monitor exactly like a local
    // reader would.
    let remote = reader.app("pipeline");
    assert_eq!(remote.name(), "pipeline");
    assert_eq!(remote.total_beats(), BEATS);
    assert_eq!(remote.target(), Some((50.0, 60.0)));
    let mut monitor = RateMonitor::new(remote).with_check_every(1);
    let observation = monitor.poll().expect("observation from remote source");
    assert_eq!(observation.beat, BEATS);
    assert!(observation.rate_bps.is_some());

    // The producer-side stats account for every beat.
    let stats = wait_for(Duration::from_secs(5), || {
        let stats = backend.stats();
        (stats.mirrored == BEATS).then_some(stats)
    })
    .expect("all beats shipped");
    assert_eq!(stats.dropped, 0);

    // Registry listing and Prometheus export expose the app.
    assert_eq!(reader.apps().expect("LIST"), vec!["pipeline".to_string()]);
    let metrics = reader.metrics().expect("METRICS");
    assert!(metrics.contains("hb_app_beats_total{app=\"pipeline\"} 150"));
    assert!(metrics.contains("hb_app_target_min_bps{app=\"pipeline\"} 50"));
}

#[test]
fn on_beat_never_blocks_when_collector_is_down() {
    // Reserve a port, then free it so nothing listens there.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let dead_addr = placeholder.local_addr().expect("addr").to_string();
    drop(placeholder);

    let backend = Arc::new(TcpBackend::new(dead_addr, "orphan"));
    let hb = HeartbeatBuilder::new("orphan")
        .capacity(1 << 14)
        .backend(Arc::clone(&backend) as Arc<dyn app_heartbeats::heartbeats::Backend>)
        .build()
        .expect("build heartbeat");

    const BEATS: u64 = 100_000;
    let start = Instant::now();
    for _ in 0..BEATS {
        hb.heartbeat();
    }
    let elapsed = start.elapsed();
    assert_eq!(hb.total_beats(), BEATS, "every beat lands in local history");
    assert!(
        elapsed < Duration::from_secs(10),
        "100k beats into a dead collector took {elapsed:?}; the hot path must not block"
    );

    let stats = hb.backend_stats();
    assert!(
        stats.dropped > 0,
        "with no collector, the bounded queue must shed beats"
    );
    assert_eq!(
        stats.mirrored, 0,
        "nothing can have been delivered to a dead collector"
    );
    assert!(backend.dropped_beats() > 0);
    assert!(!backend.is_connected());
}

#[test]
fn multiple_apps_share_one_collector() {
    let collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").expect("bind collector");
    let ingest = collector.ingest_addr().to_string();

    let apps = ["svc-a", "svc-b", "svc-c"];
    let handles: Vec<_> = apps
        .iter()
        .map(|name| {
            let ingest = ingest.clone();
            let name = name.to_string();
            std::thread::spawn(move || {
                let backend = Arc::new(TcpBackend::with_config(
                    ingest,
                    name.clone(),
                    TcpBackendConfig {
                        flush_interval: Duration::from_millis(2),
                        ..TcpBackendConfig::default()
                    },
                ));
                let hb = HeartbeatBuilder::new(name)
                    .backend(Arc::clone(&backend) as Arc<dyn app_heartbeats::heartbeats::Backend>)
                    .build()
                    .expect("build heartbeat");
                for _ in 0..50 {
                    std::thread::sleep(Duration::from_micros(500));
                    hb.heartbeat();
                }
                hb.flush().expect("flush");
                // Wait for delivery before dropping the backend.
                let deadline = Instant::now() + Duration::from_secs(10);
                while backend.sent() < 50 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
                assert_eq!(backend.sent(), 50);
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("producer thread");
    }

    let state = collector.state();
    let names = state.app_names();
    assert_eq!(names, apps.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for app in apps {
        let snap = state.snapshot(app).expect("snapshot");
        assert_eq!(snap.total_beats, 50, "{app} delivered every beat");
    }
}
