//! End-to-end tests of the unified observer API: push subscriptions over a
//! real loopback collector, the `Observe` trait across all three transports
//! (in-process reader, shared memory, remote collector), subscription
//! lifecycle and backpressure accounting, idle-eviction exemption, and the
//! clean `Unsupported` failure against a pre-subscription collector.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use app_heartbeats::control::{DiscreteActuator, RateMonitor, StepController};
use app_heartbeats::heartbeats::observe::{
    Interest, Observe, ObserveEventKind, ObserveFilter, ObservedHealth,
};
use app_heartbeats::heartbeats::{Backend, HeartbeatBuilder};
use app_heartbeats::net::{
    Collector, CollectorConfig, HealthConfig, NetError, RemoteReader, TcpBackend,
    TcpBackendConfig,
};

/// Polls `probe` until it returns `Some` or the timeout elapses.
fn wait_for<T>(timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> Option<T> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(value) = probe() {
            return Some(value);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A collector with a short health window, plus a connected producer.
fn rig(
    app: &str,
    window: Duration,
) -> (
    Collector,
    Arc<TcpBackend>,
    app_heartbeats::heartbeats::Heartbeat,
) {
    let collector = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            health: HealthConfig {
                window,
                // Sleep-paced test producers jitter with the scheduler; only
                // genuine pathologies should trip the detector here.
                jitter_cv: 10.0,
                ..HealthConfig::default()
            },
            ..CollectorConfig::default()
        },
    )
    .expect("bind collector");
    let backend = Arc::new(TcpBackend::with_config(
        collector.ingest_addr().to_string(),
        app,
        TcpBackendConfig {
            flush_interval: Duration::from_millis(2),
            ..TcpBackendConfig::default()
        },
    ));
    let hb = HeartbeatBuilder::new(app)
        .backend(Arc::clone(&backend) as Arc<dyn Backend>)
        .build()
        .expect("build heartbeat");
    (collector, backend, hb)
}

/// The acceptance scenario: a control loop driven by `RemoteApp` through
/// the `Observe` trait receives **pushed** health-transition events over a
/// real loopback connection — with zero polling requests issued after the
/// subscription is acknowledged (asserted by the collector's request
/// counter) — while the same connection keeps serving interleaved polls.
#[test]
fn pushed_health_transitions_drive_observation_without_polling() {
    const WINDOW: Duration = Duration::from_millis(300);
    let (collector, _backend, hb) = rig("obs-app", WINDOW);
    hb.set_target_rate(10_000.0, 20_000.0).expect("target");
    for _ in 0..30 {
        std::thread::sleep(Duration::from_millis(2));
        hb.heartbeat();
    }
    hb.flush().expect("flush");

    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );
    let remote = reader.app("obs-app");

    // The same RemoteApp drives a classic polling control loop through the
    // blanket RateSource impl — unchanged consumer code over the unified
    // trait.
    let monitor = RateMonitor::new(remote.clone()).with_check_every(1);
    let mut control = app_heartbeats::control::ControlLoop::new(
        monitor,
        StepController::new(),
        DiscreteActuator::new(1, 8, 4),
    );
    wait_for(Duration::from_secs(5), || {
        let (level, _) = control.tick_guarded();
        level.is_actionable().then_some(())
    })
    .expect("remote app actionable while beating");

    // Open the push subscription through the Observe trait.
    let filter = ObserveFilter::new(Interest::HEALTH).min_interval(Duration::from_millis(20));
    let mut stream = remote.subscribe(&filter).expect("subscribe");

    // The first assessment after subscribing announces the current state.
    let first = stream
        .wait_next(Duration::from_secs(5))
        .expect("initial health transition");
    assert_eq!(first.app, "obs-app");
    let ObserveEventKind::Health { from, to } = first.kind else {
        panic!("expected a health transition, got {first:?}");
    };
    assert_eq!(from, ObservedHealth::NoSignal);
    // The sleep-paced producer sits far below its declared target, so the
    // detector may report Degraded (rate-below-target) rather than Healthy;
    // either way the stream is live.
    assert!(
        to >= ObservedHealth::Degraded,
        "initial transition lands on a live state, got {to:?}"
    );

    // From here on: ZERO polling. Every observation below is pushed.
    let state = collector.state();
    let queries_before = state.queries_total();

    // Stall the producer; the collector's sweep must originate a
    // Healthy → Stalled event (no ingest traffic can carry it).
    let stalled = wait_for(WINDOW * 10, || {
        stream.try_next().and_then(|event| match event.kind {
            ObserveEventKind::Health { from, to } if to == ObservedHealth::Stalled => {
                Some((from, to))
            }
            _ => None,
        })
    })
    .expect("pushed stall transition");
    assert!(
        stalled.0 >= ObservedHealth::Degraded,
        "stall transitions from a live state, got {:?}",
        stalled.0
    );

    // Resume; the recovery transition is assessed at ingest time and
    // pushed.
    for _ in 0..30 {
        std::thread::sleep(Duration::from_millis(2));
        hb.heartbeat();
    }
    hb.flush().expect("flush");
    wait_for(Duration::from_secs(5), || {
        stream.try_next().and_then(|event| match event.kind {
            ObserveEventKind::Health { to, .. } if to >= ObservedHealth::Degraded => Some(()),
            _ => None,
        })
    })
    .expect("pushed recovery transition");

    assert_eq!(
        state.queries_total(),
        queries_before,
        "a full stall/recovery cycle was observed without one polling request"
    );

    // Interleaved polls: the same demuxed connection still answers queries
    // while the subscription stays live.
    let snap = reader
        .snapshot("obs-app")
        .expect("poll over the subscribed connection")
        .expect("known app");
    assert!(snap.total_beats >= 60);
    assert_eq!(state.queries_total(), queries_before + 1);
    assert!(!stream.is_closed(), "subscription survives interleaved polls");
    assert_eq!(state.subscriptions().active(), 1);
}

/// Subscription lifecycle: subscribe → events flow → unsubscribe → no
/// further events (pinned by the collector's own counters, not just
/// client-side silence).
#[test]
fn subscription_lifecycle_stops_events_after_unsubscribe() {
    let (collector, _backend, hb) = rig("life-app", Duration::from_secs(5));
    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );

    let filter = ObserveFilter::new(Interest::SNAPSHOTS).min_interval(Duration::ZERO);
    let sub = reader.subscribe("life-app", &filter).expect("subscribe");

    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(1));
        hb.heartbeat();
    }
    hb.flush().expect("flush");

    // Events flow: snapshot totals grow toward 20.
    wait_for(Duration::from_secs(5), || {
        sub.try_next().and_then(|event| match event.payload {
            app_heartbeats::net::EventPayload::Snapshot { total_beats, .. }
                if total_beats >= 20 =>
            {
                Some(())
            }
            _ => None,
        })
    })
    .expect("snapshot events flow");

    // Unsubscribe synchronously; the ack guarantees the collector purged
    // the stream.
    sub.unsubscribe().expect("unsubscribe acked");
    let state = collector.state();
    assert_eq!(state.subscriptions().active(), 0, "registry emptied");
    let events_at_unsub = state.events_total();

    // More beats arrive; the collector must originate nothing new.
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(1));
        hb.heartbeat();
    }
    hb.flush().expect("flush");
    wait_for(Duration::from_secs(5), || {
        (state.snapshot("life-app")?.total_beats >= 40).then_some(())
    })
    .expect("post-unsubscribe beats ingested");
    std::thread::sleep(Duration::from_millis(100)); // pump slack
    assert_eq!(
        state.events_total(),
        events_at_unsub,
        "no events originate after the unsubscribe ack"
    );
}

/// Slow-subscriber backpressure at the collector: a bounded queue sheds its
/// oldest events and the loss is visible in `events_dropped`, STATS and the
/// Prometheus export. Uses the embedded registry (`subscribe_local`) so the
/// queue genuinely backs up instead of draining into a socket.
#[test]
fn slow_subscriber_sheds_oldest_with_accounting() {
    use app_heartbeats::heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
    use app_heartbeats::net::{CollectorState, WireBeat};

    let state = CollectorState::new(CollectorConfig {
        sub_queue_capacity: 8,
        ..CollectorConfig::default()
    });
    let sub = state
        .subscribe_local("slow-*", Interest::SNAPSHOTS, Duration::ZERO)
        .expect("local subscription");

    // 30 one-beat batches, never drained: 22 must be shed, newest 8 kept.
    for i in 0..30u64 {
        state.ingest_batch(
            "slow-app",
            0,
            vec![WireBeat {
                record: HeartbeatRecord::new(i, i * 1_000_000, Tag::NONE, BeatThreadId(0)),
                scope: BeatScope::Global,
            }],
        );
    }
    assert_eq!(sub.queued(), 8, "queue bounded at capacity");
    assert_eq!(sub.dropped(), 22, "oldest events shed, each counted");
    assert_eq!(state.events_total(), 30);
    assert_eq!(state.events_dropped_total(), 22);

    let metrics = state.prometheus();
    assert!(
        metrics.contains("hb_collector_events_dropped_total 22"),
        "metrics: {metrics}"
    );
    assert!(metrics.contains("hb_collector_events_total 30"));
    assert!(metrics.contains("hb_collector_subscriptions 1"));

    // The retained suffix is the newest 8 batches, in order.
    let events = sub.drain();
    let totals: Vec<u64> = events
        .iter()
        .map(|event| match event.payload {
            app_heartbeats::net::EventPayload::Snapshot { total_beats, .. } => total_beats,
            ref other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert_eq!(totals, (23..=30).collect::<Vec<u64>>());
}

/// An embedded (in-process) subscription detects stalls through
/// `sweep_local` — the no-connection counterpart of the reactor-pump sweep
/// network subscribers get automatically.
#[test]
fn local_subscription_sweep_detects_stall() {
    use app_heartbeats::heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
    use app_heartbeats::net::{CollectorState, EventPayload, HealthStatus, WireBeat};

    let state = CollectorState::new(CollectorConfig {
        health: HealthConfig {
            window: Duration::from_millis(50),
            jitter_cv: 10.0,
            ..HealthConfig::default()
        },
        ..CollectorConfig::default()
    });
    let sub = state
        .subscribe_local("swept", Interest::HEALTH, Duration::ZERO)
        .expect("local subscription");
    state.ingest_batch(
        "swept",
        0,
        (0..5u64).map(|i| WireBeat {
            record: HeartbeatRecord::new(i, i * 10_000_000, Tag::NONE, BeatThreadId(0)),
            scope: BeatScope::Global,
        }),
    );
    let first = sub.drain();
    assert!(
        matches!(
            first.last().map(|e| &e.payload),
            Some(EventPayload::HealthTransition { .. })
        ),
        "ingest-time transition delivered: {first:?}"
    );

    // Silence past the window; only the sweep can notice.
    std::thread::sleep(Duration::from_millis(120));
    state.sweep_local(&sub);
    let swept = sub.drain();
    assert!(
        swept.iter().any(|event| matches!(
            event.payload,
            EventPayload::HealthTransition {
                to: HealthStatus::Stalled,
                ..
            }
        )),
        "sweep delivers the stall transition: {swept:?}"
    );
}

/// The idle-eviction satellite: with an idle timeout *shorter* than the gap
/// between events, a connection holding an active subscription survives,
/// while a plain idle observer connection on the same collector is
/// evicted.
#[test]
fn active_subscription_survives_idle_timeout_shorter_than_event_gap() {
    const IDLE: Duration = Duration::from_millis(300);
    let collector = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            idle_timeout: IDLE,
            health: HealthConfig {
                window: Duration::from_millis(200),
                jitter_cv: 10.0,
                ..HealthConfig::default()
            },
            ..CollectorConfig::default()
        },
    )
    .expect("bind collector");
    let state = collector.state();

    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );
    let filter = ObserveFilter::new(Interest::HEALTH).min_interval(Duration::from_millis(20));
    // Subscribe to an application that does not exist yet: the connection
    // stays completely silent — no events, no queries — far beyond the
    // idle timeout.
    let sub = reader.subscribe("quiet-app", &filter).expect("subscribe");

    // A control connection with no subscription goes just as silent...
    let idle_probe = std::net::TcpStream::connect(collector.query_addr()).expect("raw observer");
    // ...and is evicted.
    wait_for(Duration::from_secs(10), || {
        (state.evicted_total() >= 1).then_some(())
    })
    .expect("plain idle connection evicted");
    std::thread::sleep(IDLE * 2);
    assert_eq!(
        state.subscriptions().active(),
        1,
        "subscribed connection survives (its registry entry would vanish on close)"
    );

    // The surviving subscription still works: a producer appears and its
    // first health assessment is pushed on the original connection.
    let backend = Arc::new(TcpBackend::with_config(
        collector.ingest_addr().to_string(),
        "quiet-app",
        TcpBackendConfig {
            flush_interval: Duration::from_millis(2),
            ..TcpBackendConfig::default()
        },
    ));
    let hb = HeartbeatBuilder::new("quiet-app")
        .backend(Arc::clone(&backend) as Arc<dyn Backend>)
        .build()
        .expect("build heartbeat");
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(2));
        hb.heartbeat();
    }
    hb.flush().expect("flush");
    let event = wait_for(Duration::from_secs(5), || sub.try_next())
        .expect("event delivered after the idle window passed");
    assert_eq!(event.app, "quiet-app");
    drop(idle_probe);
}

/// Subscribing through a collector that predates the subscription protocol
/// fails fast with `Unsupported` — negotiated up front, never by hanging on
/// a `Subscribe` nobody will acknowledge.
#[test]
fn subscribing_to_a_v2_collector_reports_unsupported() {
    // A faithful stand-in for the old collector's query port: answers every
    // line with the old `ERR unknown command` and knows no binary frames.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake collector");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                while let Ok(n) = reader.read_line(&mut line) {
                    if n == 0 {
                        break;
                    }
                    let cmd = line.trim().to_string();
                    let mut out = stream.try_clone().expect("clone");
                    if cmd == "PING" {
                        let _ = writeln!(out, "PONG");
                    } else {
                        let _ = writeln!(out, "ERR unknown command {cmd} (try HELP)");
                    }
                    line.clear();
                }
            });
        }
    });

    let reader = Arc::new(RemoteReader::connect(addr.to_string()).expect("connect"));
    reader.ping().expect("old collector still answers pings");
    let filter = ObserveFilter::new(Interest::HEALTH);
    let started = Instant::now();
    let err = reader
        .subscribe("anything", &filter)
        .expect_err("subscribe must fail against a v2 collector");
    assert!(
        matches!(err, NetError::Unsupported(_)),
        "expected Unsupported, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "failure is immediate, not a hang"
    );
}

/// One generic observer runs unchanged across all three transports — the
/// unification the `Observe` trait exists for.
#[test]
fn one_observer_fn_runs_over_local_shm_and_remote_transports() {
    fn watch<T: Observe>(source: &T) -> (String, u64, ObservedHealth) {
        let snapshot = source.snapshot().expect("known application");
        (
            source.name().to_string(),
            snapshot.total_beats,
            source.health(),
        )
    }

    // Local, in-process.
    let hb = HeartbeatBuilder::new("tri-app").build().expect("local");
    for _ in 0..10 {
        hb.heartbeat();
    }
    let (name, total, health) = watch(&hb.reader());
    assert_eq!((name.as_str(), total), ("tri-app", 10));
    assert_eq!(health, ObservedHealth::Healthy);

    // Shared memory.
    let shm_name = format!("hb-observe-tri-{}", std::process::id());
    let shm_backend =
        app_heartbeats::shm::ShmBackend::create(&shm_name, 64, 20).expect("shm backend");
    let hb2 = HeartbeatBuilder::new("tri-app")
        .backend(Arc::new(shm_backend))
        .build()
        .expect("shm heartbeat");
    for _ in 0..10 {
        hb2.heartbeat();
    }
    let observer = app_heartbeats::shm::ShmObserver::attach(&shm_name).expect("attach");
    let (_, total, health) = watch(&observer);
    assert_eq!(total, 10);
    assert_eq!(health, ObservedHealth::Healthy);
    app_heartbeats::shm::ShmSegment::unlink(&shm_name).expect("unlink");

    // Remote, through a collector.
    let (collector, _backend, hb3) = rig("tri-app", Duration::from_secs(5));
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(1));
        hb3.heartbeat();
    }
    hb3.flush().expect("flush");
    let reader = Arc::new(
        RemoteReader::connect(collector.query_addr().to_string()).expect("connect reader"),
    );
    let remote = reader.app("tri-app");
    wait_for(Duration::from_secs(5), || {
        (Observe::snapshot(&remote)?.total_beats >= 10).then_some(())
    })
    .expect("beats reach the collector");
    let (name, total, health) = watch(&remote);
    assert_eq!((name.as_str(), total), ("tri-app", 10));
    assert_eq!(health, ObservedHealth::Healthy);

    // And the local polling subscription synthesizes the same event shapes
    // the remote plane pushes.
    let filter = ObserveFilter::new(Interest::SNAPSHOTS | Interest::HEALTH)
        .min_interval(Duration::ZERO);
    let mut local_stream = hb.reader().subscribe(&filter).expect("local subscribe");
    let event = local_stream
        .wait_next(Duration::from_secs(1))
        .expect("synthesized event");
    assert!(matches!(
        event.kind,
        ObserveEventKind::Health { .. } | ObserveEventKind::Snapshot(_)
    ));
}
