//! Subscription propagation down the federation tree.
//!
//! A subscription placed at the root is re-issued to every linked child,
//! events flow leaf→root tagged with the root's subscription id, and the
//! root re-checks the original pattern after re-prefixing the origin — so
//! a root glob spanning two leaves sees every matching leaf event exactly
//! once. Unsubscribing at the root retracts the propagated subscriptions:
//! each child's `subscriptions` gauge returns to 0.

use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

use app_heartbeats::heartbeats::observe::Interest;
use app_heartbeats::heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
use app_heartbeats::net::{
    Collector, CollectorConfig, EventPayload, UpstreamConfig, WireBeat,
};

const APPS_PER_LEAF: usize = 5;
const ROUNDS: usize = 10;
const BEATS_PER_BATCH: usize = 3;

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

fn batch(start_seq: u64, count: usize) -> Vec<WireBeat> {
    (0..count as u64)
        .map(|i| WireBeat {
            record: HeartbeatRecord::new(
                start_seq + i,
                (start_seq + i) * 10_000_000,
                Tag::NONE,
                BeatThreadId(0),
            ),
            scope: BeatScope::Global,
        })
        .collect()
}

fn uplink(parent: String, node: &str) -> UpstreamConfig {
    UpstreamConfig {
        tick: Duration::from_millis(1),
        backoff_min: Duration::from_millis(5),
        backoff_max: Duration::from_millis(80),
        ..UpstreamConfig::new(parent, node)
    }
}

fn spawn_tree() -> (Collector, Vec<Collector>) {
    let root = Collector::with_config(
        "127.0.0.1:0",
        "127.0.0.1:0",
        CollectorConfig {
            io_threads: 1,
            ..CollectorConfig::default()
        },
    )
    .expect("root collector");
    let leaves = ["leaf-a", "leaf-b"]
        .iter()
        .map(|node| {
            Collector::with_config(
                "127.0.0.1:0",
                "127.0.0.1:0",
                CollectorConfig {
                    io_threads: 1,
                    upstream: Some(uplink(root.ingest_addr().to_string(), node)),
                    ..CollectorConfig::default()
                },
            )
            .expect("leaf collector")
        })
        .collect();
    (root, leaves)
}

/// A root glob spanning both leaves: every leaf beat event is delivered at
/// the root exactly once, and dropping the root subscription drives each
/// child's `subscriptions` gauge back to 0.
#[test]
fn root_glob_spans_two_leaves_exactly_once() {
    let (mut root, mut leaves) = spawn_tree();
    let root_state = root.state();

    let sub = root_state
        .subscribe_local("*", Interest::BEATS, Duration::ZERO)
        .expect("root subscription");

    // The subscription must be live on every child before any beats flow —
    // event delivery happens at ingest time, not retroactively.
    assert!(
        wait_until(Duration::from_secs(20), || {
            leaves
                .iter()
                .all(|leaf| leaf.state().subscriptions().active() == 1)
        }),
        "the root subscription never propagated to both leaves"
    );

    let mut produced: HashMap<String, u64> = HashMap::new();
    let mut delivered: HashMap<String, u64> = HashMap::new();
    let drain = |delivered: &mut HashMap<String, u64>| {
        for event in sub.drain() {
            let EventPayload::Beats { beats, .. } = &event.payload else {
                continue;
            };
            *delivered.entry(event.app.clone()).or_insert(0) += beats.len() as u64;
        }
    };

    for _ in 0..ROUNDS {
        for (leaf, node) in leaves.iter().zip(["leaf-a", "leaf-b"]) {
            for a in 0..APPS_PER_LEAF {
                let app = format!("app{a}");
                let sent = produced.entry(format!("{node}/{app}")).or_insert(0);
                leaf.state().ingest_batch(&app, 0, batch(*sent, BEATS_PER_BATCH));
                *sent += BEATS_PER_BATCH as u64;
            }
        }
        drain(&mut delivered);
        thread::sleep(Duration::from_millis(2));
    }

    // Every produced beat arrives exactly once, already namespaced.
    assert!(
        wait_until(Duration::from_secs(30), || {
            drain(&mut delivered);
            delivered == produced
        }),
        "delivered {delivered:?} never converged to produced {produced:?}"
    );

    // Quiesce and look again: convergence must be stable — a late duplicate
    // (e.g. a replayed event) would push a count past production.
    thread::sleep(Duration::from_millis(300));
    drain(&mut delivered);
    assert_eq!(delivered, produced, "late events broke exactly-once delivery");
    assert_eq!(sub.dropped(), 0, "the root queue must not have shed events");

    // Unsubscribe at the root; the retraction propagates and each child's
    // gauge returns to 0.
    drop(sub);
    assert!(
        wait_until(Duration::from_secs(20), || {
            leaves
                .iter()
                .all(|leaf| leaf.state().subscriptions().active() == 0)
        }),
        "unsubscribe never retracted the propagated subscriptions"
    );

    for leaf in &mut leaves {
        leaf.shutdown();
    }
    root.shutdown();
}

/// A node-scoped pattern (`leaf-a/*`) is translated for the matching child
/// only — the other leaf's events never reach the subscriber.
#[test]
fn node_scoped_pattern_selects_one_leaf() {
    let (mut root, mut leaves) = spawn_tree();
    let root_state = root.state();

    let sub = root_state
        .subscribe_local("leaf-a/*", Interest::BEATS, Duration::ZERO)
        .expect("root subscription");

    // Only leaf-a should ever see a propagated subscription; give the
    // fan-out a moment, then require leaf-a live (leaf-b may legitimately
    // stay at 0 forever, so only its final state is asserted).
    assert!(
        wait_until(Duration::from_secs(20), || {
            leaves[0].state().subscriptions().active() == 1
        }),
        "the node-scoped subscription never reached leaf-a"
    );

    let mut produced_a = 0u64;
    for round in 0..ROUNDS {
        for (leaf, node) in leaves.iter().zip(["leaf-a", "leaf-b"]) {
            let sent = (round * BEATS_PER_BATCH) as u64;
            leaf.state().ingest_batch("cam", 0, batch(sent, BEATS_PER_BATCH));
            if node == "leaf-a" {
                produced_a += BEATS_PER_BATCH as u64;
            }
        }
        thread::sleep(Duration::from_millis(2));
    }

    let mut seen = 0u64;
    assert!(
        wait_until(Duration::from_secs(30), || {
            for event in sub.drain() {
                assert_eq!(
                    event.app, "leaf-a/cam",
                    "a leaf-b event leaked through a leaf-a-only pattern"
                );
                if let EventPayload::Beats { beats, .. } = &event.payload {
                    seen += beats.len() as u64;
                }
            }
            seen == produced_a
        }),
        "saw {seen} of {produced_a} leaf-a beats"
    );
    assert_eq!(
        leaves[1].state().subscriptions().active(),
        0,
        "leaf-b must never receive a leaf-a-scoped subscription"
    );

    for leaf in &mut leaves {
        leaf.shutdown();
    }
    root.shutdown();
}
