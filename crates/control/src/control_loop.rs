//! A complete observe → decide → act loop.
//!
//! [`ControlLoop`] wires a [`RateMonitor`] (observe), a [`Controller`]
//! (decide) and an [`Actuator`] (act) together. The paper's external
//! scheduler and the ablation harness are built on this loop; the adaptive
//! encoder uses its own knob ladder but follows the same pattern.

use crate::actuator::Actuator;
use crate::controller::Controller;
use crate::health::{HealthLevel, HealthSource};
use crate::monitor::{Observation, RateMonitor, RateSource};
use heartbeats::HeartbeatReader;

/// One adaptation decision taken by a [`ControlLoop`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControlEvent {
    /// The observation that triggered the decision.
    pub observation: Observation,
    /// Actuator level before the decision.
    pub level_before: f64,
    /// Actuator level after the decision was applied.
    pub level_after: f64,
}

impl ControlEvent {
    /// True if the decision changed the actuator level.
    pub fn changed(&self) -> bool {
        (self.level_after - self.level_before).abs() > f64::EPSILON
    }
}

/// An observe/decide/act loop over one application.
///
/// Generic over the monitored [`RateSource`] (default: the in-process
/// reader), so the same loop can act on local or collector-fed observations.
#[derive(Debug)]
pub struct ControlLoop<C: Controller, A: Actuator, S: RateSource = HeartbeatReader> {
    monitor: RateMonitor<S>,
    controller: C,
    actuator: A,
    events: Vec<ControlEvent>,
}

impl<C: Controller, A: Actuator, S: RateSource> ControlLoop<C, A, S> {
    /// Creates a loop from its three parts.
    pub fn new(monitor: RateMonitor<S>, controller: C, actuator: A) -> Self {
        ControlLoop {
            monitor,
            controller,
            actuator,
            events: Vec::new(),
        }
    }

    /// Current actuator level.
    pub fn level(&self) -> f64 {
        self.actuator.level()
    }

    /// The actuator (e.g. to inspect saturation).
    pub fn actuator(&self) -> &A {
        &self.actuator
    }

    /// Mutable access to the actuator (e.g. to shrink its maximum after a
    /// core failure).
    pub fn actuator_mut(&mut self) -> &mut A {
        &mut self.actuator
    }

    /// The decisions taken so far.
    pub fn events(&self) -> &[ControlEvent] {
        &self.events
    }

    /// Polls the monitor; if a new observation is due and the application has
    /// both a measurable rate and a declared target, runs the controller and
    /// applies its decision. Returns the event if an observation was taken.
    pub fn tick(&mut self) -> Option<ControlEvent> {
        let observation = self.monitor.poll()?;
        let level_before = self.actuator.level();
        let level_after = match (observation.rate_bps, observation.target) {
            (Some(rate), Some(target)) => {
                let desired = self.controller.desired_level(rate, target, level_before);
                self.actuator.apply(desired)
            }
            _ => level_before,
        };
        let event = ControlEvent {
            observation,
            level_before,
            level_after,
        };
        self.events.push(event.clone());
        Some(event)
    }

    /// Resets the controller state and the monitor cadence.
    pub fn reset(&mut self) {
        self.controller.reset();
    }
}

impl<C: Controller, A: Actuator, S: HealthSource> ControlLoop<C, A, S> {
    /// Health-gated [`tick`](Self::tick): consults the source's
    /// [`HealthLevel`] before acting.
    ///
    /// When the application is [`Stalled`](HealthLevel::Stalled) or
    /// [`NoSignal`](HealthLevel::NoSignal) its windowed rate is stale or
    /// absent — acting on it would chase a ghost (e.g. granting cores to a
    /// crashed process because its "rate" sits below target). The guarded
    /// tick holds the actuator in that case and reports why; on
    /// [`Healthy`](HealthLevel::Healthy) or
    /// [`Degraded`](HealthLevel::Degraded) it behaves exactly like
    /// [`tick`](Self::tick).
    pub fn tick_guarded(&mut self) -> (HealthLevel, Option<ControlEvent>) {
        let level = self.monitor.reader().health_level();
        if level.is_actionable() {
            (level, self.tick())
        } else {
            (level, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::DiscreteActuator;
    use crate::controller::StepController;
    use heartbeats::{HeartbeatBuilder, ManualClock};
    use std::sync::Arc;

    /// Simulates an application whose heart rate is `per_core_rate * cores`.
    fn drive_loop(per_core_rate: f64, target: (f64, f64), beats: u64) -> (f64, usize) {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("loop-app")
            .window(10)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        hb.set_target_rate(target.0, target.1).unwrap();

        let monitor = RateMonitor::new(hb.reader()).with_check_every(10);
        let controller = StepController::new();
        let actuator = DiscreteActuator::new(1, 8, 1);
        let mut control = ControlLoop::new(monitor, controller, actuator);

        for _ in 0..beats {
            let cores = control.level().max(1.0);
            let rate = per_core_rate * cores;
            clock.advance_secs(1.0 / rate);
            hb.heartbeat();
            control.tick();
        }
        (control.level(), control.events().len())
    }

    #[test]
    fn loop_reaches_the_target_window() {
        // Each core contributes 5 beats/s; target 30-35 needs 6-7 cores.
        let (level, events) = drive_loop(5.0, (30.0, 35.0), 400);
        let rate = 5.0 * level;
        assert!(
            (30.0..=35.0).contains(&rate),
            "final rate {rate} with level {level}"
        );
        assert!(events > 0);
    }

    #[test]
    fn loop_releases_resources_when_fast() {
        // Each core gives 40 beats/s; target 30-35 -> one core is enough and
        // the loop must come back down from 8.
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("fast-app")
            .window(10)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        hb.set_target_rate(30.0, 45.0).unwrap();
        let monitor = RateMonitor::new(hb.reader()).with_check_every(10);
        let mut control = ControlLoop::new(
            monitor,
            StepController::new(),
            DiscreteActuator::new(1, 8, 8),
        );
        for _ in 0..300 {
            let cores = control.level().max(1.0);
            let rate = 40.0 * cores;
            clock.advance_secs(1.0 / rate);
            hb.heartbeat();
            control.tick();
        }
        assert_eq!(control.level(), 1.0, "one core already exceeds the target");
    }

    #[test]
    fn no_target_means_no_action() {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("no-target")
            .window(5)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        let monitor = RateMonitor::new(hb.reader()).with_check_every(5);
        let mut control = ControlLoop::new(
            monitor,
            StepController::new(),
            DiscreteActuator::new(1, 8, 4),
        );
        for _ in 0..20 {
            clock.advance_secs(0.1);
            hb.heartbeat();
            control.tick();
        }
        assert_eq!(control.level(), 4.0);
        assert!(control.events().iter().all(|e| !e.changed()));
    }

    #[test]
    fn events_record_before_and_after() {
        let (_, _) = drive_loop(5.0, (30.0, 35.0), 50);
        // Detailed event contents are covered above; here we exercise the
        // ControlEvent helper directly.
        let event = ControlEvent {
            observation: Observation {
                beat: 10,
                rate_bps: Some(5.0),
                target: Some((30.0, 35.0)),
                status: heartbeats::TargetStatus::BelowTarget,
            },
            level_before: 1.0,
            level_after: 2.0,
        };
        assert!(event.changed());
        let held = ControlEvent {
            level_after: 1.0,
            ..event
        };
        assert!(!held.changed());
    }

    /// A scriptable remote-like source: a fixed rate/target plus a settable
    /// health level, as a collector-backed source would report. Implements
    /// [`heartbeats::Observe`] — the blanket impls derive `RateSource` and
    /// `HealthSource` from it, exactly as they do for real transports.
    struct ScriptedSource {
        beats: std::cell::Cell<u64>,
        rate: f64,
        target: (f64, f64),
        level: std::cell::Cell<HealthLevel>,
    }

    impl heartbeats::Observe for ScriptedSource {
        fn name(&self) -> &str {
            "scripted"
        }

        fn snapshot(&self) -> Option<heartbeats::ObservedSnapshot> {
            // Each sample sees fresh beats so the monitor cadence fires.
            self.beats.set(self.beats.get() + 1);
            Some(heartbeats::ObservedSnapshot {
                total_beats: self.beats.get(),
                rate_bps: Some(self.rate),
                target: Some(self.target),
                dropped: 0,
                alive: true,
            })
        }

        fn health(&self) -> heartbeats::ObservedHealth {
            match self.level.get() {
                HealthLevel::NoSignal => heartbeats::ObservedHealth::NoSignal,
                HealthLevel::Stalled => heartbeats::ObservedHealth::Stalled,
                HealthLevel::Degraded => heartbeats::ObservedHealth::Degraded,
                HealthLevel::Healthy => heartbeats::ObservedHealth::Healthy,
            }
        }

        fn subscribe(
            &self,
            _filter: &heartbeats::ObserveFilter,
        ) -> Result<heartbeats::ObserveStream, heartbeats::ObserveError> {
            Err(heartbeats::ObserveError::Unsupported("scripted".into()))
        }
    }

    #[test]
    fn guarded_tick_holds_on_stall_and_resumes_on_recovery() {
        // Rate 5 bps against a 30-35 target: an unguarded loop would keep
        // adding cores. Stalled means the 5 bps is a stale artifact.
        let source = ScriptedSource {
            beats: std::cell::Cell::new(0),
            rate: 5.0,
            target: (30.0, 35.0),
            level: std::cell::Cell::new(HealthLevel::Stalled),
        };
        let monitor = RateMonitor::new(source).with_check_every(1);
        let mut control = ControlLoop::new(
            monitor,
            StepController::new(),
            DiscreteActuator::new(1, 8, 4),
        );

        let (level, event) = control.tick_guarded();
        assert_eq!(level, HealthLevel::Stalled);
        assert!(event.is_none(), "no action while stalled");
        assert_eq!(control.level(), 4.0, "actuator held");

        // Recovery: the same below-target rate now describes a live app,
        // so the step controller asks for more resources.
        control
            .monitor
            .reader()
            .level
            .set(HealthLevel::Degraded);
        let (level, event) = control.tick_guarded();
        assert_eq!(level, HealthLevel::Degraded);
        let event = event.expect("actionable health runs the controller");
        assert!(event.changed());
        assert!(control.level() > 4.0, "below-target rate adds resources");
    }

    #[test]
    fn guarded_tick_is_plain_tick_when_healthy() {
        let source = ScriptedSource {
            beats: std::cell::Cell::new(0),
            rate: 32.0,
            target: (30.0, 35.0),
            level: std::cell::Cell::new(HealthLevel::Healthy),
        };
        let monitor = RateMonitor::new(source).with_check_every(1);
        let mut control = ControlLoop::new(
            monitor,
            StepController::new(),
            DiscreteActuator::new(1, 8, 4),
        );
        let (level, event) = control.tick_guarded();
        assert_eq!(level, HealthLevel::Healthy);
        assert!(event.is_some());
        assert_eq!(control.level(), 4.0, "within target, no change");
    }

    #[test]
    fn actuator_access_allows_external_shrink() {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("shrunk")
            .window(5)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        hb.set_target_rate(10.0, 12.0).unwrap();
        let monitor = RateMonitor::new(hb.reader()).with_check_every(1);
        let mut control = ControlLoop::new(
            monitor,
            StepController::new(),
            DiscreteActuator::new(1, 8, 6),
        );
        control.actuator_mut().set_max(3);
        assert_eq!(control.level(), 3.0);
        assert_eq!(control.actuator().max_level(), 3.0);
    }
}
