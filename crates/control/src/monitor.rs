//! Heart-rate monitoring on top of a [`HeartbeatReader`].
//!
//! Observers in the paper do not react to every single beat: the adaptive
//! encoder "checks its heart rate every 40 frames", and the external
//! scheduler samples the rate between scheduling decisions. [`RateMonitor`]
//! encapsulates that cadence: it polls the reader, and only when enough new
//! beats have arrived does it emit an [`Observation`] for a controller to act
//! on.

use heartbeats::{HeartbeatReader, TargetStatus};

/// Anything a [`RateMonitor`] can sample: an in-process
/// [`HeartbeatReader`], or a remote view such as `hb-net`'s collector client.
///
/// The paper's observers only ever need this small read-only surface — total
/// beats, a windowed rate, and the declared goal — so abstracting it lets one
/// control loop drive adaptation from a local reader, a shared-memory
/// observer, or a network collector without changing the policy code.
pub trait RateSource {
    /// Name of the observed application.
    fn name(&self) -> &str;

    /// Total beats the application has produced so far.
    fn total_beats(&self) -> u64;

    /// Windowed heart rate in beats/s (`0` = the source's default window).
    /// `None` until at least two beats are visible.
    fn current_rate(&self, window: usize) -> Option<f64>;

    /// The application's declared target range, if any.
    fn target(&self) -> Option<(f64, f64)>;

    /// Classifies the current rate against the declared target.
    fn target_status(&self, window: usize) -> TargetStatus {
        classify(self.current_rate(window), self.target())
    }

    /// Takes one coherent sample of `(total beats, rate, target)`.
    ///
    /// The default composes the fine-grained accessors, which is already
    /// coherent for in-process sources. Remote sources should override it
    /// with a single round trip so a monitor's observation is not torn
    /// across several network requests (and several collector states).
    fn sample(&self, window: usize) -> RateSample {
        RateSample {
            total_beats: self.total_beats(),
            rate_bps: self.current_rate(window),
            target: self.target(),
        }
    }
}

/// One coherent `(total beats, rate, target)` measurement from a
/// [`RateSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Total beats at the sample.
    pub total_beats: u64,
    /// Windowed rate at the sample, if measurable.
    pub rate_bps: Option<f64>,
    /// Declared target range at the sample, if any.
    pub target: Option<(f64, f64)>,
}

/// Classifies a measured rate against a declared target range.
fn classify(rate: Option<f64>, target: Option<(f64, f64)>) -> TargetStatus {
    match (rate, target) {
        (None, _) | (_, None) => TargetStatus::NoTarget,
        (Some(rate), Some((min, max))) => {
            if rate < min {
                TargetStatus::BelowTarget
            } else if rate > max {
                TargetStatus::AboveTarget
            } else {
                TargetStatus::WithinTarget
            }
        }
    }
}

/// Every [`Observe`](heartbeats::Observe) transport is a [`RateSource`]:
/// the unified observer trait carries everything a monitor samples, so one
/// blanket implementation covers the in-process reader, the shared-memory
/// observer and the network collector client alike. (Because of this
/// blanket, new sources implement `Observe` — never `RateSource` directly.)
impl<T: heartbeats::Observe> RateSource for T {
    fn name(&self) -> &str {
        heartbeats::Observe::name(self)
    }

    fn total_beats(&self) -> u64 {
        self.snapshot().map(|s| s.total_beats).unwrap_or(0)
    }

    fn current_rate(&self, window: usize) -> Option<f64> {
        self.rate(window)
    }

    fn target(&self) -> Option<(f64, f64)> {
        self.snapshot().and_then(|s| s.target)
    }

    fn sample(&self, window: usize) -> RateSample {
        // One snapshot call per sample: beats, rate and target are never
        // torn across transport round trips. Re-windowing (window != 0)
        // asks the transport again only where it actually honors the
        // window (can_rewindow — cheap in-process reads); a remote source
        // keeps the snapshot's own rate, coherent with its totals.
        match self.snapshot() {
            Some(snapshot) => RateSample {
                total_beats: snapshot.total_beats,
                rate_bps: if window == 0 || !self.can_rewindow() {
                    snapshot.rate_bps
                } else {
                    self.rate(window)
                },
                target: snapshot.target,
            },
            None => RateSample {
                total_beats: 0,
                rate_bps: None,
                target: None,
            },
        }
    }
}

/// One sampled view of an application's performance.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Total beats the application had produced when the sample was taken.
    pub beat: u64,
    /// Windowed heart rate at the sample, if at least two beats existed.
    pub rate_bps: Option<f64>,
    /// The application's declared target range, if any.
    pub target: Option<(f64, f64)>,
    /// Relationship of the rate to the target.
    pub status: TargetStatus,
}

/// Samples an application's heart rate every `check_every` beats.
///
/// Generic over the [`RateSource`] being sampled; defaults to the in-process
/// [`HeartbeatReader`] so existing call sites read unchanged, while a
/// network-collector client slots in for remote control loops.
#[derive(Debug, Clone)]
pub struct RateMonitor<S: RateSource = HeartbeatReader> {
    reader: S,
    window: usize,
    check_every: u64,
    last_checked_beat: u64,
}

impl<S: RateSource> RateMonitor<S> {
    /// Creates a monitor that uses the application's default window and
    /// samples on every new beat.
    pub fn new(reader: S) -> Self {
        RateMonitor {
            reader,
            window: 0,
            check_every: 1,
            last_checked_beat: 0,
        }
    }

    /// Sets the window (in beats) used for rate estimation; 0 = the
    /// application's default window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets how many new beats must arrive between samples (minimum 1).
    /// The paper's adaptive encoder uses 40.
    pub fn with_check_every(mut self, beats: u64) -> Self {
        self.check_every = beats.max(1);
        self
    }

    /// The rate source being monitored.
    pub fn reader(&self) -> &S {
        &self.reader
    }

    /// The sampling interval in beats.
    pub fn check_every(&self) -> u64 {
        self.check_every
    }

    /// Returns an observation if at least `check_every` beats have arrived
    /// since the last observation (or since the monitor was created).
    pub fn poll(&mut self) -> Option<Observation> {
        let sample = self.reader.sample(self.window);
        if sample.total_beats < self.last_checked_beat + self.check_every {
            return None;
        }
        self.last_checked_beat = sample.total_beats;
        Some(Self::observation_from(sample))
    }

    /// Takes an observation unconditionally, without affecting the sampling
    /// cadence bookkeeping.
    pub fn observe_now(&self) -> Observation {
        Self::observation_from(self.reader.sample(self.window))
    }

    /// Builds an observation from one coherent sample, so every field
    /// (beats, rate, target, status) describes the same instant.
    fn observation_from(sample: RateSample) -> Observation {
        Observation {
            beat: sample.total_beats,
            rate_bps: sample.rate_bps,
            target: sample.target,
            status: classify(sample.rate_bps, sample.target),
        }
    }

    /// Resets the cadence so the next poll requires `check_every` fresh beats.
    pub fn reset(&mut self) {
        self.last_checked_beat = self.reader.total_beats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heartbeats::{HeartbeatBuilder, ManualClock};
    use std::sync::Arc;

    fn setup(check_every: u64) -> (heartbeats::Heartbeat, ManualClock, RateMonitor) {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("monitored")
            .window(10)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        let monitor = RateMonitor::new(hb.reader())
            .with_window(0)
            .with_check_every(check_every);
        (hb, clock, monitor)
    }

    #[test]
    fn poll_waits_for_enough_beats() {
        let (hb, clock, mut monitor) = setup(5);
        assert_eq!(monitor.check_every(), 5);
        assert!(monitor.poll().is_none(), "no beats yet");
        for _ in 0..4 {
            clock.advance_ns(100_000_000);
            hb.heartbeat();
        }
        assert!(monitor.poll().is_none(), "only 4 of 5 beats have arrived");
        clock.advance_ns(100_000_000);
        hb.heartbeat();
        let obs = monitor.poll().expect("fifth beat triggers the sample");
        assert_eq!(obs.beat, 5);
        assert!((obs.rate_bps.unwrap() - 10.0).abs() < 1e-9);
        assert!(monitor.poll().is_none(), "cadence restarts after a sample");
    }

    #[test]
    fn observation_includes_target_and_status() {
        let (hb, clock, mut monitor) = setup(1);
        hb.set_target_rate(30.0, 35.0).unwrap();
        for _ in 0..6 {
            clock.advance_ns(100_000_000); // 10 beats/s < 30
            hb.heartbeat();
        }
        let obs = monitor.poll().unwrap();
        assert_eq!(obs.target, Some((30.0, 35.0)));
        assert_eq!(obs.status, TargetStatus::BelowTarget);
    }

    #[test]
    fn observe_now_does_not_consume_cadence() {
        let (hb, clock, mut monitor) = setup(3);
        for _ in 0..3 {
            clock.advance_ns(1_000_000);
            hb.heartbeat();
        }
        let eager = monitor.observe_now();
        assert_eq!(eager.beat, 3);
        assert!(monitor.poll().is_some(), "poll still fires after observe_now");
    }

    #[test]
    fn reset_requires_fresh_beats() {
        let (hb, clock, mut monitor) = setup(2);
        for _ in 0..2 {
            clock.advance_ns(1_000_000);
            hb.heartbeat();
        }
        monitor.reset();
        assert!(monitor.poll().is_none(), "reset consumed the pending beats");
        for _ in 0..2 {
            clock.advance_ns(1_000_000);
            hb.heartbeat();
        }
        assert!(monitor.poll().is_some());
    }

    #[test]
    fn zero_check_every_is_clamped_to_one() {
        let (hb, clock, _m) = setup(1);
        let mut monitor = RateMonitor::new(hb.reader()).with_check_every(0);
        clock.advance_ns(1);
        hb.heartbeat();
        assert!(monitor.poll().is_some());
    }

    #[test]
    fn reader_accessor_names_the_app() {
        let (_hb, _clock, monitor) = setup(1);
        assert_eq!(monitor.reader().name(), "monitored");
    }
}
