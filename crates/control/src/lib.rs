//! # control — adaptation machinery for heartbeat-driven systems
//!
//! The Heartbeats framework supplies the *measurement*; something still has
//! to *decide* and *act*. This crate provides the reusable pieces the paper's
//! adaptive systems are built from:
//!
//! * [`RateMonitor`] — samples an application's heart rate every N beats
//!   (the adaptive encoder checks every 40 frames; the scheduler samples
//!   between allocation decisions).
//! * [`Controller`] — policy turning `(rate, target, current level)` into a
//!   desired level: [`StepController`] is the paper's add-one/remove-one
//!   heuristic, [`PiController`] a proportional–integral alternative used as
//!   an ablation.
//! * [`Actuator`] — a bounded adjustable level (core count, encoder knob
//!   index); [`DiscreteActuator`] is the integer-valued implementation.
//! * [`ControlLoop`] — observe → decide → act, with an event log.
//! * [`HealthSource`] / [`HealthLevel`] — the health side of the paper's
//!   title: sources that can also say whether their rate measurement
//!   describes a live application, so loops hold rather than chase a
//!   stalled one ([`ControlLoop::tick_guarded`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod actuator;
mod control_loop;
mod controller;
mod health;
mod monitor;

pub use actuator::{Actuator, DiscreteActuator};
pub use control_loop::{ControlEvent, ControlLoop};
pub use controller::{Controller, PiController, StepController};
pub use health::{HealthLevel, HealthSource};
pub use monitor::{Observation, RateMonitor, RateSample, RateSource};
