//! Controllers: policies that turn an observed heart rate and a target range
//! into a desired actuator level.
//!
//! The paper's adaptive systems use a simple heuristic — add a core (or drop
//! an encoder knob) when the rate is below the target, remove one when it is
//! above — which [`StepController`] reproduces. [`PiController`] is a
//! proportional–integral alternative provided as an ablation: it shows that
//! richer observers plug into the same Heartbeats interface unchanged, and it
//! anticipates the control-theoretic machinery of the authors' follow-on
//! work (SEEC/POET).

/// A policy mapping `(observed rate, target range, current level)` to a
/// desired actuator level. Levels are continuous; actuators clamp and round
/// them to whatever discrete settings they support (cores, knob steps...).
pub trait Controller: Send + std::fmt::Debug {
    /// Computes the desired level.
    fn desired_level(&mut self, rate_bps: f64, target: (f64, f64), current_level: f64) -> f64;

    /// Clears any internal state (integral terms, cooldowns).
    fn reset(&mut self);

    /// Short, human-readable policy name (used in ablation reports).
    fn name(&self) -> &'static str;
}

/// The paper's step heuristic with optional hysteresis.
///
/// * rate below the target minimum → raise the level by `step`;
/// * rate above the target maximum → lower the level by `step`;
/// * otherwise hold.
///
/// A `cooldown` of *n* makes the controller hold for *n* decisions after each
/// change, giving the application time to reflect the new allocation in its
/// heart rate before the controller reacts again.
#[derive(Debug, Clone)]
pub struct StepController {
    step: f64,
    cooldown: u32,
    remaining_cooldown: u32,
}

impl StepController {
    /// Creates a step controller that moves one level at a time.
    pub fn new() -> Self {
        Self::with_step(1.0)
    }

    /// Creates a step controller with a custom step size.
    pub fn with_step(step: f64) -> Self {
        StepController {
            step: step.abs().max(f64::MIN_POSITIVE),
            cooldown: 0,
            remaining_cooldown: 0,
        }
    }

    /// Adds a hold-off of `decisions` controller invocations after each
    /// change.
    pub fn with_cooldown(mut self, decisions: u32) -> Self {
        self.cooldown = decisions;
        self
    }
}

impl Default for StepController {
    fn default() -> Self {
        Self::new()
    }
}

impl Controller for StepController {
    fn desired_level(&mut self, rate_bps: f64, target: (f64, f64), current_level: f64) -> f64 {
        if self.remaining_cooldown > 0 {
            self.remaining_cooldown -= 1;
            return current_level;
        }
        let (min, max) = target;
        if rate_bps < min {
            self.remaining_cooldown = self.cooldown;
            current_level + self.step
        } else if rate_bps > max {
            self.remaining_cooldown = self.cooldown;
            current_level - self.step
        } else {
            current_level
        }
    }

    fn reset(&mut self) {
        self.remaining_cooldown = 0;
    }

    fn name(&self) -> &'static str {
        "step"
    }
}

/// A proportional–integral controller over the heart-rate error.
///
/// The controller estimates the marginal rate contributed by one level unit
/// from the current operating point (`rate / level`) and converts the PI
/// output, which is expressed in beats/s, into level units. The integral
/// term is clamped to avoid wind-up when the actuator saturates.
#[derive(Debug, Clone)]
pub struct PiController {
    kp: f64,
    ki: f64,
    integral: f64,
    integral_limit: f64,
}

impl PiController {
    /// Creates a PI controller with the given proportional and integral
    /// gains (dimensionless, applied to the relative rate error).
    pub fn new(kp: f64, ki: f64) -> Self {
        PiController {
            kp,
            ki,
            integral: 0.0,
            integral_limit: 10.0,
        }
    }

    /// Conservative default gains that behave well on the paper's scenarios.
    pub fn default_gains() -> Self {
        Self::new(0.8, 0.25)
    }

    /// Sets the anti-windup clamp applied to the integral term.
    pub fn with_integral_limit(mut self, limit: f64) -> Self {
        self.integral_limit = limit.abs().max(f64::MIN_POSITIVE);
        self
    }
}

impl Controller for PiController {
    fn desired_level(&mut self, rate_bps: f64, target: (f64, f64), current_level: f64) -> f64 {
        let (min, max) = target;
        let midpoint = 0.5 * (min + max);
        if midpoint <= 0.0 {
            return current_level;
        }
        // Relative error: positive when the application is too slow.
        let error = (midpoint - rate_bps) / midpoint;
        self.integral = (self.integral + error).clamp(-self.integral_limit, self.integral_limit);
        let control = self.kp * error + self.ki * self.integral;
        // Convert the relative correction into level units using the current
        // operating point as the gain estimate (rate ≈ k * level near the
        // operating point).
        let level = current_level.max(1e-9);
        level * (1.0 + control)
    }

    fn reset(&mut self) {
        self.integral = 0.0;
    }

    fn name(&self) -> &'static str {
        "pi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_controller_moves_toward_target() {
        let mut c = StepController::new();
        assert_eq!(c.desired_level(10.0, (30.0, 35.0), 3.0), 4.0, "too slow: add");
        assert_eq!(c.desired_level(50.0, (30.0, 35.0), 3.0), 2.0, "too fast: remove");
        assert_eq!(c.desired_level(32.0, (30.0, 35.0), 3.0), 3.0, "in range: hold");
        assert_eq!(c.name(), "step");
    }

    #[test]
    fn step_controller_custom_step() {
        let mut c = StepController::with_step(2.0);
        assert_eq!(c.desired_level(1.0, (5.0, 6.0), 2.0), 4.0);
    }

    #[test]
    fn step_controller_cooldown_holds_after_change() {
        let mut c = StepController::new().with_cooldown(2);
        assert_eq!(c.desired_level(1.0, (5.0, 6.0), 1.0), 2.0);
        // Two decisions of cooldown follow even though the rate is still low.
        assert_eq!(c.desired_level(1.0, (5.0, 6.0), 2.0), 2.0);
        assert_eq!(c.desired_level(1.0, (5.0, 6.0), 2.0), 2.0);
        // Then it acts again.
        assert_eq!(c.desired_level(1.0, (5.0, 6.0), 2.0), 3.0);
    }

    #[test]
    fn step_controller_reset_clears_cooldown() {
        let mut c = StepController::new().with_cooldown(5);
        c.desired_level(1.0, (5.0, 6.0), 1.0);
        c.reset();
        assert_eq!(c.desired_level(1.0, (5.0, 6.0), 2.0), 3.0);
    }

    #[test]
    fn pi_controller_raises_level_when_slow() {
        let mut c = PiController::default_gains();
        let next = c.desired_level(10.0, (30.0, 35.0), 2.0);
        assert!(next > 2.0);
        assert_eq!(c.name(), "pi");
    }

    #[test]
    fn pi_controller_lowers_level_when_fast() {
        let mut c = PiController::default_gains();
        let next = c.desired_level(60.0, (30.0, 35.0), 6.0);
        assert!(next < 6.0);
    }

    #[test]
    fn pi_controller_holds_near_target() {
        let mut c = PiController::default_gains();
        let next = c.desired_level(32.5, (30.0, 35.0), 4.0);
        assert!((next - 4.0).abs() < 0.2);
    }

    #[test]
    fn pi_controller_integral_accumulates_and_resets() {
        let mut c = PiController::new(0.0, 0.5);
        // With a pure integral controller, persistent error keeps pushing.
        let first = c.desired_level(10.0, (20.0, 20.0), 2.0);
        let second = c.desired_level(10.0, (20.0, 20.0), 2.0);
        assert!(second > first);
        c.reset();
        let after_reset = c.desired_level(10.0, (20.0, 20.0), 2.0);
        assert!((after_reset - first).abs() < 1e-12);
    }

    #[test]
    fn pi_controller_integral_is_clamped() {
        let mut c = PiController::new(0.0, 1.0).with_integral_limit(2.0);
        for _ in 0..100 {
            c.desired_level(0.0, (10.0, 10.0), 1.0);
        }
        // error = 1.0 each time; clamped integral of 2 -> level * (1 + 2) = 3.
        let level = c.desired_level(0.0, (10.0, 10.0), 1.0);
        assert!(level <= 3.0 + 1e-9);
    }

    #[test]
    fn pi_controller_ignores_degenerate_target() {
        let mut c = PiController::default_gains();
        assert_eq!(c.desired_level(5.0, (0.0, 0.0), 3.0), 3.0);
    }

    #[test]
    fn pi_converges_on_a_linear_plant() {
        // Plant: rate = 5 * level. Target 30..35 -> level ≈ 6.5.
        let mut c = PiController::default_gains();
        let mut level = 1.0f64;
        for _ in 0..40 {
            let rate = 5.0 * level;
            level = c.desired_level(rate, (30.0, 35.0), level).clamp(1.0, 16.0);
        }
        let final_rate = 5.0 * level;
        assert!(
            (30.0..=35.0).contains(&final_rate),
            "PI failed to converge: rate {final_rate:.2}"
        );
    }

    #[test]
    fn step_converges_on_a_linear_plant() {
        let mut c = StepController::new();
        let mut level = 1.0f64;
        for _ in 0..40 {
            let rate = 5.0 * level;
            level = c.desired_level(rate, (30.0, 35.0), level).clamp(1.0, 16.0);
        }
        let final_rate = 5.0 * level;
        assert!(
            (30.0..=35.0).contains(&final_rate),
            "step heuristic failed to converge: rate {final_rate:.2}"
        );
    }
}
