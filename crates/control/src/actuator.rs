//! Actuators: the things a controller can change.
//!
//! In the paper the actuators are the number of cores allocated to an
//! application (external scheduler, Section 5.3) and the encoder's algorithm
//! knobs (internal adaptation, Section 5.2). [`Actuator`] abstracts over
//! both: a controller produces a continuous desired level and the actuator
//! clamps and quantizes it to what the underlying mechanism supports.

/// Something with a bounded, adjustable level.
pub trait Actuator: Send + std::fmt::Debug {
    /// Current level.
    fn level(&self) -> f64;

    /// Smallest level the actuator supports.
    fn min_level(&self) -> f64;

    /// Largest level the actuator supports.
    fn max_level(&self) -> f64;

    /// Applies a desired level, clamping/quantizing as needed, and returns
    /// the level actually in effect afterwards.
    fn apply(&mut self, desired: f64) -> f64;

    /// True if the actuator is already at its maximum.
    fn saturated_high(&self) -> bool {
        self.level() >= self.max_level()
    }

    /// True if the actuator is already at its minimum.
    fn saturated_low(&self) -> bool {
        self.level() <= self.min_level()
    }
}

/// An integer-valued actuator over `[min, max]` (e.g. a core count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscreteActuator {
    level: usize,
    min: usize,
    max: usize,
}

impl DiscreteActuator {
    /// Creates an actuator spanning `[min, max]` starting at `initial`
    /// (clamped into range). Panics if `min > max`.
    pub fn new(min: usize, max: usize, initial: usize) -> Self {
        assert!(min <= max, "min level must not exceed max level");
        DiscreteActuator {
            level: initial.clamp(min, max),
            min,
            max,
        }
    }

    /// The current integer level.
    pub fn value(&self) -> usize {
        self.level
    }

    /// Directly sets the maximum (e.g. when cores fail), clamping the current
    /// level if necessary. The minimum is never raised above the new maximum.
    pub fn set_max(&mut self, max: usize) {
        self.max = max.max(self.min);
        self.level = self.level.min(self.max);
    }
}

impl Actuator for DiscreteActuator {
    fn level(&self) -> f64 {
        self.level as f64
    }

    fn min_level(&self) -> f64 {
        self.min as f64
    }

    fn max_level(&self) -> f64 {
        self.max as f64
    }

    fn apply(&mut self, desired: f64) -> f64 {
        let rounded = desired.round();
        let clamped = if rounded.is_nan() {
            self.level as f64
        } else {
            rounded.clamp(self.min as f64, self.max as f64)
        };
        self.level = clamped as usize;
        self.level as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_actuator_clamps_and_rounds() {
        let mut a = DiscreteActuator::new(1, 8, 1);
        assert_eq!(a.value(), 1);
        assert_eq!(a.apply(3.4), 3.0);
        assert_eq!(a.value(), 3);
        assert_eq!(a.apply(3.6), 4.0);
        assert_eq!(a.apply(100.0), 8.0);
        assert_eq!(a.apply(-5.0), 1.0);
        assert_eq!(a.min_level(), 1.0);
        assert_eq!(a.max_level(), 8.0);
    }

    #[test]
    fn initial_level_is_clamped() {
        let a = DiscreteActuator::new(2, 6, 100);
        assert_eq!(a.value(), 6);
        let b = DiscreteActuator::new(2, 6, 0);
        assert_eq!(b.value(), 2);
    }

    #[test]
    fn saturation_flags() {
        let mut a = DiscreteActuator::new(1, 4, 1);
        assert!(a.saturated_low());
        assert!(!a.saturated_high());
        a.apply(4.0);
        assert!(a.saturated_high());
    }

    #[test]
    fn set_max_shrinks_level() {
        let mut a = DiscreteActuator::new(1, 8, 7);
        a.set_max(5);
        assert_eq!(a.value(), 5);
        assert_eq!(a.max_level(), 5.0);
        // Max never drops below min.
        a.set_max(0);
        assert_eq!(a.max_level(), 1.0);
        assert_eq!(a.value(), 1);
    }

    #[test]
    fn nan_is_ignored() {
        let mut a = DiscreteActuator::new(1, 8, 4);
        assert_eq!(a.apply(f64::NAN), 4.0);
    }

    #[test]
    #[should_panic(expected = "min level")]
    fn inverted_bounds_panic() {
        DiscreteActuator::new(5, 2, 3);
    }
}
