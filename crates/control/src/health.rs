//! Health-aware observation: the liveness side of the paper's
//! "performance *and health*" story.
//!
//! A [`RateSource`](crate::RateSource) answers "how fast is the application
//! going?"; a [`HealthSource`] additionally answers "can the measurement be
//! trusted at all?". The distinction matters to controllers: a windowed
//! rate read from a *stalled* application is stale — acting on it chases a
//! ghost (allocating cores to a crashed process, lowering encoder quality
//! because a dead pipeline "missed" its target). Control loops should
//! therefore gate their decisions on health, which
//! [`ControlLoop::tick_guarded`](crate::ControlLoop::tick_guarded) does.

use crate::monitor::RateSource;

/// Coarse health classification of an observed application.
///
/// This is the control-layer mirror of the collector-side classification
/// (`hb-net`'s `HealthStatus`); it lives here so policy code can react to
/// degradation without depending on the network crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthLevel {
    /// The application has never been observed to beat.
    NoSignal,
    /// Beats used to arrive but have stopped for a full health window.
    Stalled,
    /// Beats arrive but the window shows an anomaly (rate below target,
    /// jitter spike, dropped/reordered beats).
    Degraded,
    /// Beats arrive and the window shows no anomaly.
    Healthy,
}

impl HealthLevel {
    /// True when the source's rate measurement describes a live stream and
    /// is therefore safe to act on (`Healthy` or `Degraded`).
    pub fn is_actionable(self) -> bool {
        matches!(self, HealthLevel::Healthy | HealthLevel::Degraded)
    }
}

/// A [`RateSource`] that also knows whether its application is healthy.
///
/// Implemented by remote sources that can judge a whole window of recent
/// history (e.g. `hb-net`'s `RemoteApp`, which asks the collector's
/// windowed anomaly detector). A conservative implementation may simply
/// return [`HealthLevel::Healthy`] whenever beats are flowing.
pub trait HealthSource: RateSource {
    /// Classifies the observed application over its health window.
    ///
    /// Implementations should degrade to [`HealthLevel::NoSignal`] when the
    /// observation channel itself fails (collector unreachable), mirroring
    /// how [`RateSource`] surfaces network failure as "no data".
    fn health_level(&self) -> HealthLevel;
}

/// Every [`Observe`](heartbeats::Observe) transport is a [`HealthSource`]:
/// the unified observer trait already carries the four-level triage, so
/// guarded control loops run unchanged against any transport. (Because of
/// this blanket, new sources implement `Observe` — never `HealthSource`
/// directly.)
impl<T: heartbeats::Observe> HealthSource for T {
    fn health_level(&self) -> HealthLevel {
        match heartbeats::Observe::health(self) {
            heartbeats::ObservedHealth::NoSignal => HealthLevel::NoSignal,
            heartbeats::ObservedHealth::Stalled => HealthLevel::Stalled,
            heartbeats::ObservedHealth::Degraded => HealthLevel::Degraded,
            heartbeats::ObservedHealth::Healthy => HealthLevel::Healthy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actionability_split() {
        assert!(HealthLevel::Healthy.is_actionable());
        assert!(HealthLevel::Degraded.is_actionable());
        assert!(!HealthLevel::Stalled.is_actionable());
        assert!(!HealthLevel::NoSignal.is_actionable());
    }

    #[test]
    fn ordering_ranks_healthier_higher() {
        assert!(HealthLevel::Healthy > HealthLevel::Degraded);
        assert!(HealthLevel::Degraded > HealthLevel::Stalled);
        assert!(HealthLevel::Stalled > HealthLevel::NoSignal);
    }
}
