//! Fixture: metric drift in both directions. The emitted series has no
//! `# HELP` line and no docs row; the docs document a ghost series.

pub fn prometheus(dropped: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("hb_collector_dropped_total {dropped}\n"));
    out
}
