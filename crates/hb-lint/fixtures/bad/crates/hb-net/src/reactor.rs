//! Fixture: the PR 9 race shape plus a hot-path allocation. Both
//! `Ordering::` lines lack a justification, `apply` is the exact
//! load-then-store double-apply pattern, and `label` allocates inside a
//! hot-path region.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Shard {
    pub seq_watermark: AtomicU64,
}

impl Shard {
    pub fn apply(&self, next: u64) -> bool {
        let seen = self.seq_watermark.load(Ordering::Acquire);
        if seen >= next {
            return false;
        }
        self.seq_watermark.store(next, Ordering::Release);
        true
    }

    // hb-lint: hot-path
    pub fn label(&self, shard: usize) -> String {
        format!("shard-{shard}")
    }
    // hb-lint: end-hot-path
}
