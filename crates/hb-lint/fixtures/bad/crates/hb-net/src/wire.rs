//! Fixture: a wire module violating the panic-freedom and wire-kind
//! rules. `KIND_GONE` has no decoder arm, no WIRE.md row and no proptest
//! coverage; the decode path indexes, unwraps and panics.

pub const KIND_PING: u8 = 1;
pub const KIND_GONE: u8 = 3;

pub enum Frame {
    Ping,
    Gone,
}

pub fn kind_of(frame: &Frame) -> u8 {
    match frame {
        Frame::Ping => KIND_PING,
        Frame::Gone => KIND_GONE,
    }
}

pub fn decode(kind: u8, payload: &[u8]) -> Frame {
    let _first = payload[0];
    match kind {
        KIND_PING => Frame::Ping,
        _ => panic!("unknown kind {kind}"),
    }
}

pub fn header(payload: &[u8]) -> u16 {
    u16::from_le_bytes(payload[..2].try_into().unwrap())
}
