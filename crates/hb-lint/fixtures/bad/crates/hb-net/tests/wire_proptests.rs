//! Fixture: only Ping is covered; Gone ships untested.

#[test]
fn ping_roundtrip() {
    // Frame::Ping survives encode → decode.
}
