//! Fixture: round-trip coverage for both fixture frames. The wire-kind
//! check only requires the variant names to appear here.

#[test]
fn ping_pong_roundtrip() {
    // Frame::Ping and Frame::Pong survive encode → decode.
}
