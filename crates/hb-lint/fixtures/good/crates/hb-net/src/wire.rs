//! Fixture: a clean miniature wire module. Every kind constant has an
//! encoder reference, a decoder arm, a WIRE.md row and proptest coverage;
//! the decode path never panics.

pub const KIND_PING: u8 = 1;
pub const KIND_PONG: u8 = 2;

pub enum Frame {
    Ping,
    Pong,
}

pub fn kind_of(frame: &Frame) -> u8 {
    match frame {
        Frame::Ping => KIND_PING,
        Frame::Pong => KIND_PONG,
    }
}

pub fn decode(kind: u8) -> Option<Frame> {
    match kind {
        KIND_PING => Some(Frame::Ping),
        KIND_PONG => Some(Frame::Pong),
        _ => None,
    }
}

pub fn header(payload: &[u8]) -> Option<u16> {
    Some(u16::from_le_bytes(payload.get(..2)?.try_into().ok()?))
}
