//! Fixture: a clean miniature Prometheus endpoint. The one emitted series
//! has a `# HELP` line and a row in docs/TELEMETRY.md.

pub fn prometheus(beats: u64) -> String {
    let mut out = String::new();
    out.push_str("# HELP hb_app_beats_total Beats absorbed.\n");
    out.push_str("# TYPE hb_app_beats_total counter\n");
    out.push_str(&format!("hb_app_beats_total {beats}\n"));
    out
}
