//! Fixture: a clean miniature data plane. Orderings are justified, the
//! cursor is claimed with a CAS, and the hot-path region allocates nothing.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Shard {
    pub cursor: AtomicU64,
    pub accepted: AtomicU64,
}

impl Shard {
    /// Claims `next` if it advances the cursor; exactly one caller wins.
    pub fn claim(&self, next: u64) -> bool {
        let seen = self.cursor.load(Ordering::Acquire); // ordering: pairs with the winner's Release below
        if seen >= next {
            return false;
        }
        let claim = self.cursor.fetch_update(
            Ordering::AcqRel,  // ordering: CAS claim; the winning store publishes the new cursor
            Ordering::Acquire, // ordering: losers reload to observe the winner before giving up
            |cur| if cur < next { Some(next) } else { None },
        );
        claim.is_ok()
    }

    // hb-lint: hot-path — the fixture's ingest loop must stay allocation-free.
    pub fn absorb(&self, frames: &[u8]) -> u64 {
        let mut accepted = 0;
        for byte in frames {
            accepted += u64::from(*byte & 1);
        }
        self.accepted.fetch_add(accepted, Ordering::Relaxed); // ordering: relaxed counter; read only for totals
        accepted
    }
    // hb-lint: end-hot-path
}
