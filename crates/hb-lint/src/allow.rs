//! Suppression mechanics: the per-site allowlist file and inline
//! `// hb-lint: allow(rule): reason` comments.
//!
//! Both forms demand a reason — a suppression without one is itself a
//! finding. Allowlist entries are matched by file suffix plus a substring
//! of the flagged line (line numbers drift; code text drifts less), and an
//! entry that matches nothing is reported stale so the file cannot rot.

use crate::lexer::Lexed;
use crate::report::Rule;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry suppresses.
    pub rule: Rule,
    /// Path suffix the entry applies to (workspace-relative).
    pub path: String,
    /// Substring of the flagged source line.
    pub needle: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line in the allowlist file (for stale reports).
    pub line: usize,
}

/// The allowlist file plus per-entry use counts.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Parsed entries.
    pub entries: Vec<AllowEntry>,
    /// Parallel to `entries`: how many findings each suppressed.
    pub hits: Vec<usize>,
    /// Parse errors (reported as findings).
    pub errors: Vec<String>,
}

impl Allowlist {
    /// Parses the allowlist format: one entry per line,
    /// `rule path "needle" reason…`; `#` starts a comment.
    pub fn parse(text: &str) -> Allowlist {
        let mut list = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            let mut parts = line.splitn(2, char::is_whitespace);
            let rule_name = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or_default().trim_start();
            let Some(rule) = Rule::parse(rule_name) else {
                list.errors
                    .push(format!("line {lineno}: unknown rule {rule_name:?}"));
                continue;
            };
            let mut parts = rest.splitn(2, char::is_whitespace);
            let path = parts.next().unwrap_or_default().to_string();
            let rest = parts.next().unwrap_or_default().trim_start();
            let Some(stripped) = rest.strip_prefix('"') else {
                list.errors.push(format!(
                    "line {lineno}: expected a quoted line-substring after the path"
                ));
                continue;
            };
            let Some(close) = stripped.find('"') else {
                list.errors
                    .push(format!("line {lineno}: unterminated line-substring"));
                continue;
            };
            let needle = stripped[..close].to_string();
            let reason = stripped[close + 1..].trim().to_string();
            if path.is_empty() || needle.is_empty() {
                list.errors
                    .push(format!("line {lineno}: empty path or substring"));
                continue;
            }
            if reason.is_empty() {
                list.errors.push(format!(
                    "line {lineno}: entry for {path} has no reason; every suppression must say why"
                ));
                continue;
            }
            list.entries.push(AllowEntry {
                rule,
                path,
                needle,
                reason,
                line: lineno,
            });
            list.hits.push(0);
        }
        list
    }

    /// Does any entry suppress this (rule, file, raw line)? Counts the hit.
    pub fn suppresses(&mut self, rule: Rule, file: &str, raw_line: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == rule && file.ends_with(&e.path) && raw_line.contains(&e.needle) {
                self.hits[i] += 1;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding.
    pub fn stale(&self) -> Vec<String> {
        self.entries
            .iter()
            .zip(&self.hits)
            .filter(|(_, hits)| **hits == 0)
            .map(|(e, _)| {
                format!(
                    "line {}: {} {} \"{}\"",
                    e.line,
                    e.rule.name(),
                    e.path,
                    e.needle
                )
            })
            .collect()
    }
}

/// Does line `lineno` (0-based) of `lx` carry an inline
/// `hb-lint: allow(<rule>): <reason>` for `rule`, either on the line
/// itself or on a directly-preceding run of comment-only lines? A reason
/// is mandatory: `allow(panic)` with nothing after the colon is not a
/// suppression.
pub fn inline_allowed(lx: &Lexed, lineno: usize, rule: Rule) -> bool {
    if comment_allows(&lx.comments[lineno], rule) {
        return true;
    }
    // Walk up over comment-only lines.
    let mut l = lineno;
    while l > 0 {
        l -= 1;
        let code_blank = lx.code[l].trim().is_empty();
        let has_comment = !lx.comments[l].trim().is_empty();
        if code_blank && has_comment {
            if comment_allows(&lx.comments[l], rule) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn comment_allows(comment: &str, rule: Rule) -> bool {
    let marker = format!("hb-lint: allow({})", rule.name());
    let Some(at) = comment.find(&marker) else {
        return false;
    };
    // Require a non-empty reason after "allow(rule):".
    let rest = comment[at + marker.len()..].trim_start();
    let rest = rest.strip_prefix(':').unwrap_or("").trim();
    !rest.is_empty()
}

/// Does line `lineno` carry an `// ordering:` justification (same line or
/// directly-preceding comment run) with non-empty text after the colon?
pub fn ordering_justified(lx: &Lexed, lineno: usize) -> bool {
    if comment_justifies_ordering(&lx.comments[lineno]) {
        return true;
    }
    let mut l = lineno;
    while l > 0 {
        l -= 1;
        let code_blank = lx.code[l].trim().is_empty();
        let has_comment = !lx.comments[l].trim().is_empty();
        if code_blank && has_comment {
            if comment_justifies_ordering(&lx.comments[l]) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn comment_justifies_ordering(comment: &str) -> bool {
    let Some(at) = comment.find("ordering:") else {
        return false;
    };
    !comment[at + "ordering:".len()..].trim().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_flags_missing_reasons() {
        let list = Allowlist::parse(
            "# comment\n\
             panic crates/hb-net/src/reactor.rs \"lock().unwrap()\" poisoning follows a panic\n\
             panic crates/x.rs \"y\"\n\
             bogus crates/x.rs \"y\" z\n",
        );
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.errors.len(), 2);
        assert_eq!(list.entries[0].rule, Rule::Panic);
        assert!(list.entries[0].reason.contains("poisoning"));
    }

    #[test]
    fn suppression_and_staleness() {
        let mut list = Allowlist::parse("panic src/a.rs \"x.unwrap()\" fine\n");
        assert!(list.suppresses(Rule::Panic, "crates/src/a.rs", "let y = x.unwrap();"));
        assert!(!list.suppresses(Rule::Panic, "crates/src/a.rs", "let y = z;"));
        assert!(list.stale().is_empty());
        let list2 = Allowlist::parse("index src/a.rs \"never\" fine\n");
        assert_eq!(list2.stale().len(), 1);
    }

    #[test]
    fn inline_allow_requires_reason() {
        let lx = Lexed::lex(
            "a.unwrap(); // hb-lint: allow(panic): checked above\n\
             b.unwrap(); // hb-lint: allow(panic)\n\
             // hb-lint: allow(index): ring mask bounds it\n\
             c[0];\n",
        );
        assert!(inline_allowed(&lx, 0, Rule::Panic));
        assert!(!inline_allowed(&lx, 1, Rule::Panic));
        assert!(inline_allowed(&lx, 3, Rule::Index));
    }

    #[test]
    fn ordering_comment_grammar() {
        let lx = Lexed::lex(
            "x.load(Ordering::Relaxed); // ordering: stats-only counter\n\
             // ordering: release pairs with the acquire in snapshot()\n\
             y.store(1, Ordering::Release);\n\
             z.load(Ordering::Acquire); // ordering:\n",
        );
        assert!(ordering_justified(&lx, 0));
        assert!(ordering_justified(&lx, 2));
        assert!(!ordering_justified(&lx, 3));
    }
}
