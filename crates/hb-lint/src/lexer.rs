//! A lightweight Rust lexer: just enough to separate code from comments and
//! string literals, track brace depth, and mark `#[cfg(test)]` regions.
//!
//! hb-lint deliberately does not parse Rust. Every check it runs needs only
//! three facts about a line: what the *code* on it says (with comment text
//! and string contents blanked out so `"panic!"` in a log message is not a
//! panic), what the *comments* on it say (justification grammar lives in
//! comments), and which *string literals* start on it (the metric checks
//! read emitted literals). Token-level fidelity — nested block comments,
//! raw strings with hash fences, byte strings, char literals vs.
//! lifetimes — is required; an AST is not.

/// The lexed view of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Raw source lines, without trailing newlines (allowlist matching).
    pub raw: Vec<String>,
    /// Per-line code text: comments removed, string/char literal *contents*
    /// replaced by spaces (the delimiting quotes survive so offsets and
    /// token shapes stay recognizable).
    pub code: Vec<String>,
    /// Per-line comment text (all `//`, `///`, `//!` and the slice of any
    /// `/* .. */` that lies on the line, concatenated).
    pub comments: Vec<String>,
    /// Per-line contents of string literals that *start* on the line.
    pub strings: Vec<Vec<String>>,
    /// True for lines inside a `#[cfg(test)]` item (the guarded item's
    /// braces included).
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`; the flag is whether a backslash escape is pending.
    Str { escape: bool },
    /// Inside `r"…"`/`r#"…"#`; the payload is the hash-fence length.
    RawStr { hashes: u32 },
}

impl Lexed {
    /// Lexes `source` into per-line code / comment / string views.
    pub fn lex(source: &str) -> Lexed {
        let mut raw = Vec::new();
        let mut code = Vec::new();
        let mut comments = Vec::new();
        let mut strings: Vec<Vec<String>> = Vec::new();

        let mut state = State::Code;
        // The literal currently being accumulated and the line it began on.
        let mut cur_string = String::new();
        let mut cur_string_line = 0usize;

        for (lineno, line) in source.lines().enumerate() {
            raw.push(line.to_string());
            code.push(String::new());
            comments.push(String::new());
            strings.push(Vec::new());

            let bytes: Vec<char> = line.chars().collect();
            let mut i = 0usize;
            // A line comment never spans lines.
            if state == State::LineComment {
                state = State::Code;
            }
            while i < bytes.len() {
                let c = bytes[i];
                let next = bytes.get(i + 1).copied();
                match state {
                    State::Code => match c {
                        '/' if next == Some('/') => {
                            comments[lineno].push_str(&line_tail(&bytes, i + 2));
                            state = State::LineComment;
                            i = bytes.len();
                        }
                        '/' if next == Some('*') => {
                            state = State::BlockComment(1);
                            i += 2;
                        }
                        '"' => {
                            code[lineno].push('"');
                            cur_string.clear();
                            cur_string_line = lineno;
                            state = State::Str { escape: false };
                            i += 1;
                        }
                        'r' | 'b' => {
                            // r"…", r#"…"#, br"…", b"…", b'…' — detect raw
                            // and byte literal openers without consuming
                            // ordinary identifiers that start with r/b.
                            if let Some((hashes, skip)) = raw_string_open(&bytes, i) {
                                for _ in 0..skip {
                                    code[lineno].push(' ');
                                }
                                code[lineno].push('"');
                                cur_string.clear();
                                cur_string_line = lineno;
                                state = State::RawStr { hashes };
                                i += skip + 1;
                            } else if c == 'b' && next == Some('\'') {
                                // Byte char literal: b'x' / b'\n'.
                                code[lineno].push('b');
                                i += 1; // now at the quote; fall through next loop
                            } else if ident_boundary_before(&bytes, i)
                                && c == 'b'
                                && next == Some('"')
                            {
                                // handled by raw_string_open; unreachable
                                i += 1;
                            } else {
                                code[lineno].push(c);
                                i += 1;
                            }
                        }
                        '\'' => {
                            // Char literal vs. lifetime. A char literal is
                            // 'x' or '\…'; a lifetime is '<ident> with no
                            // closing quote right after one char.
                            if next == Some('\\') {
                                // Escaped char literal: consume to closing quote.
                                code[lineno].push('\'');
                                let mut j = i + 2;
                                // Skip the escaped char (and \u{…} bodies).
                                while j < bytes.len() && bytes[j] != '\'' {
                                    code[lineno].push(' ');
                                    j += 1;
                                }
                                if j < bytes.len() {
                                    code[lineno].push('\'');
                                    j += 1;
                                }
                                i = j;
                            } else if bytes.get(i + 2) == Some(&'\'') {
                                // Plain char literal 'x'.
                                code[lineno].push('\'');
                                code[lineno].push(' ');
                                code[lineno].push('\'');
                                i += 3;
                            } else {
                                // Lifetime (or stray quote): keep as code.
                                code[lineno].push('\'');
                                i += 1;
                            }
                        }
                        _ => {
                            code[lineno].push(c);
                            i += 1;
                        }
                    },
                    State::LineComment => unreachable!("consumed at line start"),
                    State::BlockComment(depth) => {
                        if c == '*' && next == Some('/') {
                            state = if depth == 1 {
                                State::Code
                            } else {
                                State::BlockComment(depth - 1)
                            };
                            i += 2;
                        } else if c == '/' && next == Some('*') {
                            state = State::BlockComment(depth + 1);
                            i += 2;
                        } else {
                            comments[lineno].push(c);
                            i += 1;
                        }
                    }
                    State::Str { escape } => {
                        if escape {
                            cur_string.push(c);
                            code[lineno].push(' ');
                            state = State::Str { escape: false };
                            i += 1;
                        } else if c == '\\' {
                            cur_string.push(c);
                            code[lineno].push(' ');
                            state = State::Str { escape: true };
                            i += 1;
                        } else if c == '"' {
                            code[lineno].push('"');
                            strings[cur_string_line].push(std::mem::take(&mut cur_string));
                            state = State::Code;
                            i += 1;
                        } else {
                            cur_string.push(c);
                            code[lineno].push(' ');
                            i += 1;
                        }
                    }
                    State::RawStr { hashes } => {
                        if c == '"' && closes_raw(&bytes, i, hashes) {
                            code[lineno].push('"');
                            for _ in 0..hashes {
                                code[lineno].push(' ');
                            }
                            strings[cur_string_line].push(std::mem::take(&mut cur_string));
                            state = State::Code;
                            i += 1 + hashes as usize;
                        } else {
                            cur_string.push(c);
                            code[lineno].push(' ');
                            i += 1;
                        }
                    }
                }
            }
            // Multi-line strings keep accumulating; record the line break.
            match state {
                State::Str { .. } | State::RawStr { .. } => cur_string.push('\n'),
                _ => {}
            }
        }

        let in_test = mark_test_regions(&code);
        Lexed {
            raw,
            code,
            comments,
            strings,
            in_test,
        }
    }

    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

fn line_tail(bytes: &[char], from: usize) -> String {
    bytes[from.min(bytes.len())..].iter().collect()
}

/// Is `bytes[i]` preceded by a non-identifier character (so an `r`/`b` here
/// can open a literal rather than continue an identifier like `attr`)?
fn ident_boundary_before(bytes: &[char], i: usize) -> bool {
    i == 0 || {
        let p = bytes[i - 1];
        !(p.is_alphanumeric() || p == '_')
    }
}

/// Detects `r"`, `r#"`, `br"`, `b"` openers at `i`. Returns the hash-fence
/// length and how many chars precede the opening quote (`r`/`b`/`#`s).
fn raw_string_open(bytes: &[char], i: usize) -> Option<(u32, usize)> {
    if !ident_boundary_before(bytes, i) {
        return None;
    }
    let mut j = i;
    match bytes[j] {
        'b' => {
            j += 1;
            if bytes.get(j) == Some(&'r') {
                j += 1;
            } else if bytes.get(j) == Some(&'"') {
                return Some((0, j - i));
            } else {
                return None;
            }
        }
        'r' => j += 1,
        _ => return None,
    }
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some((hashes, j - i))
    } else {
        None
    }
}

/// Does the quote at `i` close a raw string with `hashes` fence chars?
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Marks every line inside a `#[cfg(test)]`-guarded item. The attribute
/// arms a pending flag; the next `{` in code opens the region, which runs
/// to its matching close brace.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut pending = false;
    // Depth of the brace that opened the active test region, or None.
    let mut region_open_depth: Option<i64> = None;
    let mut depth: i64 = 0;
    for (lineno, line) in code.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending = true;
        }
        if region_open_depth.is_some() || pending {
            in_test[lineno] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending && region_open_depth.is_none() {
                        region_open_depth = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_open_depth == Some(depth) {
                        region_open_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_blanks_strings() {
        let lx = Lexed::lex("let x = \"panic!()\"; // ordering: fine\nlet y = 1;\n");
        assert!(!lx.code[0].contains("panic!"));
        assert!(lx.comments[0].contains("ordering: fine"));
        assert_eq!(lx.strings[0], vec!["panic!()".to_string()]);
        assert_eq!(lx.code[1].trim(), "let y = 1;");
    }

    #[test]
    fn raw_and_byte_strings() {
        let lx = Lexed::lex("let a = r#\"x \"q\" y\"#; let b = b\"z\";\n");
        assert_eq!(lx.strings[0], vec!["x \"q\" y".to_string(), "z".to_string()]);
        assert!(!lx.code[0].contains('q'));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lx = Lexed::lex("fn f<'a>(x: &'a str) -> char { '\\n' }\nlet q = '\"';\n");
        assert!(lx.code[0].contains("fn f<'a>"));
        // The char literal's quote did not open a string.
        assert!(lx.strings[0].is_empty());
        assert!(lx.strings[1].is_empty());
    }

    #[test]
    fn nested_block_comments() {
        let lx = Lexed::lex("a /* one /* two */ still */ b\n");
        assert!(lx.code[0].contains('a'));
        assert!(lx.code[0].contains('b'));
        assert!(!lx.code[0].contains("still"));
        assert!(lx.comments[0].contains("two"));
    }

    #[test]
    fn multiline_string_attributes_to_start_line() {
        let lx = Lexed::lex("let s = \"first\nsecond\";\nlet t = 2;\n");
        assert_eq!(lx.strings[0], vec!["first\nsecond".to_string()]);
        assert!(lx.strings[1].is_empty());
        assert!(lx.code[2].contains("let t"));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let lx = Lexed::lex(src);
        assert!(!lx.in_test[0]);
        assert!(lx.in_test[1] && lx.in_test[2] && lx.in_test[3] && lx.in_test[4]);
        assert!(!lx.in_test[5]);
    }
}
