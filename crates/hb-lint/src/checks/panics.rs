//! Check 2 — panic freedom on the data plane.
//!
//! The decoder-never-panics proptest proves the property dynamically for
//! the inputs it generates; this check enforces it structurally. Inside
//! the data-plane scope — the whole of `reactor.rs`, `frame.rs`, `wire.rs`
//! (non-test), plus every `impl Handler for …` block anywhere — the
//! panic-capable constructs are denied:
//!
//! * `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` / `assert!`-family (`debug_assert*` is exempt: it
//!   compiles out of release builds and is how data-plane invariants
//!   *should* be written down);
//! * slice/array indexing `x[..]` — the anonymous panic. Use `get`/
//!   `get_mut` and surface a protocol error, or justify the bound with
//!   `// hb-lint: allow(index): <why>`.

use super::{handler_impl_ranges, is_ident, LineRange};
use crate::lexer::Lexed;
use crate::report::{Finding, Rule};
use crate::Suppressor;

/// Files denied in full (workspace-relative path suffixes).
pub const FULL_FILES: [&str; 3] = [
    "crates/hb-net/src/reactor.rs",
    "crates/hb-net/src/frame.rs",
    "crates/hb-net/src/wire.rs",
];

const DENIED: [&str; 9] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Runs the panic rules on one lexed file.
pub fn check(rel: &str, lx: &Lexed, sup: &mut Suppressor, findings: &mut Vec<Finding>) {
    let mut ranges: Vec<(LineRange, &'static str)> = Vec::new();
    if FULL_FILES.iter().any(|f| rel.ends_with(f)) {
        ranges.push(((0, lx.len().saturating_sub(1)), "data-plane file"));
    } else {
        for r in handler_impl_ranges(lx) {
            ranges.push((r, "Handler impl"));
        }
    }
    for ((start, end), scope) in ranges {
        for lineno in start..=end.min(lx.len().saturating_sub(1)) {
            if lx.in_test[lineno] {
                continue;
            }
            let code = &lx.code[lineno];
            for token in DENIED {
                for at in find_denied(code, token) {
                    // `debug_assert!` contains `assert!` — exempt.
                    if token.starts_with("assert") && preceded_by_ident(code, at) {
                        continue;
                    }
                    sup.emit(
                        lx,
                        findings,
                        Finding {
                            rule: Rule::Panic,
                            file: rel.to_string(),
                            line: lineno + 1,
                            message: format!("`{token}` in {scope} (decoder-never-panics)"),
                        },
                    );
                    break; // one finding per (line, token)
                }
            }
            if !index_sites(code).is_empty() {
                // One finding per line, however many index sites it holds.
                sup.emit(
                    lx,
                    findings,
                    Finding {
                        rule: Rule::Index,
                        file: rel.to_string(),
                        line: lineno + 1,
                        message: format!(
                            "slice/array indexing in {scope} — use get()/get_mut() and surface \
                             a protocol error, or justify the bound"
                        ),
                    },
                );
            }
        }
    }
}

fn preceded_by_ident(code: &str, at: usize) -> bool {
    code[..at]
        .chars()
        .next_back()
        .map(|c| is_ident(c) || c == '_')
        .unwrap_or(false)
}

fn find_denied(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        out.push(from + rel);
        from += rel + token.len();
    }
    out
}

/// Byte offsets of `[` chars that index a value (the *immediately*
/// preceding char is an identifier char, `)`, or `]`), as opposed to array
/// literals, types, attributes, or slice patterns like `let [a, b] = …`
/// (which always have whitespace or punctuation before the bracket).
pub(crate) fn index_sites(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        if let Some(p) = code[..i].chars().next_back() {
            if is_ident(p) || p == ')' || p == ']' {
                out.push(i);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suppressor;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let lx = Lexed::lex(src);
        let mut sup = Suppressor::default();
        let mut findings = Vec::new();
        check(rel, &lx, &mut sup, &mut findings);
        findings
    }

    #[test]
    fn denies_unwrap_in_full_file() {
        let f = run(
            "crates/hb-net/src/frame.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Panic);
    }

    #[test]
    fn unwrap_or_and_debug_assert_pass() {
        let f = run(
            "crates/hb-net/src/frame.rs",
            "fn f(x: Option<u8>) -> u8 { debug_assert!(true); x.unwrap_or(0) }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn indexing_flagged_and_patterns_ignored() {
        let f = run(
            "crates/hb-net/src/wire.rs",
            "fn f(b: &[u8]) -> u8 {\n    let [_a, _b] = [1, 2];\n    b[0]\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Index);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn handler_impl_scoped_in_other_files() {
        let src = "fn free(x: Option<u8>) { x.unwrap(); }\n\
                   impl Handler for H {\n    fn on_data(&mut self, x: Option<u8>) { x.unwrap(); }\n}\n";
        let f = run("crates/hb-net/src/collector.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn test_modules_exempt() {
        let f = run(
            "crates/hb-net/src/frame.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn inline_allow_suppresses() {
        let f = run(
            "crates/hb-net/src/reactor.rs",
            "fn f(m: &Mutex<u8>) {\n    // hb-lint: allow(panic): poisoning only follows a prior panic\n    m.lock().unwrap();\n}\n",
        );
        assert!(f.is_empty());
    }
}
