//! The five checks plus the scanning helpers they share.

pub mod alloc;
pub mod atomics;
pub mod metrics;
pub mod panics;
pub mod wire_kinds;

use crate::lexer::Lexed;

/// Is `c` part of an identifier?
pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of `token` in `line` where the match is not embedded in a
/// longer identifier (checked on the token's first/last char only when the
/// token itself starts/ends with an identifier char).
pub(crate) fn token_positions(line: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(token) {
        let at = from + rel;
        from = at + token.len().max(1);
        let first = token.chars().next().unwrap_or(' ');
        let last = token.chars().last().unwrap_or(' ');
        if is_ident(first) {
            if let Some(prev) = line[..at].chars().next_back() {
                if is_ident(prev) {
                    continue;
                }
            }
        }
        if is_ident(last) {
            if let Some(next) = line[at + token.len()..].chars().next() {
                if is_ident(next) {
                    continue;
                }
            }
        }
        out.push(at);
    }
    out
}

/// The identifier that ends immediately before byte offset `at` in `line`
/// (walking back over identifier chars), if any.
pub(crate) fn ident_ending_at(line: &str, at: usize) -> Option<&str> {
    let head = &line[..at];
    let start = head
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &head[start..];
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// An inclusive 0-based line range.
pub(crate) type LineRange = (usize, usize);

/// Finds the line of the brace matching the `{` at (`line`, `col`) in
/// `code`, or the last line if the file ends first.
pub(crate) fn matching_close(code: &[String], line: usize, col: usize) -> usize {
    let mut depth = 0i64;
    for (l, text) in code.iter().enumerate().skip(line) {
        let start = if l == line { col } else { 0 };
        for (ci, c) in text.char_indices() {
            if ci < start {
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return l;
                    }
                }
                _ => {}
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Extracts the body ranges of every `fn` in the file (nested fns yield
/// nested, overlapping ranges — each is scanned independently).
pub(crate) fn fn_bodies(lx: &Lexed) -> Vec<(String, LineRange)> {
    let mut out = Vec::new();
    for lineno in 0..lx.len() {
        for at in token_positions(&lx.code[lineno], "fn") {
            let after = &lx.code[lineno][at + 2..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|c| is_ident(*c))
                .collect();
            if name.is_empty() {
                continue; // `Fn` traits, stray matches
            }
            // Scan forward for the body `{`, bailing at a `;` (trait
            // method declaration) while outside parens/brackets. Angle
            // brackets are ignored: generics never contain a top-level
            // `;`, and tracking them would misparse `->` arrows.
            let mut nest = 0i64;
            let mut found: Option<(usize, usize)> = None;
            'scan: for l in lineno..lx.len() {
                let text = &lx.code[l];
                let start_col = if l == lineno { at + 2 } else { 0 };
                for (ci, c) in text.char_indices() {
                    if ci < start_col {
                        continue;
                    }
                    match c {
                        '(' | '[' => nest += 1,
                        ')' | ']' => nest -= 1,
                        ';' if nest <= 0 => break 'scan,
                        '{' => {
                            found = Some((l, ci));
                            break 'scan;
                        }
                        _ => {}
                    }
                }
            }
            if let Some((bl, bc)) = found {
                let end = matching_close(&lx.code, bl, bc);
                out.push((name.clone(), (lineno, end)));
            }
        }
    }
    out
}

/// Extracts `impl … Handler for …` block ranges.
pub(crate) fn handler_impl_ranges(lx: &Lexed) -> Vec<LineRange> {
    let mut out = Vec::new();
    for lineno in 0..lx.len() {
        let code = &lx.code[lineno];
        if !code.trim_start().starts_with("impl") || !code.contains(" Handler for ") {
            continue;
        }
        // Body opens at the first `{` at or after the impl line.
        'open: for l in lineno..lx.len() {
            for (ci, c) in lx.code[l].char_indices() {
                if l == lineno && ci < code.find("impl").unwrap_or(0) {
                    continue;
                }
                if c == '{' {
                    out.push((lineno, matching_close(&lx.code, l, ci)));
                    break 'open;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexed;

    #[test]
    fn token_positions_respect_boundaries() {
        assert_eq!(token_positions("fn info(fn_ptr: fn())", "fn"), vec![0, 16]);
        assert_eq!(token_positions("self.seq.load(x)", "seq"), vec![5]);
    }

    #[test]
    fn ident_extraction() {
        let line = "self.next_seq.load(";
        let at = line.find(".load").unwrap();
        assert_eq!(ident_ending_at(line, at), Some("next_seq"));
    }

    #[test]
    fn fn_bodies_and_trait_decls() {
        let lx = Lexed::lex(
            "trait T {\n    fn decl(&self) -> u8;\n}\nfn real() {\n    inner();\n}\n",
        );
        let bodies = fn_bodies(&lx);
        assert_eq!(bodies.len(), 1);
        assert_eq!(bodies[0].0, "real");
        assert_eq!(bodies[0].1, (3, 5));
    }

    #[test]
    fn handler_impls_found() {
        let lx = Lexed::lex(
            "impl Handler for ProducerHandler {\n    fn on_data(&mut self) {}\n}\nstruct X;\n",
        );
        assert_eq!(handler_impl_ranges(&lx), vec![(0, 2)]);
    }
}
