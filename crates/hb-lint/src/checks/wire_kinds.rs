//! Check 4 — wire-kind exhaustiveness.
//!
//! The protocol's frame kinds live in four places that historically drift
//! apart: the `KIND_*` constants in `wire.rs`, the decoder match arms, the
//! kind table in `docs/WIRE.md`, and the round-trip/mangling proptests.
//! This check cross-references all four: every constant must have a
//! decoder arm and at least two non-definition references (encode +
//! decode), its frame must be named in WIRE.md, the WIRE.md discriminant
//! header must state the *current* maximum kind, and the proptests must
//! mention the frame so a new kind cannot ship untested.

use super::{is_ident, token_positions};
use crate::lexer::Lexed;
use crate::report::{Finding, Rule};
use crate::Suppressor;

/// One parsed `const KIND_X: u8 = N;`.
#[derive(Debug)]
struct Kind {
    name: String,
    value: u8,
    def_line: usize,
    /// `Frame::Variant` paired with this kind (from the encode match or a
    /// decode arm), if discoverable.
    variant: Option<String>,
}

/// Runs the wire-kind rules. `wire` is the lexed `wire.rs`; `wire_md` and
/// `proptests` are the raw texts of `docs/WIRE.md` and
/// `tests/wire_proptests.rs`.
pub fn check(
    wire_rel: &str,
    wire: &Lexed,
    wire_md: &str,
    proptests: &str,
    sup: &mut Suppressor,
    findings: &mut Vec<Finding>,
) {
    let mut kinds = collect_kinds(wire);
    if kinds.is_empty() {
        findings.push(Finding {
            rule: Rule::WireKind,
            file: wire_rel.to_string(),
            line: 0,
            message: "no `const KIND_*` declarations found".to_string(),
        });
        return;
    }
    pair_variants(wire, &mut kinds);
    let max_kind = kinds.iter().map(|k| k.value).max().unwrap_or(0);

    for kind in &kinds {
        let mut non_def_refs = 0usize;
        let mut has_arm = false;
        for (lineno, code) in wire.code.iter().enumerate() {
            if lineno == kind.def_line {
                continue;
            }
            for at in token_positions(code, &kind.name) {
                non_def_refs += 1;
                let after = code[at + kind.name.len()..].trim_start();
                if after.starts_with("=>") || after.starts_with('|') || after.starts_with("..=") {
                    has_arm = true;
                }
                let before = code[..at].trim_end();
                if before.ends_with('|') || before.ends_with("..=") {
                    has_arm = true;
                }
            }
        }
        if !has_arm {
            sup.emit(
                wire,
                findings,
                Finding {
                    rule: Rule::WireKind,
                    file: wire_rel.to_string(),
                    line: kind.def_line + 1,
                    message: format!("{} (kind {}) has no decoder match arm", kind.name, kind.value),
                },
            );
        }
        if non_def_refs < 2 {
            sup.emit(
                wire,
                findings,
                Finding {
                    rule: Rule::WireKind,
                    file: wire_rel.to_string(),
                    line: kind.def_line + 1,
                    message: format!(
                        "{} (kind {}) is referenced {} time(s) outside its definition — both an \
                         encoder and a decoder should use it",
                        kind.name, kind.value, non_def_refs
                    ),
                },
            );
        }
        if let Some(variant) = &kind.variant {
            if !wire_md.contains(variant.as_str()) {
                sup.emit(
                    wire,
                    findings,
                    Finding {
                        rule: Rule::WireKind,
                        file: "docs/WIRE.md".to_string(),
                        line: 0,
                        message: format!(
                            "frame `{variant}` (kind {}) is not documented in WIRE.md",
                            kind.value
                        ),
                    },
                );
            }
            let mentioned = proptests.contains(variant.as_str())
                || proptests.contains(kind.name.as_str());
            if !mentioned {
                sup.emit(
                    wire,
                    findings,
                    Finding {
                        rule: Rule::WireKind,
                        file: "crates/hb-net/tests/wire_proptests.rs".to_string(),
                        line: 0,
                        message: format!(
                            "frame `{variant}` (kind {}) is never mentioned in the wire \
                             proptests — new kinds must be covered by a round-trip or \
                             mangling property",
                            kind.value
                        ),
                    },
                );
            }
        }
    }

    // The discriminant header row must state the current range end, so the
    // byte-level spec cannot silently lag a new kind.
    let expect = format!("1–{max_kind}");
    let header_row = wire_md
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("frame type discriminant"));
    match header_row {
        Some((lineno, row)) if !row.contains(&expect) => {
            sup.emit(
                wire,
                findings,
                Finding {
                    rule: Rule::WireKind,
                    file: "docs/WIRE.md".to_string(),
                    line: lineno + 1,
                    message: format!(
                        "the `kind` header row does not state the current discriminant range \
                         `{expect}` (a new kind landed without a spec update?)"
                    ),
                },
            );
        }
        None => {
            sup.emit(
                wire,
                findings,
                Finding {
                    rule: Rule::WireKind,
                    file: "docs/WIRE.md".to_string(),
                    line: 0,
                    message: "WIRE.md has no `frame type discriminant` header row".to_string(),
                },
            );
        }
        _ => {}
    }
}

fn collect_kinds(wire: &Lexed) -> Vec<Kind> {
    let mut kinds = Vec::new();
    for (lineno, code) in wire.code.iter().enumerate() {
        if wire.in_test[lineno] {
            continue;
        }
        let Some(at) = code.find("const KIND_") else {
            continue;
        };
        let name: String = code[at + "const ".len()..]
            .chars()
            .take_while(|c| is_ident(*c))
            .collect();
        let Some(eq) = code.find('=') else { continue };
        let value: String = code[eq + 1..]
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(value) = value.parse::<u8>() {
            kinds.push(Kind {
                name,
                value,
                def_line: lineno,
                variant: None,
            });
        }
    }
    kinds
}

/// Pairs kinds with `Frame::Variant` names: same-arm pairs first (a
/// `Frame::X … => KIND_X` encode arm or `KIND_X => Frame::X` decode arm),
/// then a short look-ahead from match-arm lines for kinds that only appear
/// in multi-line arms like `KIND_A | KIND_B => { … Frame::A … }`.
fn pair_variants(wire: &Lexed, kinds: &mut [Kind]) {
    for kind in kinds.iter_mut() {
        let mut same_arm: Option<String> = None;
        let mut arm_line: Option<usize> = None;
        for (lineno, code) in wire.code.iter().enumerate() {
            if lineno == kind.def_line {
                continue;
            }
            let positions = token_positions(code, &kind.name);
            if positions.is_empty() {
                continue;
            }
            for &at in &positions {
                if same_arm.is_none() {
                    same_arm = variant_near(code, at, kind.name.len());
                }
            }
            if arm_line.is_none() && code.contains("=>") {
                arm_line = Some(lineno);
            }
        }
        kind.variant = same_arm.or_else(|| {
            let start = arm_line?;
            (start..(start + 6).min(wire.code.len()))
                .find_map(|l| frame_variant_at(&wire.code[l], wire.code[l].find("Frame::")?))
        });
    }
}

/// The `Frame::Variant` in the same match arm as the kind token at `at`:
/// the first `Frame::` after the token with a `=>` (and no other kind)
/// between, else the last `Frame::` before it under the same condition.
fn variant_near(code: &str, at: usize, token_len: usize) -> Option<String> {
    let after = &code[at + token_len..];
    if let Some(fa) = after.find("Frame::") {
        let gap = &after[..fa];
        if gap.contains("=>") && !gap.contains("KIND_") {
            if let Some(v) = frame_variant_at(after, fa) {
                return Some(v);
            }
        }
    }
    let before = &code[..at];
    if let Some(fb) = before.rfind("Frame::") {
        let v = frame_variant_at(before, fb)?;
        let gap = &before[fb + "Frame::".len() + v.len()..];
        if gap.contains("=>") && !gap.contains("KIND_") {
            return Some(v);
        }
    }
    None
}

fn frame_variant_at(code: &str, at: usize) -> Option<String> {
    let name: String = code[at + "Frame::".len()..]
        .chars()
        .take_while(|c| is_ident(*c))
        .collect();
    if name.is_empty() || !name.chars().next().is_some_and(|c| c.is_uppercase()) {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suppressor;

    const GOOD: &str = "const KIND_PING: u8 = 1;\n\
        const KIND_PONG: u8 = 2;\n\
        fn kind(f: &Frame) -> u8 { match f { Frame::Ping => KIND_PING, Frame::Pong => KIND_PONG } }\n\
        fn decode(k: u8) -> Frame { match k { KIND_PING => Frame::Ping, KIND_PONG => Frame::Pong, _ => panic, } }\n";

    fn run(src: &str, md: &str, pt: &str) -> Vec<Finding> {
        let lx = Lexed::lex(src);
        let mut sup = Suppressor::default();
        let mut findings = Vec::new();
        check("wire.rs", &lx, md, pt, &mut sup, &mut findings);
        findings
    }

    #[test]
    fn consistent_kinds_pass() {
        let md = "| `kind` | frame type discriminant, 1–2 |\nPing Pong\n";
        let f = run(GOOD, md, "Ping Pong roundtrip");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_arm_and_stale_doc_flagged() {
        let src = "const KIND_PING: u8 = 1;\n\
            fn kind(f: &Frame) -> u8 { match f { Frame::Ping => KIND_PING } }\n";
        let md = "| `kind` | frame type discriminant, 1–9 |\nPing\n";
        let f = run(src, md, "Ping");
        assert!(f.iter().any(|x| x.message.contains("no decoder match arm")));
        assert!(f.iter().any(|x| x.message.contains("1–1")));
    }

    #[test]
    fn undocumented_and_untested_frames_flagged() {
        let md = "| `kind` | frame type discriminant, 1–2 |\nPing\n";
        let f = run(GOOD, md, "Ping only");
        assert!(f
            .iter()
            .any(|x| x.message.contains("`Pong`") && x.message.contains("not documented")));
        assert!(f
            .iter()
            .any(|x| x.message.contains("`Pong`") && x.message.contains("proptests")));
    }
}
