//! Check 1 — the atomic-ordering audit.
//!
//! Two rules over every non-test line of the scanned sources:
//!
//! * **ordering** — each line using `Ordering::` must carry a
//!   `// ordering: <why>` justification (same line or the comment run
//!   directly above). An atomic ordering is a claim about *other* code —
//!   which store a load synchronizes with, why relaxed is enough — and the
//!   claim must be written where the ordering is, or it drifts.
//! * **claim** — inside one function, a `load` followed by a `store` on a
//!   field whose name smells like an ownership watermark
//!   (`watermark`/`cursor`/`seq`) is the exact shape of the PR 9
//!   reconnect-overlap double-apply race: two sessions both read the old
//!   watermark, both decide they own the range, both store. Claiming must
//!   go through `compare_exchange`/`fetch_*` (one winner) or justify why a
//!   single writer is guaranteed via `// hb-lint: allow(claim): <why>`.

use super::{fn_bodies, ident_ending_at, token_positions};
use crate::lexer::Lexed;
use crate::report::{Finding, Rule};
use crate::Suppressor;

/// Field-name fragments treated as ownership watermarks.
const WATCHED: [&str; 3] = ["watermark", "cursor", "seq"];

/// Atomic operations that claim a value atomically (one winner).
const CLAIM_OPS: [&str; 10] = [
    ".compare_exchange",
    ".fetch_update",
    ".fetch_add",
    ".fetch_sub",
    ".fetch_or",
    ".fetch_and",
    ".fetch_xor",
    ".fetch_max",
    ".fetch_min",
    ".swap(",
];

/// Runs both rules on one lexed file.
pub fn check(rel: &str, lx: &Lexed, sup: &mut Suppressor, findings: &mut Vec<Finding>) {
    for lineno in 0..lx.len() {
        if lx.in_test[lineno] || !lx.code[lineno].contains("Ordering::") {
            continue;
        }
        if crate::allow::ordering_justified(lx, lineno) {
            continue;
        }
        sup.emit(
            lx,
            findings,
            Finding {
                rule: Rule::Ordering,
                file: rel.to_string(),
                line: lineno + 1,
                message: "atomic ordering without a `// ordering:` justification".to_string(),
            },
        );
    }

    for (fn_name, (start, end)) in fn_bodies(lx) {
        if lx.in_test[start] {
            continue;
        }
        // Per watched field: the first load line, any claim op, and the
        // stores that follow a load.
        let mut first_load: Vec<Option<usize>> = vec![None; WATCHED.len()];
        let mut claimed = [false; WATCHED.len()];
        let mut late_stores: Vec<Vec<usize>> = vec![Vec::new(); WATCHED.len()];
        for lineno in start..=end.min(lx.len().saturating_sub(1)) {
            let code = &lx.code[lineno];
            for (kind, token) in [(0u8, ".load("), (1u8, ".store(")] {
                for at in token_positions(code, token) {
                    let Some(field) = ident_ending_at(code, at) else {
                        continue;
                    };
                    // A field like `seq_watermark` matches two fragments;
                    // count it once, under the first.
                    let Some(w) = WATCHED.iter().position(|frag| field.contains(frag)) else {
                        continue;
                    };
                    if kind == 0 {
                        first_load[w].get_or_insert(lineno);
                    } else if first_load[w].is_some() {
                        late_stores[w].push(lineno);
                    }
                }
            }
            for op in CLAIM_OPS {
                for at in token_positions(code, op) {
                    if let Some(field) = ident_ending_at(code, at) {
                        if let Some(w) = WATCHED.iter().position(|frag| field.contains(frag)) {
                            claimed[w] = true;
                        }
                    }
                }
            }
        }
        for (w, frag) in WATCHED.iter().enumerate() {
            if claimed[w] {
                continue;
            }
            for &store_line in &late_stores[w] {
                sup.emit(
                    lx,
                    findings,
                    Finding {
                        rule: Rule::Claim,
                        file: rel.to_string(),
                        line: store_line + 1,
                        message: format!(
                            "load-then-store on `{frag}`-like field in `{fn_name}` — claim it \
                             with compare_exchange/fetch_update (the PR 9 reconnect-overlap \
                             double-apply shape), or justify the single writer"
                        ),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Rule;
    use crate::Suppressor;

    fn run(src: &str) -> Vec<Finding> {
        let lx = Lexed::lex(src);
        let mut sup = Suppressor::default();
        let mut findings = Vec::new();
        check("f.rs", &lx, &mut sup, &mut findings);
        findings
    }

    #[test]
    fn unjustified_ordering_flagged() {
        let f = run("fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Ordering);
    }

    #[test]
    fn justified_ordering_passes() {
        let f = run(
            "fn f(x: &AtomicU64) {\n    x.load(Ordering::Relaxed); // ordering: stats-only\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn load_then_store_on_watermark_flagged() {
        let f = run(
            "fn apply(&self) {\n\
             let w = self.seq_watermark.load(Ordering::Acquire); // ordering: w\n\
             if w < next {\n\
             self.seq_watermark.store(next, Ordering::Release); // ordering: w\n\
             }\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Claim);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn cas_claim_passes() {
        let f = run(
            "fn apply(&self) {\n\
             let w = self.cursor.load(Ordering::Acquire); // ordering: w\n\
             // ordering: w\n\
             self.cursor.compare_exchange(w, n, Ordering::AcqRel, Ordering::Acquire).ok();\n\
             }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn allow_claim_with_reason_passes() {
        let f = run(
            "fn publish(&self) {\n\
             let s = self.slot_seq.load(Ordering::Relaxed); // ordering: single writer\n\
             // hb-lint: allow(claim): seqlock writer runs under the journal's single-writer slot claim\n\
             self.slot_seq.store(s + 1, Ordering::Release); // ordering: publish\n\
             }\n",
        );
        assert!(f.is_empty());
    }
}
