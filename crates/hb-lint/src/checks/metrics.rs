//! Check 5 — metric-registry drift.
//!
//! Every `hb_*` series the collector emits must carry a `# HELP` line and
//! a row in `docs/TELEMETRY.md`; every series the docs mention must still
//! be emitted. PRs 6–9 each added series, and the docs lagged more than
//! once — this check makes the documentation a registry with a machine-
//! checked contract instead of a best-effort mirror.
//!
//! Extraction is lexical: a string literal beginning `hb_` names an
//! emitted series (label blocks and value formatting are stripped); a
//! literal beginning `# HELP hb_x` registers help text. Series whose HELP
//! is rendered by a helper (the histogram renderer) are allowlisted with
//! that reason rather than special-cased here.

use crate::lexer::Lexed;
use crate::report::{Finding, Rule};
use crate::Suppressor;
use std::collections::BTreeMap;

/// Doc tokens that look like `hb_*` series but are crate/module names.
const STOPLIST: [&str; 4] = ["hb_net", "hb_shm", "hb_bench", "hb_lint"];

/// Runs the metric-drift rules. `sources` are the lexed hb-net sources;
/// `telemetry_md` is the raw text of `docs/TELEMETRY.md`.
pub fn check(
    sources: &[(String, &Lexed)],
    telemetry_md: &str,
    sup: &mut Suppressor,
    findings: &mut Vec<Finding>,
) {
    // Emitted series → first (file, line, lexed index) that emits them.
    let mut emitted: BTreeMap<String, (String, usize, usize)> = BTreeMap::new();
    let mut helped: Vec<String> = Vec::new();
    for (src_idx, (rel, lx)) in sources.iter().enumerate() {
        for lineno in 0..lx.len() {
            if lx.in_test[lineno] {
                continue;
            }
            for lit in &lx.strings[lineno] {
                if let Some(rest) = lit.strip_prefix("# HELP ") {
                    if let Some(name) = metric_name(rest) {
                        helped.push(name);
                    }
                } else if let Some(name) = metric_name(lit) {
                    emitted
                        .entry(name)
                        .or_insert_with(|| (rel.clone(), lineno, src_idx));
                }
            }
        }
    }

    for (name, (rel, lineno, src_idx)) in &emitted {
        let lx = sources[*src_idx].1;
        if !helped.iter().any(|h| h == name) {
            sup.emit(
                lx,
                findings,
                Finding {
                    rule: Rule::Metric,
                    file: rel.clone(),
                    line: lineno + 1,
                    message: format!("series `{name}` is emitted without a `# HELP {name}` line"),
                },
            );
        }
        if !doc_mentions(telemetry_md, name) {
            sup.emit(
                lx,
                findings,
                Finding {
                    rule: Rule::Metric,
                    file: rel.clone(),
                    line: lineno + 1,
                    message: format!(
                        "series `{name}` is emitted but has no row in docs/TELEMETRY.md"
                    ),
                },
            );
        }
    }

    // Reverse direction: every hb_* token the docs mention must exist.
    for (lineno, line) in telemetry_md.lines().enumerate() {
        for token in doc_tokens(line) {
            if STOPLIST.contains(&token.as_str()) {
                continue;
            }
            let base = strip_series_suffix(&token);
            if !emitted.contains_key(&token) && !emitted.contains_key(base) {
                // Doc findings have no source line to inline-allow; route
                // through the allowlist keyed on the doc line text.
                sup.emit_doc(
                    line,
                    findings,
                    Finding {
                        rule: Rule::Metric,
                        file: "docs/TELEMETRY.md".to_string(),
                        line: lineno + 1,
                        message: format!(
                            "documented series `{token}` is never emitted by the collector"
                        ),
                    },
                );
            }
        }
    }
}

/// Leading `hb_[a-z0-9_]+` of a literal, if the literal starts with one.
fn metric_name(text: &str) -> Option<String> {
    let rest = text.strip_prefix("hb_")?;
    let body: String = rest
        .chars()
        .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
        .collect();
    if body.is_empty() {
        return None;
    }
    Some(format!("hb_{body}"))
}

/// All `hb_*` tokens in a line of documentation (identifier-boundary on
/// the left, `::` paths excluded).
fn doc_tokens(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find("hb_") {
        let at = from + rel;
        let boundary = at == 0
            || line[..at]
                .chars()
                .next_back()
                .map(|c| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(true);
        let token = metric_name(&line[at..]);
        from = at + 3;
        let Some(token) = token else { continue };
        if !boundary {
            continue;
        }
        // A module path like `hb_net::telemetry` is not a series.
        if line[at + token.len()..].starts_with("::") {
            continue;
        }
        from = at + token.len();
        out.push(token);
    }
    out
}

/// Strips a Prometheus histogram/summary suffix so `…_seconds_count`
/// matches the `…_seconds` base series.
fn strip_series_suffix(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Does the doc mention `name` as a token (not merely as a substring of a
/// longer series name)?
fn doc_mentions(doc: &str, name: &str) -> bool {
    doc.lines()
        .any(|line| doc_tokens(line).iter().any(|t| strip_series_suffix(t) == name || t == name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suppressor;

    fn run(src: &str, md: &str) -> Vec<Finding> {
        let lx = Lexed::lex(src);
        let sources = vec![("collector.rs".to_string(), &lx)];
        let mut sup = Suppressor::default();
        let mut findings = Vec::new();
        check(&sources, md, &mut sup, &mut findings);
        findings
    }

    #[test]
    fn documented_and_helped_series_pass() {
        let src = "fn f(out: &mut String) {\n\
            out.push_str(\"# HELP hb_app_rate_bps Beat rate.\\n\");\n\
            out.push_str(\"hb_app_rate_bps 1\\n\");\n}\n";
        let md = "| `hb_app_rate_bps` | gauge | beat rate |\n";
        assert!(run(src, md).is_empty());
    }

    #[test]
    fn missing_help_and_missing_doc_row_flagged() {
        let src = "fn f(out: &mut String) { out.push_str(\"hb_app_rate_bps 1\\n\"); }\n";
        let f = run(src, "nothing here\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.message.contains("# HELP")));
        assert!(f.iter().any(|x| x.message.contains("TELEMETRY.md")));
    }

    #[test]
    fn ghost_documented_series_flagged() {
        let src = "fn f(out: &mut String) {\n\
            out.push_str(\"# HELP hb_app_rate_bps Beat rate.\\n\");\n\
            out.push_str(\"hb_app_rate_bps 1\\n\");\n}\n";
        let md = "| `hb_app_rate_bps` | gauge |\n| `hb_collector_apps` | gauge |\n";
        let f = run(src, md);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("hb_collector_apps"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn histogram_suffixes_and_paths_ignored() {
        let src = "fn f(out: &mut String) {\n\
            out.push_str(\"# HELP hb_x_seconds Latency.\\n\");\n\
            out.push_str(\"hb_x_seconds 1\\n\");\n}\n";
        let md = "`hb_x_seconds_count` and `hb_net::telemetry` and labels `hb_x_seconds{le=\"1\"}`\n";
        assert!(run(src, md).is_empty());
    }

    #[test]
    fn labels_stripped_from_emitted_names() {
        let src =
            "fn f(out: &mut String) { out.push_str(\"hb_shard_conns{shard=\\\"0\\\"} 1\\n\"); }\n";
        let f = run(src, "`hb_shard_conns{shard=\"N\"}` row\n");
        // HELP missing fires; the doc row matches despite the label block.
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("# HELP"));
    }
}
