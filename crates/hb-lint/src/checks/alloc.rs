//! Check 3 — hot-path allocation lint.
//!
//! `tests/ingest_alloc.rs` proves decode→ingest allocates nothing with a
//! counting allocator, but only for the path the test drives. This check
//! is the static backstop: regions bracketed by `// hb-lint: hot-path` …
//! `// hb-lint: end-hot-path` comments deny the obvious allocating calls,
//! so a `format!` slipped into the ingest loop fails review before it
//! fails the allocation test (or worse, ships on an untested branch).

use crate::lexer::Lexed;
use crate::report::{Finding, Rule};
use crate::Suppressor;

/// Marker opening a hot-path region.
pub const BEGIN: &str = "hb-lint: hot-path";
/// Marker closing a hot-path region.
pub const END: &str = "hb-lint: end-hot-path";

const DENIED: [&str; 12] = [
    "format!",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "String::from(",
    "String::new(",
    "String::with_capacity(",
    "Vec::new(",
    "Vec::with_capacity(",
    "vec!",
    "Box::new(",
    ".collect",
];

/// Runs the hot-path allocation rules on one lexed file.
pub fn check(rel: &str, lx: &Lexed, sup: &mut Suppressor, findings: &mut Vec<Finding>) {
    let mut open: Option<usize> = None;
    for lineno in 0..lx.len() {
        let comment = &lx.comments[lineno];
        // `end-hot-path` contains `hot-path`; test for the closer first.
        if comment.contains(END) {
            if open.take().is_none() {
                findings.push(Finding {
                    rule: Rule::Alloc,
                    file: rel.to_string(),
                    line: lineno + 1,
                    message: "end-hot-path without an open hot-path region".to_string(),
                });
            }
            continue;
        }
        if comment.contains(BEGIN) {
            if open.is_some() {
                findings.push(Finding {
                    rule: Rule::Alloc,
                    file: rel.to_string(),
                    line: lineno + 1,
                    message: "nested hb-lint: hot-path region (close the previous one first)"
                        .to_string(),
                });
            }
            open = Some(lineno);
            continue;
        }
        if open.is_none() || lx.in_test[lineno] {
            continue;
        }
        let code = &lx.code[lineno];
        for token in DENIED {
            if code.contains(token) {
                sup.emit(
                    lx,
                    findings,
                    Finding {
                        rule: Rule::Alloc,
                        file: rel.to_string(),
                        line: lineno + 1,
                        message: format!("allocating call `{token}` inside a hot-path region"),
                    },
                );
            }
        }
        // `.clone()` allocates unless the receiver is refcounted; lines
        // that visibly clone an Arc (`Arc::clone`, `arc_segment.clone()`)
        // pass, anything else must justify itself.
        if code.contains(".clone()") && !code.contains("Arc") && !code.contains("arc") {
            sup.emit(
                lx,
                findings,
                Finding {
                    rule: Rule::Alloc,
                    file: rel.to_string(),
                    line: lineno + 1,
                    message: "`.clone()` on a non-Arc value inside a hot-path region".to_string(),
                },
            );
        }
    }
    if let Some(start) = open {
        findings.push(Finding {
            rule: Rule::Alloc,
            file: rel.to_string(),
            line: start + 1,
            message: "hb-lint: hot-path region never closed (missing end-hot-path)".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suppressor;

    fn run(src: &str) -> Vec<Finding> {
        let lx = Lexed::lex(src);
        let mut sup = Suppressor::default();
        let mut findings = Vec::new();
        check("f.rs", &lx, &mut sup, &mut findings);
        findings
    }

    #[test]
    fn allocation_in_region_flagged() {
        let f = run(
            "// hb-lint: hot-path\nfn f() { let s = format!(\"x\"); }\n// hb-lint: end-hot-path\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("format!"));
    }

    #[test]
    fn allocation_outside_region_passes() {
        let f = run("fn f() { let s = format!(\"x\"); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn arc_clone_passes_plain_clone_flagged() {
        let f = run(
            "// hb-lint: hot-path\n\
             fn f(a: &Arc<u8>, v: &Vec<u8>) { let _x = Arc::clone(a); let _y = v.clone(); }\n\
             // hb-lint: end-hot-path\n",
        );
        // The Arc on the line exempts it entirely — one line, one verdict.
        assert!(f.is_empty());
        let f = run(
            "// hb-lint: hot-path\nfn f(v: &Vec<u8>) { let _y = v.clone(); }\n// hb-lint: end-hot-path\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unclosed_region_flagged() {
        let f = run("// hb-lint: hot-path\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never closed"));
    }
}
