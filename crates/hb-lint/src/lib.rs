//! hb-lint — the repo's own invariant checker for the collector's
//! lock-free core.
//!
//! PR 9's reconnect-overlap double-apply race was caught dynamically, by
//! running the chaos harness and staring at ledgers — even though the
//! broken pattern (a load-then-store watermark check instead of a CAS
//! claim) was visible in the source the whole time. The paper's thesis is
//! that program health becomes observable through a simple enforced
//! convention; hb-lint applies the same idea to the codebase itself.
//! Five checks, each individually toggleable, run over the `hb-net`
//! sources with a tiny purpose-built lexer (no AST, no dependencies):
//!
//! 1. **atomics** — every `Ordering::` use carries a `// ordering:`
//!    justification; load-then-store on watermark/cursor/seq fields
//!    without a CAS claim is the PR 9 bug class and is flagged.
//! 2. **panics** — `unwrap`/`expect`/`panic!`/indexing denied on the data
//!    plane (`reactor.rs`, `frame.rs`, `wire.rs`, all `Handler` impls).
//! 3. **alloc** — deny-listed allocating calls inside
//!    `// hb-lint: hot-path` regions.
//! 4. **wire-kinds** — `KIND_*` constants vs. decoder arms vs. WIRE.md
//!    vs. the wire proptests.
//! 5. **metrics** — emitted `hb_*` series vs. `# HELP` lines vs.
//!    docs/TELEMETRY.md, in both directions.
//!
//! See `docs/LINTS.md` for the comment grammar and the allowlist format.

pub mod allow;
pub mod checks;
pub mod lexer;
pub mod report;

use allow::Allowlist;
use lexer::Lexed;
use report::{Finding, Report, Rule};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The five toggleable checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// Atomic-ordering audit (rules `ordering`, `claim`).
    Atomics,
    /// Data-plane panic freedom (rules `panic`, `index`).
    Panics,
    /// Hot-path allocation lint (rule `alloc`).
    Alloc,
    /// Wire-kind exhaustiveness (rule `wire-kind`).
    WireKinds,
    /// Metric-registry drift (rule `metric`).
    Metrics,
}

impl Check {
    /// All checks, in reporting order.
    pub const ALL: [Check; 5] = [
        Check::Atomics,
        Check::Panics,
        Check::Alloc,
        Check::WireKinds,
        Check::Metrics,
    ];

    /// CLI name of the check.
    pub fn name(self) -> &'static str {
        match self {
            Check::Atomics => "atomics",
            Check::Panics => "panics",
            Check::Alloc => "alloc",
            Check::WireKinds => "wire-kinds",
            Check::Metrics => "metrics",
        }
    }

    /// Parses a CLI check name.
    pub fn parse(name: &str) -> Option<Check> {
        Check::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// What to scan and which checks to run.
#[derive(Debug)]
pub struct Options {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Enabled checks.
    pub checks: BTreeSet<Check>,
    /// Allowlist path; `None` uses `<root>/hb-lint.allow` when present.
    pub allowlist: Option<PathBuf>,
}

impl Options {
    /// All checks over `root`, with the default allowlist.
    pub fn new(root: PathBuf) -> Options {
        Options {
            root,
            checks: Check::ALL.into_iter().collect(),
            allowlist: None,
        }
    }
}

/// Suppression state shared by the checks: the allowlist plus inline
/// `hb-lint: allow(..)` comments, with a counter for reporting.
#[derive(Default)]
pub struct Suppressor {
    allowlist: Allowlist,
    /// Findings suppressed so far.
    pub suppressed: usize,
}

impl Suppressor {
    /// Wraps a parsed allowlist.
    pub fn new(allowlist: Allowlist) -> Suppressor {
        Suppressor {
            allowlist,
            suppressed: 0,
        }
    }

    /// Emits `finding` unless an inline allow or allowlist entry covers it.
    pub fn emit(&mut self, lx: &Lexed, findings: &mut Vec<Finding>, finding: Finding) {
        let lineno = finding.line.saturating_sub(1);
        if finding.line > 0
            && lineno < lx.len()
            && allow::inline_allowed(lx, lineno, finding.rule)
        {
            self.suppressed += 1;
            return;
        }
        let raw = if finding.line > 0 && lineno < lx.len() {
            lx.raw[lineno].as_str()
        } else {
            ""
        };
        if self
            .allowlist
            .suppresses(finding.rule, &finding.file, raw)
        {
            self.suppressed += 1;
            return;
        }
        findings.push(finding);
    }

    /// Emits a finding anchored to a documentation line (no lexed source;
    /// only the allowlist can suppress it, keyed on the doc line's text).
    pub fn emit_doc(&mut self, raw_line: &str, findings: &mut Vec<Finding>, finding: Finding) {
        if self
            .allowlist
            .suppresses(finding.rule, &finding.file, raw_line)
        {
            self.suppressed += 1;
            return;
        }
        findings.push(finding);
    }
}

/// The source files the per-file checks (atomics, panics, alloc) scan.
fn rust_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates/hb-net/src")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the enabled checks over the workspace at `opts.root`.
pub fn run(opts: &Options) -> std::io::Result<Report> {
    let mut report = Report::default();

    let allow_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("hb-lint.allow"));
    let allowlist = if allow_path.exists() {
        Allowlist::parse(&std::fs::read_to_string(&allow_path)?)
    } else {
        Allowlist::default()
    };
    for err in &allowlist.errors {
        report.findings.push(Finding {
            rule: Rule::Metric, // rule is moot for a malformed allowlist
            file: rel_of(&opts.root, &allow_path),
            line: 0,
            message: format!("malformed allowlist entry ({err})"),
        });
    }
    let mut sup = Suppressor::new(allowlist);

    let mut lexed: Vec<(String, Lexed)> = Vec::new();
    for path in rust_sources(&opts.root)? {
        let text = std::fs::read_to_string(&path)?;
        lexed.push((rel_of(&opts.root, &path), Lexed::lex(&text)));
    }
    report.files_scanned = lexed.len();

    for (rel, lx) in &lexed {
        if opts.checks.contains(&Check::Atomics) {
            checks::atomics::check(rel, lx, &mut sup, &mut report.findings);
        }
        if opts.checks.contains(&Check::Panics) {
            checks::panics::check(rel, lx, &mut sup, &mut report.findings);
        }
        if opts.checks.contains(&Check::Alloc) {
            checks::alloc::check(rel, lx, &mut sup, &mut report.findings);
        }
    }

    if opts.checks.contains(&Check::WireKinds) {
        let wire_rel = "crates/hb-net/src/wire.rs";
        if let Some((rel, lx)) = lexed.iter().find(|(rel, _)| rel == wire_rel) {
            let wire_md = std::fs::read_to_string(opts.root.join("docs/WIRE.md"))?;
            let proptests =
                std::fs::read_to_string(opts.root.join("crates/hb-net/tests/wire_proptests.rs"))?;
            checks::wire_kinds::check(rel, lx, &wire_md, &proptests, &mut sup, &mut report.findings);
            report.files_scanned += 2;
        }
    }

    if opts.checks.contains(&Check::Metrics) {
        // The Prometheus registry is rendered by collector.rs alone;
        // scanning other files would count client-side parsers of the
        // same names as emissions.
        let sources: Vec<(String, &Lexed)> = lexed
            .iter()
            .filter(|(rel, _)| rel.ends_with("src/collector.rs"))
            .map(|(rel, lx)| (rel.clone(), lx))
            .collect();
        let telemetry_md = std::fs::read_to_string(opts.root.join("docs/TELEMETRY.md"))?;
        checks::metrics::check(&sources, &telemetry_md, &mut sup, &mut report.findings);
        report.files_scanned += 1;
    }

    report.suppressed = sup.suppressed;
    report.stale_allows = sup.allowlist.stale();
    Ok(report)
}

/// Walks up from `start` to the workspace root (the directory that
/// contains `crates/hb-net`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates/hb-net/src/wire.rs").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
