//! Finding types and the text report.

use std::fmt;

/// The individual rules hb-lint enforces. Checks group one or two rules;
/// rules are what findings carry and what inline `allow(..)` names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `Ordering::` use without a `// ordering:` justification.
    Ordering,
    /// Load-then-store on a watermark/cursor/seq field without a CAS claim.
    Claim,
    /// `unwrap`/`expect`/`panic!`-family on the data plane.
    Panic,
    /// Slice/array indexing on the data plane (panics when out of range).
    Index,
    /// Deny-listed allocating call inside a `hb-lint: hot-path` region.
    Alloc,
    /// Wire-kind constant drift (match arms, WIRE.md, proptests).
    WireKind,
    /// Metric-registry drift (`# HELP`, docs/TELEMETRY.md).
    Metric,
}

impl Rule {
    /// The name used in findings, inline allows and the allowlist file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Ordering => "ordering",
            Rule::Claim => "claim",
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Alloc => "alloc",
            Rule::WireKind => "wire-kind",
            Rule::Metric => "metric",
        }
    }

    /// Parses a rule name (as spelled in allowlist entries).
    pub fn parse(name: &str) -> Option<Rule> {
        Some(match name {
            "ordering" => Rule::Ordering,
            "claim" => Rule::Claim,
            "panic" => Rule::Panic,
            "index" => Rule::Index,
            "alloc" => Rule::Alloc,
            "wire-kind" => Rule::WireKind,
            "metric" => Rule::Metric,
            _ => return None,
        })
    }
}

/// One violation, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule.name(), self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file,
                self.line,
                self.rule.name(),
                self.message
            )
        }
    }
}

/// The full result of a run: surviving findings plus bookkeeping.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that were not suppressed.
    pub findings: Vec<Finding>,
    /// Findings suppressed by the allowlist file or inline allows.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (stale entries rot; they are
    /// reported as findings by the driver).
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run found nothing (and no allowlist entry is stale).
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }

    /// Renders the findings sorted by file then line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&Finding> = self.findings.iter().collect();
        sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for f in &sorted {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        for stale in &self.stale_allows {
            out.push_str(&format!(
                "hb-lint.allow: stale entry matched no finding: {stale}\n"
            ));
        }
        out.push_str(&format!(
            "hb-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len() + self.stale_allows.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }
}
