//! CLI for hb-lint. `cargo run -p hb-lint -- --check` from anywhere in
//! the workspace; exit 0 when clean, 1 on findings, 2 on usage/IO errors.

use hb_lint::{find_root, run, Check, Options};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
hb-lint — in-repo invariant checker (see docs/LINTS.md)

USAGE:
    cargo run -p hb-lint -- [--check] [OPTIONS]

OPTIONS:
    --check             run the enabled checks (the default action)
    --only LIST         comma-separated checks to run (others skipped)
    --skip LIST         comma-separated checks to skip
    --root DIR          workspace root (default: walk up from the cwd)
    --allowlist FILE    allowlist path (default: <root>/hb-lint.allow)
    --list-checks       print the check names and exit
    --help              print this help

EXIT STATUS:
    0  clean    1  findings or stale allowlist entries    2  usage/IO error
";

fn main() -> ExitCode {
    match cli(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hb-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_check_list(list: &str) -> Result<Vec<Check>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            Check::parse(name).ok_or_else(|| {
                let known: Vec<&str> = Check::ALL.iter().map(|c| c.name()).collect();
                format!("unknown check `{name}` (known: {})", known.join(", "))
            })
        })
        .collect()
}

fn cli(args: Vec<String>) -> Result<ExitCode, String> {
    let mut only: Option<Vec<Check>> = None;
    let mut skip: Vec<Check> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {}
            "--only" => {
                let list = it.next().ok_or("--only needs a comma-separated list")?;
                only = Some(parse_check_list(&list)?);
            }
            "--skip" => {
                let list = it.next().ok_or("--skip needs a comma-separated list")?;
                skip = parse_check_list(&list)?;
            }
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--allowlist" => {
                allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a file")?));
            }
            "--list-checks" => {
                for check in Check::ALL {
                    println!("{}", check.name());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_root(&cwd).ok_or("not inside the workspace (crates/hb-net not found); pass --root")?
        }
    };

    let mut checks: BTreeSet<Check> = match only {
        Some(list) => list.into_iter().collect(),
        None => Check::ALL.into_iter().collect(),
    };
    for check in skip {
        checks.remove(&check);
    }

    let opts = Options {
        root,
        checks,
        allowlist,
    };
    let report = run(&opts).map_err(|e| format!("scan failed: {e}"))?;
    print!("{}", report.render());
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
