//! Regression: the linter runs clean on the current workspace. A new
//! violation fails this test with the rendered findings — a readable
//! `file:line: [rule] message` diff, not a mystery CI exit code.

use hb_lint::{run, Options};
use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let report = run(&Options::new(root)).unwrap();
    assert!(
        report.clean(),
        "hb-lint found violations in the workspace:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 10, "suspiciously few files scanned");
}
