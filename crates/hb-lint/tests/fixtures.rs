//! Fixture-driven self-tests: the good tree lints clean, the bad tree
//! trips every rule with `file:line` findings, and the binary exits
//! nonzero on it. These are the linter's own known-good/known-bad pairs —
//! a check that stops firing on its bad fixture fails here, not in the
//! field.

use hb_lint::report::Rule;
use hb_lint::{run, Check, Options};
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn good_fixture_is_clean() {
    let report = run(&Options::new(fixture_root("good"))).unwrap();
    assert!(report.clean(), "unexpected findings:\n{}", report.render());
    assert_eq!(report.files_scanned, 3 + 2 + 1, "{}", report.render());
}

#[test]
fn bad_fixture_trips_every_rule() {
    let report = run(&Options::new(fixture_root("bad"))).unwrap();
    for rule in [
        Rule::Ordering,
        Rule::Claim,
        Rule::Panic,
        Rule::Index,
        Rule::Alloc,
        Rule::WireKind,
        Rule::Metric,
    ] {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule `{}` did not fire on the bad fixture:\n{}",
            rule.name(),
            report.render()
        );
    }
    // The deliberately-unmatched allowlist entry is reported stale.
    assert_eq!(report.stale_allows.len(), 1, "{}", report.render());
    // Source-anchored findings render as file:line.
    let rendered = report.render();
    assert!(rendered.contains("crates/hb-net/src/wire.rs:"), "{rendered}");
    assert!(
        rendered.contains("crates/hb-net/src/reactor.rs:"),
        "{rendered}"
    );
    assert!(
        rendered.contains("crates/hb-net/src/collector.rs:"),
        "{rendered}"
    );
}

#[test]
fn bad_fixture_claim_finding_points_at_the_store() {
    let report = run(&Options::new(fixture_root("bad"))).unwrap();
    let claim = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::Claim)
        .expect("claim finding");
    // The store line of the load-then-store pair in fixtures/bad/.../reactor.rs.
    assert!(claim.file.ends_with("reactor.rs"), "{claim}");
    assert_eq!(claim.line, 18, "{claim}");
    assert!(claim.message.contains("compare_exchange"), "{claim}");
}

#[test]
fn single_check_toggle_scopes_findings() {
    let mut opts = Options::new(fixture_root("bad"));
    opts.checks = [Check::Alloc].into_iter().collect();
    let report = run(&opts).unwrap();
    assert!(!report.findings.is_empty());
    assert!(
        report.findings.iter().all(|f| f.rule == Rule::Alloc),
        "{}",
        report.render()
    );
}

#[test]
fn binary_exits_nonzero_with_file_line_findings_on_bad_fixture() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hb-lint"))
        .args(["--check", "--root"])
        .arg(fixture_root("bad"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("crates/hb-net/src/wire.rs:"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_good_fixture() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hb-lint"))
        .args(["--check", "--root"])
        .arg(fixture_root("good"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
}
