//! Deterministic pseudo-random number generation for simulations.
//!
//! Every experiment in the benchmark harness must be exactly reproducible, so
//! the simulation substrate carries its own tiny, seedable generator
//! (SplitMix64) instead of relying on ambient randomness. The statistical
//! quality is more than sufficient for workload-trace generation.

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Modulo bias is negligible for the workload-generation use cases.
        self.next_u64() % n
    }

    /// Approximately normally distributed sample (mean 0, stddev 1) using the
    /// sum of twelve uniforms (Irwin–Hall).
    pub fn gaussian(&mut self) -> f64 {
        let mut sum = 0.0;
        for _ in 0..12 {
            sum += self.next_f64();
        }
        sum - 6.0
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.gaussian()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1_000 {
            let x = rng.uniform(5.0, 6.5);
            assert!((5.0..6.5).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_reasonable() {
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.uniform(0.0, 10.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SplitMix64::new(13);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = SplitMix64::new(19);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(100.0, 10.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5);
    }
}
