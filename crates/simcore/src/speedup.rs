//! Parallel speedup models.
//!
//! The paper's scheduler experiments (Section 5.3) change the number of cores
//! allocated to a PARSEC benchmark and observe the resulting heart rate. To
//! reproduce those experiments deterministically, each simulated workload
//! carries a [`SpeedupModel`] describing how its throughput scales with the
//! number of cores it may use. Amdahl's law with a per-benchmark parallel
//! fraction captures the first-order behaviour; a table model allows
//! arbitrary measured curves.

/// How a workload's throughput scales with allocated cores.
pub trait SpeedupModel: Send + Sync + std::fmt::Debug {
    /// Speedup factor relative to one core (must return ≥ a small positive
    /// value; `cores == 0` models a fully stalled application).
    fn speedup(&self, cores: usize) -> f64;

    /// Throughput in work-units/second given single-core throughput.
    fn throughput(&self, single_core_throughput: f64, cores: usize) -> f64 {
        single_core_throughput * self.speedup(cores)
    }
}

/// Amdahl's-law speedup with a parallel fraction `p` and an optional
/// per-core parallelization efficiency.
#[derive(Debug, Clone)]
pub struct Amdahl {
    /// Fraction of the work that is parallelizable, in `[0, 1]`.
    pub parallel_fraction: f64,
    /// Multiplicative efficiency applied to the parallel part per extra core
    /// (models synchronization overhead); 1.0 = ideal.
    pub efficiency: f64,
}

impl Amdahl {
    /// Ideal Amdahl model with the given parallel fraction.
    pub fn new(parallel_fraction: f64) -> Self {
        Amdahl {
            parallel_fraction: parallel_fraction.clamp(0.0, 1.0),
            efficiency: 1.0,
        }
    }

    /// Amdahl model with a per-core efficiency factor in `(0, 1]`.
    pub fn with_efficiency(parallel_fraction: f64, efficiency: f64) -> Self {
        Amdahl {
            parallel_fraction: parallel_fraction.clamp(0.0, 1.0),
            efficiency: efficiency.clamp(0.05, 1.0),
        }
    }
}

impl SpeedupModel for Amdahl {
    fn speedup(&self, cores: usize) -> f64 {
        if cores == 0 {
            return 1e-9; // a stalled application makes essentially no progress
        }
        let n = cores as f64;
        let p = self.parallel_fraction;
        // Effective parallelism shrinks with imperfect efficiency.
        let effective = 1.0 + (n - 1.0) * self.efficiency;
        1.0 / ((1.0 - p) + p / effective.max(1.0))
    }
}

/// Linear speedup with a fixed efficiency (`speedup = 1 + (n-1) * e`).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Marginal speedup contributed by each additional core.
    pub efficiency: f64,
}

impl Linear {
    /// Creates a linear model; `efficiency` is clamped to `[0, 1]`.
    pub fn new(efficiency: f64) -> Self {
        Linear {
            efficiency: efficiency.clamp(0.0, 1.0),
        }
    }
}

impl SpeedupModel for Linear {
    fn speedup(&self, cores: usize) -> f64 {
        if cores == 0 {
            return 1e-9;
        }
        1.0 + (cores as f64 - 1.0) * self.efficiency
    }
}

/// Speedup given by an explicit per-core-count table (index 0 = 1 core).
/// Core counts beyond the table use the last entry.
#[derive(Debug, Clone)]
pub struct TableSpeedup {
    entries: Vec<f64>,
}

impl TableSpeedup {
    /// Creates a table model. Empty tables behave as "no speedup".
    pub fn new(entries: Vec<f64>) -> Self {
        TableSpeedup { entries }
    }
}

impl SpeedupModel for TableSpeedup {
    fn speedup(&self, cores: usize) -> f64 {
        if cores == 0 {
            return 1e-9;
        }
        if self.entries.is_empty() {
            return 1.0;
        }
        let idx = (cores - 1).min(self.entries.len() - 1);
        self.entries[idx].max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_monotone_and_bounded() {
        let model = Amdahl::new(0.9);
        let mut prev = 0.0;
        for cores in 1..=16 {
            let s = model.speedup(cores);
            assert!(s >= prev, "speedup must not decrease with cores");
            prev = s;
        }
        // Amdahl bound: 1 / (1 - p) = 10.
        assert!(prev < 10.0);
        assert!((model.speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_fully_serial_never_speeds_up() {
        let model = Amdahl::new(0.0);
        assert!((model.speedup(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_fully_parallel_is_linear() {
        let model = Amdahl::new(1.0);
        assert!((model.speedup(8) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_zero_cores_is_stalled() {
        let model = Amdahl::new(0.9);
        assert!(model.speedup(0) < 1e-6);
    }

    #[test]
    fn amdahl_efficiency_reduces_speedup() {
        let ideal = Amdahl::new(0.95);
        let lossy = Amdahl::with_efficiency(0.95, 0.7);
        assert!(lossy.speedup(8) < ideal.speedup(8));
        assert!((lossy.speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_clamps_parallel_fraction() {
        let model = Amdahl::new(1.5);
        assert!((model.speedup(4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn linear_model() {
        let model = Linear::new(0.5);
        assert!((model.speedup(1) - 1.0).abs() < 1e-12);
        assert!((model.speedup(5) - 3.0).abs() < 1e-12);
        assert!(Linear::new(2.0).speedup(2) <= 2.0, "efficiency clamped to 1");
    }

    #[test]
    fn table_model_lookup_and_saturation() {
        let model = TableSpeedup::new(vec![1.0, 1.8, 2.5, 3.0]);
        assert_eq!(model.speedup(1), 1.0);
        assert_eq!(model.speedup(3), 2.5);
        assert_eq!(model.speedup(10), 3.0, "beyond table uses last entry");
        assert!(model.speedup(0) < 1e-6);
    }

    #[test]
    fn empty_table_is_flat() {
        assert_eq!(TableSpeedup::new(vec![]).speedup(4), 1.0);
    }

    #[test]
    fn throughput_uses_speedup() {
        let model = Amdahl::new(1.0);
        assert!((model.throughput(10.0, 4) - 40.0).abs() < 1e-9);
    }
}
