//! Per-item load phases.
//!
//! Workloads in the paper exhibit distinct execution phases: x264's native
//! PARSEC input runs at 12–14 beat/s, jumps to 23–29 beat/s between frames
//! ~100 and ~330, and settles back down (Figure 2); bodytrack's computational
//! load "suddenly decreases" at beat 141 (Figure 5). A [`PhaseSchedule`] maps
//! the item index (the beat number) to a work multiplier so synthetic
//! workloads reproduce those shapes.

/// One contiguous phase of a workload: items `[start, end)` cost
/// `work_multiplier` times the base per-item work.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// First item index of the phase (inclusive).
    pub start: u64,
    /// One past the last item index of the phase (exclusive); `u64::MAX` for
    /// an open-ended final phase.
    pub end: u64,
    /// Multiplier applied to the base per-item work during this phase.
    pub work_multiplier: f64,
}

/// A piecewise-constant schedule of work multipliers over item indices.
#[derive(Debug, Clone, Default)]
pub struct PhaseSchedule {
    phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// A schedule with a single phase of multiplier 1 covering everything.
    pub fn uniform() -> Self {
        PhaseSchedule {
            phases: vec![Phase {
                start: 0,
                end: u64::MAX,
                work_multiplier: 1.0,
            }],
        }
    }

    /// Builds a schedule from `(start, multiplier)` breakpoints: each
    /// breakpoint opens a phase that lasts until the next breakpoint.
    /// Breakpoints must be given in increasing index order and include 0.
    pub fn from_breakpoints(breakpoints: &[(u64, f64)]) -> Self {
        assert!(!breakpoints.is_empty(), "at least one breakpoint required");
        assert_eq!(breakpoints[0].0, 0, "first breakpoint must start at item 0");
        let mut phases = Vec::with_capacity(breakpoints.len());
        for (i, &(start, mult)) in breakpoints.iter().enumerate() {
            if i > 0 {
                assert!(
                    start > breakpoints[i - 1].0,
                    "breakpoints must be strictly increasing"
                );
            }
            let end = breakpoints.get(i + 1).map(|&(s, _)| s).unwrap_or(u64::MAX);
            phases.push(Phase {
                start,
                end,
                work_multiplier: mult,
            });
        }
        PhaseSchedule { phases }
    }

    /// Work multiplier for item `index` (1.0 outside any declared phase).
    pub fn multiplier(&self, index: u64) -> f64 {
        self.phases
            .iter()
            .find(|p| index >= p.start && index < p.end)
            .map(|p| p.work_multiplier)
            .unwrap_or(1.0)
    }

    /// The declared phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of declared phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True if no phases are declared (multiplier is 1 everywhere).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schedule_is_always_one() {
        let schedule = PhaseSchedule::uniform();
        assert_eq!(schedule.multiplier(0), 1.0);
        assert_eq!(schedule.multiplier(1_000_000), 1.0);
        assert_eq!(schedule.len(), 1);
    }

    #[test]
    fn default_schedule_is_empty_and_one() {
        let schedule = PhaseSchedule::default();
        assert!(schedule.is_empty());
        assert_eq!(schedule.multiplier(42), 1.0);
    }

    #[test]
    fn breakpoints_define_piecewise_phases() {
        // Mirrors Figure 2's shape: slow, fast, slow.
        let schedule = PhaseSchedule::from_breakpoints(&[(0, 1.0), (100, 0.5), (330, 1.0)]);
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule.multiplier(0), 1.0);
        assert_eq!(schedule.multiplier(99), 1.0);
        assert_eq!(schedule.multiplier(100), 0.5);
        assert_eq!(schedule.multiplier(329), 0.5);
        assert_eq!(schedule.multiplier(330), 1.0);
        assert_eq!(schedule.multiplier(10_000), 1.0);
    }

    #[test]
    fn phases_accessor_exposes_bounds() {
        let schedule = PhaseSchedule::from_breakpoints(&[(0, 2.0), (10, 3.0)]);
        let phases = schedule.phases();
        assert_eq!(phases[0], Phase { start: 0, end: 10, work_multiplier: 2.0 });
        assert_eq!(phases[1].end, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one breakpoint")]
    fn empty_breakpoints_panic() {
        PhaseSchedule::from_breakpoints(&[]);
    }

    #[test]
    #[should_panic(expected = "must start at item 0")]
    fn first_breakpoint_must_be_zero() {
        PhaseSchedule::from_breakpoints(&[(5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn breakpoints_must_increase() {
        PhaseSchedule::from_breakpoints(&[(0, 1.0), (10, 2.0), (10, 3.0)]);
    }
}
