//! A resizable worker pool with a core-allocation gate.
//!
//! The external scheduler of the paper changes the number of cores an
//! application may use *while it runs*. In real-execution mode the simulated
//! machine enforces that with a [`ResizablePool`]: a fixed set of worker
//! threads drains a job queue, but at most `active_limit` workers may execute
//! jobs concurrently. Raising or lowering the limit has the same effect as
//! the paper's affinity changes, without tearing threads down.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    available: Condvar,
}

#[derive(Debug)]
struct GateState {
    limit: usize,
    running: usize,
}

impl Gate {
    fn new(limit: usize) -> Self {
        Gate {
            state: Mutex::new(GateState { limit, running: 0 }),
            available: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut state = self.state.lock();
        while state.running >= state.limit {
            self.available.wait(&mut state);
        }
        state.running += 1;
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.running -= 1;
        drop(state);
        self.available.notify_all();
    }

    fn set_limit(&self, limit: usize) {
        let mut state = self.state.lock();
        state.limit = limit.max(1);
        drop(state);
        self.available.notify_all();
    }

    fn limit(&self) -> usize {
        self.state.lock().limit
    }
}

#[derive(Debug, Default)]
struct Completion {
    state: Mutex<CompletionState>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct CompletionState {
    submitted: u64,
    completed: u64,
}

impl Completion {
    fn submitted(&self) {
        self.state.lock().submitted += 1;
    }

    fn completed(&self) {
        let mut state = self.state.lock();
        state.completed += 1;
        drop(state);
        self.done.notify_all();
    }

    fn wait_idle(&self) {
        let mut state = self.state.lock();
        while state.completed < state.submitted {
            self.done.wait(&mut state);
        }
    }
}

/// A thread pool whose effective parallelism can be changed at runtime.
#[derive(Debug)]
pub struct ResizablePool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    gate: Arc<Gate>,
    completion: Arc<Completion>,
    worker_count: usize,
}

impl ResizablePool {
    /// Creates a pool with `workers` threads, all initially allowed to run.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let gate = Arc::new(Gate::new(workers));
        let completion = Arc::new(Completion::default());
        let handles = (0..workers)
            .map(|i| {
                let receiver = receiver.clone();
                let gate = Arc::clone(&gate);
                let completion = Arc::clone(&completion);
                std::thread::Builder::new()
                    .name(format!("hb-sim-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            gate.acquire();
                            job();
                            gate.release();
                            completion.completed();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ResizablePool {
            sender: Some(sender),
            workers: handles,
            gate,
            completion,
            worker_count: workers,
        }
    }

    /// Number of worker threads (the machine's total cores).
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Sets how many workers may execute concurrently (the allocated cores).
    /// Values are clamped to `[1, worker_count]`.
    pub fn set_active_limit(&self, cores: usize) {
        self.gate.set_limit(cores.clamp(1, self.worker_count));
    }

    /// Current concurrency limit.
    pub fn active_limit(&self) -> usize {
        self.gate.limit()
    }

    /// Submits a job for asynchronous execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.completion.submitted();
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("pool workers have exited");
    }

    /// Blocks until every submitted job has completed.
    pub fn wait_idle(&self) {
        self.completion.wait_idle();
    }

    /// Submits a batch of jobs and waits for all of them (and any previously
    /// submitted work) to finish.
    pub fn run_batch(&self, jobs: Vec<Job>) {
        for job in jobs {
            self.completion.submitted();
            self.sender
                .as_ref()
                .expect("pool already shut down")
                .send(job)
                .expect("pool workers have exited");
        }
        self.wait_idle();
    }
}

impl Drop for ResizablePool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain remaining jobs and exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ResizablePool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn run_batch_waits_for_completion() {
        let pool = ResizablePool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..20)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn active_limit_bounds_concurrency() {
        let pool = ResizablePool::new(8);
        pool.set_active_limit(2);
        assert_eq!(pool.active_limit(), 2);

        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            pool.submit(move || {
                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                concurrent.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "no more than 2 jobs may run at once, saw {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn raising_limit_increases_concurrency() {
        let pool = ResizablePool::new(8);
        pool.set_active_limit(8);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            pool.submit(move || {
                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                concurrent.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert!(peak.load(Ordering::SeqCst) > 2, "full pool should exceed 2-way concurrency");
    }

    #[test]
    fn limits_are_clamped() {
        let pool = ResizablePool::new(4);
        pool.set_active_limit(0);
        assert_eq!(pool.active_limit(), 1);
        pool.set_active_limit(100);
        assert_eq!(pool.active_limit(), 4);
        assert_eq!(pool.worker_count(), 4);
    }

    #[test]
    fn zero_worker_request_gets_one() {
        let pool = ResizablePool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        pool.submit(move || {
            ran2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ResizablePool::new(3);
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No explicit wait: drop must drain the queue before joining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
