//! The simulated multicore machine.
//!
//! The paper's experiments ran on a dual-socket, eight-core Xeon X5460
//! server. [`Machine`] stands in for that testbed: it owns the virtual clock,
//! tracks how many cores are healthy, and (through [`CoreLedger`]) how cores
//! are divided between applications. Core failures — used by the fault-
//! tolerance experiment of Section 5.4, where cores "die" at frames 160, 320
//! and 480 — are injected through a [`FailurePlan`].

use std::collections::HashMap;

use heartbeats::ManualClock;

/// A simulated multicore machine with a virtual clock and failable cores.
#[derive(Debug, Clone)]
pub struct Machine {
    total_cores: usize,
    failed_cores: usize,
    clock: ManualClock,
}

impl Machine {
    /// Creates a machine with `total_cores` healthy cores and a fresh virtual
    /// clock at time zero.
    pub fn new(total_cores: usize) -> Self {
        Machine {
            total_cores: total_cores.max(1),
            failed_cores: 0,
            clock: ManualClock::new(),
        }
    }

    /// The paper's testbed: eight cores.
    pub fn paper_testbed() -> Self {
        Self::new(8)
    }

    /// Handle to the machine's virtual clock (cloning shares the time).
    pub fn clock(&self) -> ManualClock {
        self.clock.clone()
    }

    /// Number of cores the machine was built with.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// Number of cores currently marked as failed.
    pub fn failed_cores(&self) -> usize {
        self.failed_cores
    }

    /// Number of cores still able to execute work.
    pub fn working_cores(&self) -> usize {
        self.total_cores - self.failed_cores
    }

    /// Marks `n` additional cores as failed (saturating: at least one core is
    /// always considered working so simulations can terminate). Returns the
    /// number of cores actually failed.
    pub fn fail_cores(&mut self, n: usize) -> usize {
        let max_failable = self.total_cores.saturating_sub(1) - self.failed_cores;
        let failed = n.min(max_failable);
        self.failed_cores += failed;
        failed
    }

    /// Repairs all failed cores.
    pub fn restore_all(&mut self) {
        self.failed_cores = 0;
    }

    /// Clamps a requested allocation to what the machine can actually supply.
    pub fn effective_cores(&self, requested: usize) -> usize {
        requested.min(self.working_cores())
    }
}

/// A scheduled sequence of core failures expressed in beat indices, as in the
/// fault-tolerance experiment ("at frames 160, 320, and 480, a core failure
/// is simulated").
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<(u64, usize)>,
    next: usize,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails `cores` cores when the application reaches each beat index.
    /// Events must be in increasing beat order.
    pub fn at_beats(events: Vec<(u64, usize)>) -> Self {
        for pair in events.windows(2) {
            assert!(pair[0].0 < pair[1].0, "failure events must be ordered by beat");
        }
        FailurePlan { events, next: 0 }
    }

    /// The plan used by Figure 8: one core fails at beats 160, 320 and 480.
    pub fn paper_figure8() -> Self {
        Self::at_beats(vec![(160, 1), (320, 1), (480, 1)])
    }

    /// Returns how many cores should fail now that the application has
    /// completed `beat` beats, and advances the plan.
    pub fn due(&mut self, beat: u64) -> usize {
        let mut to_fail = 0;
        while self.next < self.events.len() && self.events[self.next].0 <= beat {
            to_fail += self.events[self.next].1;
            self.next += 1;
        }
        to_fail
    }

    /// True when every scheduled failure has been delivered.
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Total number of scheduled failure events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan contains no failures.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Tracks how the machine's cores are divided between named applications.
///
/// The external scheduler of Section 5.3 allocates cores to one application
/// at a time, but the paper argues the same mechanism lets the OS arbitrate
/// *between* heartbeat-enabled applications; the ledger provides that
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct CoreLedger {
    total: usize,
    allocations: HashMap<String, usize>,
}

impl CoreLedger {
    /// Creates a ledger over `total` cores.
    pub fn new(total: usize) -> Self {
        CoreLedger {
            total: total.max(1),
            allocations: HashMap::new(),
        }
    }

    /// Total number of cores managed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Cores not allocated to any application.
    pub fn free(&self) -> usize {
        self.total - self.allocated_total()
    }

    /// Sum of all allocations.
    pub fn allocated_total(&self) -> usize {
        self.allocations.values().sum()
    }

    /// Cores currently allocated to `app` (0 if unknown).
    pub fn allocated(&self, app: &str) -> usize {
        self.allocations.get(app).copied().unwrap_or(0)
    }

    /// Sets `app`'s allocation to `cores`, clamped so the total never exceeds
    /// the machine. Returns the allocation actually granted.
    pub fn set_allocation(&mut self, app: &str, cores: usize) -> usize {
        let others: usize = self
            .allocations
            .iter()
            .filter(|(name, _)| name.as_str() != app)
            .map(|(_, &c)| c)
            .sum();
        let granted = cores.min(self.total.saturating_sub(others));
        self.allocations.insert(app.to_string(), granted);
        granted
    }

    /// Releases all cores held by `app`.
    pub fn release(&mut self, app: &str) -> usize {
        self.allocations.remove(app).unwrap_or(0)
    }

    /// Applications with a non-zero allocation, sorted by name.
    pub fn apps(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .allocations
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Shrinks the ledger's capacity (e.g. after core failures), reducing the
    /// largest allocations first until the total fits. Returns the new total.
    pub fn shrink_total(&mut self, new_total: usize) -> usize {
        self.total = new_total.max(1);
        while self.allocated_total() > self.total {
            if let Some(name) = self
                .allocations
                .iter()
                .max_by_key(|(_, &c)| c)
                .map(|(name, _)| name.clone())
            {
                if let Some(c) = self.allocations.get_mut(&name) {
                    *c -= 1;
                }
            } else {
                break;
            }
        }
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heartbeats::Clock;

    #[test]
    fn machine_basics() {
        let machine = Machine::new(8);
        assert_eq!(machine.total_cores(), 8);
        assert_eq!(machine.working_cores(), 8);
        assert_eq!(machine.failed_cores(), 0);
        assert_eq!(machine.effective_cores(12), 8);
        assert_eq!(machine.effective_cores(3), 3);
    }

    #[test]
    fn machine_clock_is_shared() {
        let machine = Machine::new(4);
        let clock = machine.clock();
        clock.advance_ns(500);
        assert_eq!(machine.clock().now_ns(), 500);
    }

    #[test]
    fn machine_minimum_one_core() {
        let machine = Machine::new(0);
        assert_eq!(machine.total_cores(), 1);
    }

    #[test]
    fn paper_testbed_has_eight_cores() {
        assert_eq!(Machine::paper_testbed().total_cores(), 8);
    }

    #[test]
    fn fail_and_restore_cores() {
        let mut machine = Machine::new(8);
        assert_eq!(machine.fail_cores(3), 3);
        assert_eq!(machine.working_cores(), 5);
        assert_eq!(machine.effective_cores(8), 5);
        // Cannot fail the last core.
        assert_eq!(machine.fail_cores(10), 4);
        assert_eq!(machine.working_cores(), 1);
        machine.restore_all();
        assert_eq!(machine.working_cores(), 8);
    }

    #[test]
    fn failure_plan_fires_in_order() {
        let mut plan = FailurePlan::at_beats(vec![(160, 1), (320, 1), (480, 2)]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.due(100), 0);
        assert_eq!(plan.due(160), 1);
        assert_eq!(plan.due(161), 0, "an event fires only once");
        assert_eq!(plan.due(500), 3, "skipped events accumulate");
        assert!(plan.exhausted());
    }

    #[test]
    fn figure8_plan_matches_paper() {
        let mut plan = FailurePlan::paper_figure8();
        assert_eq!(plan.due(160), 1);
        assert_eq!(plan.due(320), 1);
        assert_eq!(plan.due(480), 1);
        assert!(plan.exhausted());
    }

    #[test]
    fn empty_plan_is_exhausted() {
        let mut plan = FailurePlan::none();
        assert!(plan.is_empty());
        assert!(plan.exhausted());
        assert_eq!(plan.due(1_000), 0);
    }

    #[test]
    #[should_panic(expected = "ordered by beat")]
    fn unordered_plan_panics() {
        FailurePlan::at_beats(vec![(300, 1), (100, 1)]);
    }

    #[test]
    fn ledger_allocates_and_clamps() {
        let mut ledger = CoreLedger::new(8);
        assert_eq!(ledger.total(), 8);
        assert_eq!(ledger.set_allocation("x264", 5), 5);
        assert_eq!(ledger.set_allocation("dedup", 5), 3, "clamped to free cores");
        assert_eq!(ledger.free(), 0);
        assert_eq!(ledger.allocated("x264"), 5);
        assert_eq!(ledger.allocated("unknown"), 0);
        assert_eq!(ledger.apps(), vec!["dedup".to_string(), "x264".to_string()]);
    }

    #[test]
    fn ledger_reallocation_replaces_previous() {
        let mut ledger = CoreLedger::new(8);
        ledger.set_allocation("a", 6);
        assert_eq!(ledger.set_allocation("a", 2), 2);
        assert_eq!(ledger.free(), 6);
    }

    #[test]
    fn ledger_release() {
        let mut ledger = CoreLedger::new(4);
        ledger.set_allocation("a", 3);
        assert_eq!(ledger.release("a"), 3);
        assert_eq!(ledger.release("a"), 0);
        assert_eq!(ledger.free(), 4);
    }

    #[test]
    fn ledger_shrink_reclaims_from_largest() {
        let mut ledger = CoreLedger::new(8);
        ledger.set_allocation("big", 6);
        ledger.set_allocation("small", 2);
        ledger.shrink_total(5);
        assert_eq!(ledger.total(), 5);
        assert!(ledger.allocated_total() <= 5);
        assert!(ledger.allocated("big") < 6);
        assert!(ledger.allocated("small") >= 1);
    }
}
