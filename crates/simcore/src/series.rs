//! Time-series and table containers used by the evaluation harness.
//!
//! Every figure in the paper is a set of series over beats (heart rate vs
//! beat number, allocated cores vs beat number, PSNR difference vs beat
//! number); every table is a set of labelled rows. These containers collect
//! those values during a simulation and render them as CSV or aligned text so
//! the bench binaries can print exactly what the paper reports.

use heartbeats::stats;

/// A named sequence of `(x, y)` points (typically beat index vs value).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Name used as the CSV column header.
    pub name: String,
    /// The points, in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> f64 {
        stats::mean(&self.ys())
    }

    /// Minimum y value, if any.
    pub fn min_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Maximum y value, if any.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// y value at the largest x not exceeding `x`, if any.
    pub fn value_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter().rfind(|&&(px, _)| px <= x)
            .map(|&(_, y)| y)
    }

    /// Fraction of points whose y lies in `[lo, hi]`.
    pub fn fraction_within(&self, lo: f64, hi: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let inside = self
            .points
            .iter()
            .filter(|&&(_, y)| y >= lo && y <= hi)
            .count();
        inside as f64 / self.points.len() as f64
    }
}

/// A bundle of series sharing the same x axis, renderable as CSV.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    /// Label of the shared x axis (e.g. `"beat"`).
    pub x_label: String,
    series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty set with the given x-axis label.
    pub fn new(x_label: impl Into<String>) -> Self {
        SeriesSet {
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The contained series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders the set as CSV. Rows are the union of all x values (sorted);
    /// missing values are left empty.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        xs.dedup();

        let mut out = String::new();
        out.push_str(&self.x_label);
        for series in &self.series {
            out.push(',');
            out.push_str(&series.name);
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format_number(x));
            for series in &self.series {
                out.push(',');
                if let Some(&(_, y)) = series
                    .points
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < f64::EPSILON)
                {
                    out.push_str(&format_number(y));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn format_number(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

/// A simple labelled table (used for Table 2 and summary outputs).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned, human-readable text.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basic_statistics() {
        let mut s = Series::new("rate");
        assert!(s.is_empty());
        for i in 0..5 {
            s.push(i as f64, (i * 10) as f64);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean_y(), 20.0);
        assert_eq!(s.min_y(), Some(0.0));
        assert_eq!(s.max_y(), Some(40.0));
        assert_eq!(s.ys(), vec![0.0, 10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn series_value_at_and_fraction() {
        let mut s = Series::new("cores");
        s.push(0.0, 1.0);
        s.push(10.0, 4.0);
        s.push(20.0, 7.0);
        assert_eq!(s.value_at(-1.0), None);
        assert_eq!(s.value_at(0.0), Some(1.0));
        assert_eq!(s.value_at(15.0), Some(4.0));
        assert_eq!(s.value_at(100.0), Some(7.0));
        assert!((s.fraction_within(2.0, 8.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Series::new("empty").fraction_within(0.0, 1.0), 0.0);
    }

    #[test]
    fn series_set_csv_output() {
        let mut set = SeriesSet::new("beat");
        let mut a = Series::new("heart_rate");
        a.push(1.0, 10.0);
        a.push(2.0, 12.5);
        let mut b = Series::new("cores");
        b.push(1.0, 4.0);
        set.add(a);
        set.add(b);
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "beat,heart_rate,cores");
        assert_eq!(lines[1], "1,10,4");
        assert_eq!(lines[2], "2,12.5000,");
        assert!(set.get("cores").is_some());
        assert!(set.get("missing").is_none());
        assert_eq!(set.series().len(), 2);
    }

    #[test]
    fn text_table_csv_and_aligned() {
        let mut table = TextTable::new(&["Benchmark", "Heartbeat Location", "Average Heart Rate"]);
        assert!(table.is_empty());
        table.add_row(vec![
            "blackscholes".into(),
            "Every 25000 options".into(),
            "561.03".into(),
        ]);
        table.add_row(vec!["bodytrack".into(), "Every frame".into(), "4.31".into()]);
        assert_eq!(table.len(), 2);
        let csv = table.to_csv();
        assert!(csv.starts_with("Benchmark,Heartbeat Location,Average Heart Rate\n"));
        assert!(csv.contains("bodytrack,Every frame,4.31"));
        let aligned = table.to_aligned();
        assert!(aligned.contains("blackscholes"));
        assert!(aligned.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn text_table_rejects_ragged_rows() {
        let mut table = TextTable::new(&["a", "b"]);
        table.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn format_number_integers_and_decimals() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(3.25), "3.2500");
    }
}
