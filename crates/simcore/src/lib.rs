//! # simcore — the simulation substrate for the Heartbeats evaluation
//!
//! The paper's experiments ran on an eight-core Xeon server with real PARSEC
//! binaries, a real x264 encoder, and Linux processor affinity. This crate
//! provides the deterministic, laptop-scale stand-ins that the reproduction
//! builds its experiments on:
//!
//! * [`Machine`] — a virtual-time multicore with failable cores
//!   ([`FailurePlan`]) and per-application core bookkeeping ([`CoreLedger`]).
//! * [`SpeedupModel`] ([`Amdahl`], [`Linear`], [`TableSpeedup`]) — how a
//!   workload's throughput scales with allocated cores.
//! * [`PhaseSchedule`] — piecewise-constant load phases that reproduce the
//!   input-dependent behaviour visible in Figures 2 and 5.
//! * [`ResizablePool`] — a real thread pool whose effective parallelism can
//!   be changed at runtime, for real-execution (non-virtual-time) runs.
//! * [`SplitMix64`] — deterministic randomness for workload generation.
//! * [`Series`], [`SeriesSet`], [`TextTable`] — containers the bench harness
//!   uses to emit the paper's figures and tables as CSV/text.
//!
//! The virtual clock itself is [`heartbeats::ManualClock`]; simulations share
//! one clock between the machine, the workloads and their heartbeats so that
//! heart rates computed by the core crate are exact.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod machine;
mod phases;
mod pool;
mod rng;
mod series;
mod speedup;

pub use machine::{CoreLedger, FailurePlan, Machine};
pub use phases::{Phase, PhaseSchedule};
pub use pool::ResizablePool;
pub use rng::SplitMix64;
pub use series::{Series, SeriesSet, TextTable};
pub use speedup::{Amdahl, Linear, SpeedupModel, TableSpeedup};

/// Re-export of the virtual clock used throughout the simulation.
pub use heartbeats::ManualClock as SimClock;
