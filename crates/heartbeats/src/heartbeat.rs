//! The [`Heartbeat`] producer handle — the Rust realization of the paper's
//! Heartbeat API (Table 1).
//!
//! | Paper function        | Rust equivalent                                     |
//! |-----------------------|-----------------------------------------------------|
//! | `HB_initialize`       | [`HeartbeatBuilder`](crate::HeartbeatBuilder)       |
//! | `HB_heartbeat`        | [`Heartbeat::heartbeat`], [`Heartbeat::beat`]       |
//! | `HB_current_rate`     | [`Heartbeat::current_rate`]                         |
//! | `HB_set_target_rate`  | [`Heartbeat::set_target_rate`]                      |
//! | `HB_get_target_min`   | [`Heartbeat::target_min`]                           |
//! | `HB_get_target_max`   | [`Heartbeat::target_max`]                           |
//! | `HB_get_history`      | [`Heartbeat::history`]                              |
//!
//! Every function accepts the paper's `local` flag through the `*_scoped`
//! variants taking a [`BeatScope`]; the plain methods operate on the global
//! (per-application) heartbeat stream.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use crate::backend::{Backend, BeatScope};
use crate::buffer::{AtomicRing, HistoryBuffer, MutexRing};
use crate::clock::SharedClock;
use crate::record::{BeatThreadId, HeartbeatRecord, Tag};
use crate::target::{TargetRate, TargetStatus};
use crate::window::{self, WindowStats};
use crate::Result;

/// Which ring-buffer implementation backs the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferKind {
    /// Lock-free per-slot seqlock ring (default; beats never block).
    #[default]
    Atomic,
    /// Mutex-protected ring (mirrors the reference C implementation).
    Mutex,
}

impl BufferKind {
    pub(crate) fn build(self, capacity: usize) -> Arc<dyn HistoryBuffer> {
        match self {
            BufferKind::Atomic => Arc::new(AtomicRing::new(capacity)),
            BufferKind::Mutex => Arc::new(MutexRing::new(capacity)),
        }
    }
}

/// Process-wide allocator of dense thread ids.
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static CACHED_THREAD_ID: std::cell::Cell<Option<u32>> = const { std::cell::Cell::new(None) };
}

/// Returns the dense id of the calling thread, allocating one on first use.
pub fn current_thread_id() -> BeatThreadId {
    CACHED_THREAD_ID.with(|cell| {
        if let Some(id) = cell.get() {
            BeatThreadId(id)
        } else {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            BeatThreadId(id)
        }
    })
}

/// Process-wide allocator of unique heartbeat-instance ids (cache keys for
/// the per-thread hot-path cache; never reused, so a recycled allocation
/// can't alias a dead instance's cache entry).
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// State shared between all clones of a [`Heartbeat`] and its readers.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) name: String,
    pub(crate) clock: SharedClock,
    pub(crate) global: Arc<dyn HistoryBuffer>,
    pub(crate) locals: RwLock<HashMap<u32, Arc<dyn HistoryBuffer>>>,
    pub(crate) default_window: usize,
    pub(crate) buffer_capacity: usize,
    pub(crate) buffer_kind: BufferKind,
    pub(crate) target: TargetRate,
    pub(crate) backends: RwLock<Vec<Arc<dyn Backend>>>,
    /// Bumped (release) after every backend-list change; beat threads
    /// revalidate their cached snapshot with one acquire load, so the
    /// steady-state hot path never touches the `backends` lock.
    pub(crate) backends_epoch: AtomicU64,
    /// Unique id keying the per-thread hot-path cache.
    pub(crate) instance_id: u64,
}

impl Shared {
    pub(crate) fn next_instance_id() -> u64 {
        NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed)
    }
}

impl Shared {
    pub(crate) fn local_buffer(&self, thread: BeatThreadId) -> Arc<dyn HistoryBuffer> {
        if let Some(buffer) = self.locals.read().get(&thread.index()) {
            return Arc::clone(buffer);
        }
        let mut locals = self.locals.write();
        Arc::clone(
            locals
                .entry(thread.index())
                .or_insert_with(|| self.buffer_kind.build(self.buffer_capacity)),
        )
    }

    pub(crate) fn effective_window(&self, window: usize) -> usize {
        // Window 0 means "use the default registered at initialization";
        // larger-than-retained requests are silently clipped, as permitted by
        // the paper.
        let requested = if window == 0 {
            self.default_window
        } else {
            window
        };
        requested.min(self.buffer_capacity).max(2)
    }

    pub(crate) fn rate_over(&self, buffer: &dyn HistoryBuffer, window: usize) -> Option<f64> {
        let records = buffer.last_n(self.effective_window(window));
        window::windowed_rate(&records)
    }

    pub(crate) fn notify_target(&self, min_bps: f64, max_bps: f64) {
        let backends = self.backends.read();
        for backend in backends.iter() {
            backend.on_target_change(&self.name, min_bps, max_bps);
        }
    }
}

/// Per-thread, per-instance hot-path cache: the backend snapshot (validated
/// by epoch) and the calling thread's local history buffer.
///
/// `Heartbeat::beat` used to take the `backends` read lock on every beat and
/// the `locals` read lock on every local beat; under many producer threads
/// those locks are the only shared mutable state on the path. The cache
/// removes both: a steady-state beat performs one thread-local lookup and
/// one relaxed/acquire atomic load, touching a lock only when the backend
/// list actually changed (or on a thread's first local beat).
struct HotEntry {
    /// [`Shared::instance_id`] this entry belongs to.
    instance: u64,
    /// Liveness probe so dead instances can be purged from the cache.
    keepalive: Weak<Shared>,
    /// Epoch at which `backends` was snapshotted (0 = never).
    epoch: u64,
    /// Snapshot of the backend list; shared so callbacks run without
    /// holding the cache borrowed (a backend may itself produce beats).
    backends: Arc<[Arc<dyn Backend>]>,
    /// The calling thread's local history buffer, resolved once.
    local: Option<Arc<dyn HistoryBuffer>>,
}

/// Bound on cached instances per thread; oldest entries are discarded
/// beyond it (correctness is unaffected — a miss just re-resolves).
const HOT_CACHE_MAX: usize = 32;

/// Dead entries are purged at least this often (in beats), so a dropped
/// `Heartbeat`'s backends are released by threads that keep producing
/// (backends may own sockets and flusher threads that run until dropped).
const HOT_CACHE_PURGE_EVERY: u32 = 1024;

/// Per-thread hot cache: the entries plus a purge countdown.
#[derive(Default)]
struct HotCache {
    entries: Vec<HotEntry>,
    beats_since_purge: u32,
}

thread_local! {
    static HOT_CACHE: RefCell<HotCache> = RefCell::new(HotCache::default());
}

/// Finds (or creates) this thread's cache entry for `shared`, periodically
/// purging entries whose instance has been dropped.
fn hot_entry_index(cache: &mut HotCache, shared: &Arc<Shared>) -> usize {
    cache.beats_since_purge += 1;
    if cache.beats_since_purge >= HOT_CACHE_PURGE_EVERY {
        cache.beats_since_purge = 0;
        cache.entries.retain(|e| e.keepalive.strong_count() > 0);
    }
    if let Some(index) = cache
        .entries
        .iter()
        .position(|e| e.instance == shared.instance_id)
    {
        return index;
    }
    cache.entries.retain(|e| e.keepalive.strong_count() > 0);
    if cache.entries.len() >= HOT_CACHE_MAX {
        cache.entries.remove(0);
    }
    cache.entries.push(HotEntry {
        instance: shared.instance_id,
        keepalive: Arc::downgrade(shared),
        epoch: 0,
        backends: Arc::from(Vec::new().into_boxed_slice()),
        local: None,
    });
    cache.entries.len() - 1
}

/// A heartbeat producer for one application.
///
/// `Heartbeat` is cheap to clone; clones share the same history, target and
/// backends, so worker threads can each hold a handle. Producing a beat is
/// allocation-free and, with the default [`BufferKind::Atomic`] buffer,
/// lock-free: the backend list and the thread's local buffer are cached
/// per thread behind an atomic epoch, so steady-state beats touch no locks.
///
/// # Example
///
/// ```
/// use heartbeats::{HeartbeatBuilder, BeatScope};
///
/// let hb = HeartbeatBuilder::new("video-encoder")
///     .window(20)
///     .build()
///     .unwrap();
/// hb.set_target_rate(30.0, 35.0).unwrap();
///
/// for _frame in 0..100 {
///     // ... encode the frame ...
///     hb.heartbeat();
/// }
/// if let Some(rate) = hb.current_rate(0) {
///     println!("current heart rate: {rate:.1} beats/s");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Heartbeat {
    pub(crate) shared: Arc<Shared>,
}

impl Heartbeat {
    pub(crate) fn from_shared(shared: Arc<Shared>) -> Self {
        Heartbeat { shared }
    }

    /// The application name given at construction.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The default window registered at initialization (`HB_initialize`).
    pub fn default_window(&self) -> usize {
        self.shared.default_window
    }

    /// Number of records retained per history buffer.
    pub fn buffer_capacity(&self) -> usize {
        self.shared.buffer_capacity
    }

    /// Registers a global heartbeat with no tag. Returns the beat's sequence
    /// number in the global stream.
    #[inline]
    pub fn heartbeat(&self) -> u64 {
        self.beat(Tag::NONE, BeatScope::Global)
    }

    /// Registers a global heartbeat carrying `tag`.
    #[inline]
    pub fn heartbeat_tagged(&self, tag: Tag) -> u64 {
        self.beat(tag, BeatScope::Global)
    }

    /// Registers a heartbeat in the calling thread's private (local) stream.
    #[inline]
    pub fn heartbeat_local(&self, tag: Tag) -> u64 {
        self.beat(tag, BeatScope::Local)
    }

    /// Full-control beat: `HB_heartbeat(tag, local)` from the paper.
    pub fn beat(&self, tag: Tag, scope: BeatScope) -> u64 {
        let thread = current_thread_id();
        let timestamp_ns = self.shared.clock.now_ns();
        let (seq, backends) = HOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let entry = {
                let index = hot_entry_index(&mut cache, &self.shared);
                &mut cache.entries[index]
            };
            let seq = match scope {
                BeatScope::Global => self.shared.global.push(timestamp_ns, tag, thread),
                BeatScope::Local => entry
                    .local
                    .get_or_insert_with(|| self.shared.local_buffer(thread))
                    .push(timestamp_ns, tag, thread),
            };
            let epoch = self.shared.backends_epoch.load(Ordering::Acquire);
            if entry.epoch != epoch {
                entry.backends = Arc::from(self.shared.backends.read().clone().into_boxed_slice());
                entry.epoch = epoch;
            }
            (seq, Arc::clone(&entry.backends))
        });
        if !backends.is_empty() {
            let record = HeartbeatRecord::new(seq, timestamp_ns, tag, thread);
            // The cache borrow is released here: a backend that itself
            // produces beats (into another heartbeat) re-enters safely.
            for backend in backends.iter() {
                backend.on_beat(&self.shared.name, &record, scope);
            }
        }
        seq
    }

    /// Average heart rate over the last `window` global beats, in beats/s.
    ///
    /// Passing `0` uses the default window from initialization. Windows larger
    /// than the retained history are silently clipped. Returns `None` until at
    /// least two beats have been produced.
    pub fn current_rate(&self, window: usize) -> Option<f64> {
        self.shared.rate_over(self.shared.global.as_ref(), window)
    }

    /// Average heart rate over the calling thread's local beats.
    pub fn current_rate_local(&self, window: usize) -> Option<f64> {
        let thread = current_thread_id();
        let buffer = self.shared.local_buffer(thread);
        self.shared.rate_over(buffer.as_ref(), window)
    }

    /// Lifetime average heart rate of the global stream: total beats divided
    /// by the time elapsed since the first beat. This is the "Average Heart
    /// Rate" column of Table 2 in the paper.
    pub fn global_average_rate(&self) -> Option<f64> {
        let total = self.shared.global.total();
        let first = self.shared.global.first_timestamp_ns()?;
        window::global_rate(total, first, self.shared.clock.now_ns())
    }

    /// Interval statistics over the last `window` global beats.
    pub fn window_stats(&self, window: usize) -> Option<WindowStats> {
        let records = self
            .shared
            .global
            .last_n(self.shared.effective_window(window));
        window::window_stats(&records)
    }

    /// Declares the application's target heart-rate range
    /// (`HB_set_target_rate`).
    pub fn set_target_rate(&self, min_bps: f64, max_bps: f64) -> Result<()> {
        self.shared.target.set(min_bps, max_bps)?;
        self.shared.notify_target(min_bps, max_bps);
        Ok(())
    }

    /// Minimum target rate (`HB_get_target_min`); negative if unset.
    pub fn target_min(&self) -> f64 {
        self.shared.target.min_bps()
    }

    /// Maximum target rate (`HB_get_target_max`); negative if unset.
    pub fn target_max(&self) -> f64 {
        self.shared.target.max_bps()
    }

    /// The declared target window, if any.
    pub fn target(&self) -> Option<(f64, f64)> {
        self.shared.target.range()
    }

    /// Classifies the current windowed rate against the declared target.
    pub fn target_status(&self, window: usize) -> TargetStatus {
        match self.current_rate(window) {
            None => TargetStatus::NoTarget,
            Some(rate) => self.shared.target.classify(rate),
        }
    }

    /// Returns the last `n` global heartbeats in chronological order
    /// (`HB_get_history`). Fewer records are returned if fewer are retained.
    pub fn history(&self, n: usize) -> Vec<HeartbeatRecord> {
        self.shared.global.last_n(n)
    }

    /// Returns the last `n` heartbeats of the calling thread's local stream.
    pub fn history_local(&self, n: usize) -> Vec<HeartbeatRecord> {
        let thread = current_thread_id();
        self.shared.local_buffer(thread).last_n(n)
    }

    /// Total number of global beats ever produced.
    pub fn total_beats(&self) -> u64 {
        self.shared.global.total()
    }

    /// Total number of local beats produced by the calling thread.
    pub fn total_local_beats(&self) -> u64 {
        let thread = current_thread_id();
        self.shared.local_buffer(thread).total()
    }

    /// Timestamp (ns) of the most recent global beat, if any.
    pub fn last_beat_ns(&self) -> Option<u64> {
        self.shared.global.latest().map(|r| r.timestamp_ns)
    }

    /// Current time on the heartbeat's clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.shared.clock.now_ns()
    }

    /// Attaches a mirroring backend (file, shared memory, in-memory probe).
    pub fn add_backend(&self, backend: Arc<dyn Backend>) {
        self.shared.backends.write().push(backend);
        // Invalidate every thread's cached snapshot; the release pairs with
        // the acquire load in `beat`.
        self.shared.backends_epoch.fetch_add(1, Ordering::Release);
    }

    /// Sums the mirroring counters of all attached backends, making shed
    /// beats (backpressure) observable from the producer side.
    pub fn backend_stats(&self) -> crate::BackendStats {
        let backends = self.shared.backends.read();
        let mut total = crate::BackendStats::default();
        for backend in backends.iter() {
            let stats = backend.stats();
            total.mirrored += stats.mirrored;
            total.dropped += stats.dropped;
        }
        total
    }

    /// Flushes all attached backends.
    pub fn flush(&self) -> Result<()> {
        let backends = self.shared.backends.read();
        for backend in backends.iter() {
            backend.flush()?;
        }
        Ok(())
    }

    /// Creates a read-only observer handle sharing this heartbeat's state.
    pub fn reader(&self) -> crate::HeartbeatReader {
        crate::HeartbeatReader::from_shared(Arc::clone(&self.shared))
    }

    /// Ids of threads that have produced local beats so far.
    pub fn local_thread_ids(&self) -> Vec<BeatThreadId> {
        let mut ids: Vec<BeatThreadId> = self
            .shared
            .locals
            .read()
            .keys()
            .map(|&id| BeatThreadId(id))
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::builder::HeartbeatBuilder;
    use crate::clock::ManualClock;

    fn manual_heartbeat(window: usize) -> (Heartbeat, ManualClock) {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("test-app")
            .window(window)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        (hb, clock)
    }

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        let a = current_thread_id();
        let b = current_thread_id();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_ids_differ_across_threads() {
        let main_id = current_thread_id();
        let other = std::thread::spawn(current_thread_id).join().unwrap();
        assert_ne!(main_id, other);
    }

    #[test]
    fn heartbeat_assigns_sequential_numbers() {
        let (hb, clock) = manual_heartbeat(10);
        for i in 0..5 {
            clock.advance_ns(1_000_000);
            assert_eq!(hb.heartbeat(), i);
        }
        assert_eq!(hb.total_beats(), 5);
    }

    #[test]
    fn current_rate_uses_default_window_for_zero() {
        let (hb, clock) = manual_heartbeat(4);
        // 10 beats, 100 ms apart -> 10 beats/s regardless of window, but use
        // an accelerating tail to distinguish the windows.
        for _ in 0..10 {
            clock.advance_ns(100_000_000);
            hb.heartbeat();
        }
        for _ in 0..4 {
            clock.advance_ns(10_000_000); // 100 beats/s tail
            hb.heartbeat();
        }
        let default_rate = hb.current_rate(0).unwrap();
        let wide_rate = hb.current_rate(14).unwrap();
        assert!(default_rate > 50.0, "default (4-beat) window sees the fast tail");
        assert!(wide_rate < default_rate);
    }

    #[test]
    fn current_rate_none_before_two_beats() {
        let (hb, clock) = manual_heartbeat(10);
        assert_eq!(hb.current_rate(0), None);
        clock.advance_ns(1);
        hb.heartbeat();
        assert_eq!(hb.current_rate(0), None);
        clock.advance_ns(1_000_000_000);
        hb.heartbeat();
        assert!(hb.current_rate(0).is_some());
    }

    #[test]
    fn global_average_rate_matches_uniform_beats() {
        let (hb, clock) = manual_heartbeat(10);
        clock.advance_ns(0);
        for _ in 0..30 {
            clock.advance_ns(100_000_000); // 10 beats/s
            hb.heartbeat();
        }
        // 30 beats over 3.0 s measured from the first beat at t=0.1 to now
        // (t=3.0): 30 / 2.9 ≈ 10.34.
        let rate = hb.global_average_rate().unwrap();
        assert!((rate - 30.0 / 2.9).abs() < 1e-9);
    }

    #[test]
    fn targets_roundtrip_and_classify() {
        let (hb, clock) = manual_heartbeat(5);
        assert!(hb.target().is_none());
        assert!(hb.target_min() < 0.0);
        hb.set_target_rate(30.0, 35.0).unwrap();
        assert_eq!(hb.target(), Some((30.0, 35.0)));
        assert_eq!(hb.target_min(), 30.0);
        assert_eq!(hb.target_max(), 35.0);

        // 10 beats/s is below the 30..35 target.
        for _ in 0..6 {
            clock.advance_ns(100_000_000);
            hb.heartbeat();
        }
        assert_eq!(hb.target_status(0), TargetStatus::BelowTarget);
    }

    #[test]
    fn invalid_target_is_rejected() {
        let (hb, _clock) = manual_heartbeat(5);
        assert!(hb.set_target_rate(10.0, 5.0).is_err());
        assert!(hb.target().is_none());
    }

    #[test]
    fn history_returns_chronological_records_with_tags() {
        let (hb, clock) = manual_heartbeat(10);
        for i in 0..8u64 {
            clock.advance_ns(1_000);
            hb.heartbeat_tagged(Tag::new(i * 7));
        }
        let hist = hb.history(3);
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].tag, Tag::new(5 * 7));
        assert_eq!(hist[2].tag, Tag::new(7 * 7));
        assert!(hist[0].timestamp_ns < hist[2].timestamp_ns);
    }

    #[test]
    fn local_beats_are_per_thread() {
        let (hb, clock) = manual_heartbeat(10);
        clock.advance_ns(1_000);
        hb.heartbeat_local(Tag::new(1));
        hb.heartbeat_local(Tag::new(2));
        assert_eq!(hb.total_local_beats(), 2);
        assert_eq!(hb.total_beats(), 0, "local beats do not count globally");

        let hb2 = hb.clone();
        let other_count = std::thread::spawn(move || {
            hb2.heartbeat_local(Tag::new(3));
            hb2.total_local_beats()
        })
        .join()
        .unwrap();
        assert_eq!(other_count, 1, "other thread sees only its own beats");
        assert_eq!(hb.total_local_beats(), 2);
        assert_eq!(hb.local_thread_ids().len(), 2);
    }

    #[test]
    fn clones_share_state() {
        let (hb, clock) = manual_heartbeat(10);
        let clone = hb.clone();
        clock.advance_ns(1_000);
        hb.heartbeat();
        clone.heartbeat();
        assert_eq!(hb.total_beats(), 2);
        assert_eq!(clone.total_beats(), 2);
        clone.set_target_rate(1.0, 2.0).unwrap();
        assert_eq!(hb.target(), Some((1.0, 2.0)));
    }

    #[test]
    fn backends_receive_beats_and_targets() {
        let (hb, clock) = manual_heartbeat(10);
        let probe = Arc::new(MemoryBackend::new());
        hb.add_backend(probe.clone());
        clock.advance_ns(500);
        hb.heartbeat_tagged(Tag::new(9));
        hb.heartbeat_local(Tag::new(10));
        hb.set_target_rate(5.0, 6.0).unwrap();
        hb.flush().unwrap();

        let beats = probe.beats();
        assert_eq!(beats.len(), 2);
        assert_eq!(beats[0].scope, BeatScope::Global);
        assert_eq!(beats[0].record.tag, Tag::new(9));
        assert_eq!(beats[1].scope, BeatScope::Local);
        assert_eq!(probe.target_changes(), vec![("test-app".to_string(), 5.0, 6.0)]);
    }

    #[test]
    fn backend_stats_aggregate_across_backends() {
        let (hb, clock) = manual_heartbeat(10);
        hb.add_backend(Arc::new(MemoryBackend::new()));
        hb.add_backend(Arc::new(MemoryBackend::with_capacity(2)));
        for _ in 0..5 {
            clock.advance_ns(1_000);
            hb.heartbeat();
        }
        let stats = hb.backend_stats();
        // Unbounded backend mirrored 5; bounded one mirrored 2 and shed 3.
        assert_eq!(stats.mirrored, 7);
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.offered(), 10);
    }

    #[test]
    fn window_stats_reports_intervals() {
        let (hb, clock) = manual_heartbeat(10);
        for _ in 0..5 {
            clock.advance_ns(2_000_000);
            hb.heartbeat();
        }
        let stats = hb.window_stats(0).unwrap();
        assert_eq!(stats.beats, 5);
        assert_eq!(stats.min_interval_ns, 2_000_000);
        assert_eq!(stats.max_interval_ns, 2_000_000);
        assert!((stats.rate_bps - 500.0).abs() < 1e-6);
    }

    #[test]
    fn mutex_buffer_kind_behaves_identically() {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("mutex-app")
            .window(5)
            .buffer_kind(BufferKind::Mutex)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        for _ in 0..10 {
            clock.advance_ns(50_000_000);
            hb.heartbeat();
        }
        assert_eq!(hb.total_beats(), 10);
        assert!((hb.current_rate(0).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn last_beat_and_now() {
        let (hb, clock) = manual_heartbeat(5);
        assert_eq!(hb.last_beat_ns(), None);
        clock.advance_ns(1_234);
        hb.heartbeat();
        assert_eq!(hb.last_beat_ns(), Some(1_234));
        clock.advance_ns(766);
        assert_eq!(hb.now_ns(), 2_000);
    }

    #[test]
    fn backend_added_mid_stream_is_picked_up() {
        // The hot-path cache snapshots the backend list per thread; adding a
        // backend must invalidate those snapshots via the epoch.
        let (hb, clock) = manual_heartbeat(10);
        let early = Arc::new(MemoryBackend::new());
        hb.add_backend(early.clone());
        clock.advance_ns(1_000);
        hb.heartbeat(); // warm this thread's cache with [early]
        let late = Arc::new(MemoryBackend::new());
        hb.add_backend(late.clone());
        clock.advance_ns(1_000);
        hb.heartbeat();
        assert_eq!(early.len(), 2, "original backend saw both beats");
        assert_eq!(late.len(), 1, "new backend sees beats after attach");
    }

    #[test]
    fn backend_added_mid_stream_reaches_other_threads() {
        let (hb, clock) = manual_heartbeat(64);
        let probe = Arc::new(MemoryBackend::new());
        let worker = {
            let hb = hb.clone();
            let clock = clock.clone();
            let probe = Arc::clone(&probe);
            std::thread::spawn(move || {
                // Warm the worker's cache with an empty backend list...
                for _ in 0..100 {
                    clock.advance_ns(10);
                    hb.heartbeat();
                }
                // ...then wait for the main thread to attach the probe.
                while probe.is_empty() {
                    clock.advance_ns(10);
                    hb.heartbeat();
                    std::thread::yield_now();
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        hb.add_backend(Arc::clone(&probe) as Arc<dyn Backend>);
        worker.join().unwrap();
        assert!(!probe.is_empty(), "worker thread observed the new backend");
    }

    #[test]
    fn local_beats_use_cached_buffer_consistently() {
        // The thread-local buffer cache must resolve to the same buffer the
        // shared map holds, so readers see cached-path beats.
        let (hb, clock) = manual_heartbeat(10);
        for i in 0..50u64 {
            clock.advance_ns(1_000);
            hb.heartbeat_local(Tag::new(i));
        }
        assert_eq!(hb.total_local_beats(), 50);
        let history = hb.history_local(5);
        assert_eq!(history.len(), 5);
        assert_eq!(history[4].tag, Tag::new(49));
        // The shared map agrees (reader path, not the cache).
        assert_eq!(hb.local_thread_ids().len(), 1);
    }

    #[test]
    fn dropped_heartbeat_backends_are_released_by_continuing_threads() {
        // The hot cache snapshots backend Arcs; once the heartbeat is
        // dropped, a thread that keeps beating (on anything) must release
        // them within the purge interval — backends may own sockets and
        // threads that live until dropped.
        let clock = ManualClock::new();
        let probe: Arc<MemoryBackend> = Arc::new(MemoryBackend::new());
        let weak = Arc::downgrade(&probe);
        let hb = HeartbeatBuilder::new("short-lived")
            .window(4)
            .clock(Arc::new(clock.clone()))
            .backend(probe)
            .build()
            .unwrap();
        clock.advance_ns(1_000);
        hb.heartbeat(); // snapshot [probe] into this thread's cache
        drop(hb);
        assert!(
            weak.upgrade().is_some(),
            "cache still pins the backend right after the drop"
        );
        let other = HeartbeatBuilder::new("long-lived")
            .window(4)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        for _ in 0..2 * super::HOT_CACHE_PURGE_EVERY {
            clock.advance_ns(1_000);
            other.heartbeat();
        }
        assert!(
            weak.upgrade().is_none(),
            "purge must release the dead instance's backends"
        );
    }

    #[test]
    fn many_instances_cycle_through_the_hot_cache() {
        // More live instances than HOT_CACHE_MAX on one thread: eviction and
        // re-resolution must stay correct.
        let clock = ManualClock::new();
        let heartbeats: Vec<Heartbeat> = (0..40)
            .map(|i| {
                HeartbeatBuilder::new(format!("app-{i}"))
                    .window(4)
                    .clock(Arc::new(clock.clone()))
                    .build()
                    .unwrap()
            })
            .collect();
        for round in 0..3 {
            for hb in &heartbeats {
                clock.advance_ns(1_000);
                hb.heartbeat();
                hb.heartbeat_local(Tag::new(round));
            }
        }
        for hb in &heartbeats {
            assert_eq!(hb.total_beats(), 3);
            assert_eq!(hb.total_local_beats(), 3);
        }
    }

    #[test]
    fn concurrent_global_beats_from_many_threads() {
        let (hb, clock) = manual_heartbeat(64);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let hb = hb.clone();
                let clock = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        clock.advance_ns(10);
                        hb.heartbeat();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hb.total_beats(), 4_000);
        assert!(hb.current_rate(0).is_some());
    }
}
