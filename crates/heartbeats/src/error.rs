//! Error types for the Application Heartbeats framework.

use std::fmt;

/// Errors produced by the Heartbeats framework.
///
/// The API is deliberately small and most operations are infallible (issuing a
/// heartbeat never fails), so errors are confined to configuration, lookup and
/// backend I/O.
#[derive(Debug)]
pub enum HeartbeatError {
    /// A configuration parameter was invalid (e.g. a zero window size or a
    /// target range with `min > max`).
    InvalidConfig(String),
    /// A named application was not found in the registry.
    NotRegistered(String),
    /// An application with the same name is already registered.
    AlreadyRegistered(String),
    /// The requested history is larger than what the implementation retains.
    /// Carries the number of records actually available.
    HistoryTruncated(usize),
    /// A mirroring backend (file, shared memory, ...) failed.
    Backend(String),
    /// An I/O error from a file- or shm-based backend.
    Io(std::io::Error),
}

impl fmt::Display for HeartbeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeartbeatError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HeartbeatError::NotRegistered(name) => {
                write!(f, "application `{name}` is not registered")
            }
            HeartbeatError::AlreadyRegistered(name) => {
                write!(f, "application `{name}` is already registered")
            }
            HeartbeatError::HistoryTruncated(avail) => {
                write!(f, "requested more history than retained ({avail} available)")
            }
            HeartbeatError::Backend(msg) => write!(f, "backend error: {msg}"),
            HeartbeatError::Io(err) => write!(f, "I/O error: {err}"),
        }
    }
}

impl std::error::Error for HeartbeatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HeartbeatError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HeartbeatError {
    fn from(err: std::io::Error) -> Self {
        HeartbeatError::Io(err)
    }
}

/// Convenience result alias used across the framework.
pub type Result<T> = std::result::Result<T, HeartbeatError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_config() {
        let e = HeartbeatError::InvalidConfig("window must be > 0".into());
        assert!(e.to_string().contains("window must be > 0"));
    }

    #[test]
    fn display_not_registered() {
        let e = HeartbeatError::NotRegistered("x264".into());
        assert!(e.to_string().contains("x264"));
        assert!(e.to_string().contains("not registered"));
    }

    #[test]
    fn display_already_registered() {
        let e = HeartbeatError::AlreadyRegistered("dedup".into());
        assert!(e.to_string().contains("already registered"));
    }

    #[test]
    fn display_history_truncated() {
        let e = HeartbeatError::HistoryTruncated(17);
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let e: HeartbeatError = io.into();
        assert!(matches!(e, HeartbeatError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("missing file"));
    }

    #[test]
    fn backend_error_has_no_source() {
        let e = HeartbeatError::Backend("shm unlink failed".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
