//! Mirroring backends.
//!
//! Every heartbeat is always recorded in the in-memory history buffers; a
//! [`Backend`] additionally mirrors the stream somewhere an *external*
//! observer can reach it — a file (the paper's reference implementation
//! writes one record per line to a per-application file) or a shared-memory
//! segment (`hb-shm` crate). Backends also receive target-rate changes so an
//! external scheduler can read the application's goals.

use crate::record::HeartbeatRecord;
use crate::Result;

/// Whether a mirrored beat was a global (per-application) or local
/// (per-thread) heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeatScope {
    /// Counted against the application-wide history.
    Global,
    /// Counted only against the issuing thread's private history.
    Local,
}

/// Mirroring counters exposed uniformly by every backend.
///
/// Backends must never block or fail the application's hot path, which means
/// a slow or broken medium (full disk, dead collector, bounded queue) forces
/// them to shed beats instead. These counters make that backpressure
/// observable the same way across the file, shared-memory, in-memory and
/// network backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Beats successfully handed to the underlying medium.
    pub mirrored: u64,
    /// Beats discarded because the medium could not keep up (bounded queue
    /// overflow, failed write, dead connection).
    pub dropped: u64,
}

impl BackendStats {
    /// Total beats offered to the backend (mirrored + dropped).
    pub fn offered(&self) -> u64 {
        self.mirrored + self.dropped
    }
}

/// A sink that mirrors heartbeat activity for external observers.
///
/// Implementations must be cheap: `on_beat` is called from the application's
/// hot path. Backends that perform I/O should buffer internally and expose
/// [`Backend::flush`].
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Called for every heartbeat after it has been recorded in memory.
    fn on_beat(&self, app: &str, record: &HeartbeatRecord, scope: BeatScope);

    /// Called when the application changes its target heart-rate range.
    fn on_target_change(&self, _app: &str, _min_bps: f64, _max_bps: f64) {}

    /// Flushes any buffered state to the underlying medium.
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Mirroring counters. Backends that cannot drop report the default
    /// (all zeros with `mirrored` tracking beats if they count them).
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }

    /// Beats this backend has discarded under backpressure. Shorthand for
    /// `stats().dropped`.
    fn dropped(&self) -> u64 {
        self.stats().dropped
    }
}

/// A backend that discards everything. Useful as a placeholder and in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBackend;

impl Backend for NullBackend {
    fn on_beat(&self, _app: &str, _record: &HeartbeatRecord, _scope: BeatScope) {}
}

/// A backend that stores mirrored events in memory. Primarily used in tests
/// and by in-process observers that want the full uncompacted stream.
///
/// By default the stream is unbounded; [`MemoryBackend::with_capacity`]
/// bounds it, dropping the oldest events and counting the drops, which gives
/// tests a deterministic stand-in for the backpressure behaviour of the I/O
/// backends.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    events: parking_lot::Mutex<std::collections::VecDeque<MirroredBeat>>,
    targets: parking_lot::Mutex<Vec<(String, f64, f64)>>,
    capacity: Option<usize>,
    mirrored: std::sync::atomic::AtomicU64,
    dropped: std::sync::atomic::AtomicU64,
}

/// A mirrored heartbeat as captured by [`MemoryBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirroredBeat {
    /// Application name the beat belongs to.
    pub app: String,
    /// The heartbeat record.
    pub record: HeartbeatRecord,
    /// Global or local.
    pub scope: BeatScope,
}

impl MemoryBackend {
    /// Creates an empty, unbounded memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory backend retaining at most `capacity` beats; older
    /// beats are dropped (and counted) once the bound is reached.
    pub fn with_capacity(capacity: usize) -> Self {
        MemoryBackend {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// Number of mirrored beats.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no beats were mirrored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a copy of all mirrored beats, oldest first.
    pub fn beats(&self) -> Vec<MirroredBeat> {
        self.events.lock().iter().cloned().collect()
    }

    /// Returns all recorded target changes as `(app, min, max)` tuples.
    pub fn target_changes(&self) -> Vec<(String, f64, f64)> {
        self.targets.lock().clone()
    }
}

impl Backend for MemoryBackend {
    fn on_beat(&self, app: &str, record: &HeartbeatRecord, scope: BeatScope) {
        use std::sync::atomic::Ordering;
        let mut events = self.events.lock();
        if let Some(capacity) = self.capacity {
            if events.len() >= capacity {
                events.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        events.push_back(MirroredBeat {
            app: app.to_string(),
            record: *record,
            scope,
        });
        self.mirrored.fetch_add(1, Ordering::Relaxed);
    }

    fn on_target_change(&self, app: &str, min_bps: f64, max_bps: f64) {
        self.targets.lock().push((app.to_string(), min_bps, max_bps));
    }

    fn stats(&self) -> BackendStats {
        use std::sync::atomic::Ordering;
        let dropped = self.dropped.load(Ordering::Relaxed);
        BackendStats {
            mirrored: self.mirrored.load(Ordering::Relaxed) - dropped,
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BeatThreadId, Tag};

    fn record(seq: u64) -> HeartbeatRecord {
        HeartbeatRecord::new(seq, seq * 10, Tag::new(seq), BeatThreadId(0))
    }

    #[test]
    fn null_backend_accepts_everything() {
        let backend = NullBackend;
        backend.on_beat("app", &record(0), BeatScope::Global);
        backend.on_target_change("app", 1.0, 2.0);
        assert!(backend.flush().is_ok());
    }

    #[test]
    fn memory_backend_records_beats_in_order() {
        let backend = MemoryBackend::new();
        assert!(backend.is_empty());
        backend.on_beat("x264", &record(0), BeatScope::Global);
        backend.on_beat("x264", &record(1), BeatScope::Local);
        assert_eq!(backend.len(), 2);
        let beats = backend.beats();
        assert_eq!(beats[0].record.seq, 0);
        assert_eq!(beats[0].scope, BeatScope::Global);
        assert_eq!(beats[1].scope, BeatScope::Local);
        assert_eq!(beats[1].app, "x264");
    }

    #[test]
    fn memory_backend_records_target_changes() {
        let backend = MemoryBackend::new();
        backend.on_target_change("bodytrack", 2.5, 3.5);
        backend.on_target_change("bodytrack", 3.0, 4.0);
        let targets = backend.target_changes();
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0], ("bodytrack".to_string(), 2.5, 3.5));
        assert_eq!(targets[1].1, 3.0);
    }

    #[test]
    fn memory_backend_flush_is_ok() {
        assert!(MemoryBackend::new().flush().is_ok());
    }

    #[test]
    fn unbounded_memory_backend_never_drops() {
        let backend = MemoryBackend::new();
        for i in 0..100 {
            backend.on_beat("app", &record(i), BeatScope::Global);
        }
        assert_eq!(
            backend.stats(),
            BackendStats {
                mirrored: 100,
                dropped: 0
            }
        );
        assert_eq!(backend.dropped(), 0);
    }

    #[test]
    fn bounded_memory_backend_drops_oldest_and_counts() {
        let backend = MemoryBackend::with_capacity(8);
        for i in 0..20 {
            backend.on_beat("app", &record(i), BeatScope::Global);
        }
        assert_eq!(backend.len(), 8);
        let beats = backend.beats();
        assert_eq!(beats.first().unwrap().record.seq, 12, "oldest were shed");
        assert_eq!(beats.last().unwrap().record.seq, 19);
        let stats = backend.stats();
        assert_eq!(stats.dropped, 12);
        assert_eq!(stats.mirrored, 8);
        assert_eq!(stats.offered(), 20);
        assert_eq!(backend.dropped(), 12);
    }

    #[test]
    fn null_backend_reports_zero_stats() {
        let backend = NullBackend;
        backend.on_beat("app", &record(0), BeatScope::Global);
        assert_eq!(backend.stats(), BackendStats::default());
        assert_eq!(backend.dropped(), 0);
    }
}
