//! Mirroring backends.
//!
//! Every heartbeat is always recorded in the in-memory history buffers; a
//! [`Backend`] additionally mirrors the stream somewhere an *external*
//! observer can reach it — a file (the paper's reference implementation
//! writes one record per line to a per-application file) or a shared-memory
//! segment (`hb-shm` crate). Backends also receive target-rate changes so an
//! external scheduler can read the application's goals.

use crate::record::HeartbeatRecord;
use crate::Result;

/// Whether a mirrored beat was a global (per-application) or local
/// (per-thread) heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeatScope {
    /// Counted against the application-wide history.
    Global,
    /// Counted only against the issuing thread's private history.
    Local,
}

/// A sink that mirrors heartbeat activity for external observers.
///
/// Implementations must be cheap: `on_beat` is called from the application's
/// hot path. Backends that perform I/O should buffer internally and expose
/// [`Backend::flush`].
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Called for every heartbeat after it has been recorded in memory.
    fn on_beat(&self, app: &str, record: &HeartbeatRecord, scope: BeatScope);

    /// Called when the application changes its target heart-rate range.
    fn on_target_change(&self, _app: &str, _min_bps: f64, _max_bps: f64) {}

    /// Flushes any buffered state to the underlying medium.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

/// A backend that discards everything. Useful as a placeholder and in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBackend;

impl Backend for NullBackend {
    fn on_beat(&self, _app: &str, _record: &HeartbeatRecord, _scope: BeatScope) {}
}

/// A backend that stores mirrored events in memory. Primarily used in tests
/// and by in-process observers that want the full uncompacted stream.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    events: parking_lot::Mutex<Vec<MirroredBeat>>,
    targets: parking_lot::Mutex<Vec<(String, f64, f64)>>,
}

/// A mirrored heartbeat as captured by [`MemoryBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirroredBeat {
    /// Application name the beat belongs to.
    pub app: String,
    /// The heartbeat record.
    pub record: HeartbeatRecord,
    /// Global or local.
    pub scope: BeatScope,
}

impl MemoryBackend {
    /// Creates an empty memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mirrored beats.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no beats were mirrored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a copy of all mirrored beats.
    pub fn beats(&self) -> Vec<MirroredBeat> {
        self.events.lock().clone()
    }

    /// Returns all recorded target changes as `(app, min, max)` tuples.
    pub fn target_changes(&self) -> Vec<(String, f64, f64)> {
        self.targets.lock().clone()
    }
}

impl Backend for MemoryBackend {
    fn on_beat(&self, app: &str, record: &HeartbeatRecord, scope: BeatScope) {
        self.events.lock().push(MirroredBeat {
            app: app.to_string(),
            record: *record,
            scope,
        });
    }

    fn on_target_change(&self, app: &str, min_bps: f64, max_bps: f64) {
        self.targets.lock().push((app.to_string(), min_bps, max_bps));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BeatThreadId, Tag};

    fn record(seq: u64) -> HeartbeatRecord {
        HeartbeatRecord::new(seq, seq * 10, Tag::new(seq), BeatThreadId(0))
    }

    #[test]
    fn null_backend_accepts_everything() {
        let backend = NullBackend;
        backend.on_beat("app", &record(0), BeatScope::Global);
        backend.on_target_change("app", 1.0, 2.0);
        assert!(backend.flush().is_ok());
    }

    #[test]
    fn memory_backend_records_beats_in_order() {
        let backend = MemoryBackend::new();
        assert!(backend.is_empty());
        backend.on_beat("x264", &record(0), BeatScope::Global);
        backend.on_beat("x264", &record(1), BeatScope::Local);
        assert_eq!(backend.len(), 2);
        let beats = backend.beats();
        assert_eq!(beats[0].record.seq, 0);
        assert_eq!(beats[0].scope, BeatScope::Global);
        assert_eq!(beats[1].scope, BeatScope::Local);
        assert_eq!(beats[1].app, "x264");
    }

    #[test]
    fn memory_backend_records_target_changes() {
        let backend = MemoryBackend::new();
        backend.on_target_change("bodytrack", 2.5, 3.5);
        backend.on_target_change("bodytrack", 3.0, 4.0);
        let targets = backend.target_changes();
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0], ("bodytrack".to_string(), 2.5, 3.5));
        assert_eq!(targets[1].1, 3.0);
    }

    #[test]
    fn memory_backend_flush_is_ok() {
        assert!(MemoryBackend::new().flush().is_ok());
    }
}
