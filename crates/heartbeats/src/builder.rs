//! Construction of [`Heartbeat`] producers — the Rust analogue of
//! `HB_initialize(window, local)`.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::backend::Backend;
use crate::buffer::DEFAULT_CAPACITY;
use crate::clock::{self, SharedClock};
use crate::heartbeat::{BufferKind, Heartbeat, Shared};
use crate::registry::Registry;
use crate::target::TargetRate;
use crate::{HeartbeatError, Result};

/// Default window (in beats) used when the application does not specify one.
pub const DEFAULT_WINDOW: usize = 20;

/// Builder for a [`Heartbeat`].
///
/// ```
/// use heartbeats::HeartbeatBuilder;
///
/// let hb = HeartbeatBuilder::new("my-app")
///     .window(40)           // default window for HB_current_rate(0)
///     .capacity(1 << 12)    // history retained per buffer
///     .target(30.0, 35.0)   // optional initial goal
///     .build()
///     .unwrap();
/// assert_eq!(hb.default_window(), 40);
/// ```
#[derive(Debug)]
pub struct HeartbeatBuilder<'r> {
    name: String,
    window: usize,
    capacity: usize,
    buffer_kind: BufferKind,
    clock: Option<SharedClock>,
    backends: Vec<Arc<dyn Backend>>,
    target: Option<(f64, f64)>,
    registry: Option<&'r Registry>,
}

impl<'r> HeartbeatBuilder<'r> {
    /// Starts building a heartbeat for the application called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        HeartbeatBuilder {
            name: name.into(),
            window: DEFAULT_WINDOW,
            capacity: DEFAULT_CAPACITY,
            buffer_kind: BufferKind::default(),
            clock: None,
            backends: Vec::new(),
            target: None,
            registry: None,
        }
    }

    /// Sets the default window (in beats) used by `current_rate(0)`.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets how many records each history buffer retains.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Chooses the ring-buffer implementation.
    pub fn buffer_kind(mut self, kind: BufferKind) -> Self {
        self.buffer_kind = kind;
        self
    }

    /// Uses a custom clock (e.g. a [`ManualClock`](crate::ManualClock) for
    /// deterministic simulation). Defaults to a monotonic wall clock.
    pub fn clock(mut self, clock: SharedClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Attaches a mirroring backend from the start.
    pub fn backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backends.push(backend);
        self
    }

    /// Declares an initial target heart-rate range.
    pub fn target(mut self, min_bps: f64, max_bps: f64) -> Self {
        self.target = Some((min_bps, max_bps));
        self
    }

    /// Registers the heartbeat in the process-global [`Registry`] so external
    /// observers can discover it by name.
    pub fn register(self) -> Self {
        self.register_in(Registry::global())
    }

    /// Registers the heartbeat in a specific registry (used by simulations
    /// that host several "machines", and by tests).
    pub fn register_in(mut self, registry: &'r Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builds the heartbeat, validating the configuration.
    pub fn build(self) -> Result<Heartbeat> {
        if self.name.is_empty() {
            return Err(HeartbeatError::InvalidConfig(
                "application name must not be empty".into(),
            ));
        }
        if self.window < 2 {
            return Err(HeartbeatError::InvalidConfig(format!(
                "window must be at least 2 beats (got {})",
                self.window
            )));
        }
        if self.capacity == 0 {
            return Err(HeartbeatError::InvalidConfig(
                "buffer capacity must be at least 1".into(),
            ));
        }
        if self.capacity < self.window {
            return Err(HeartbeatError::InvalidConfig(format!(
                "buffer capacity ({}) must be able to hold the default window ({})",
                self.capacity, self.window
            )));
        }
        let target = TargetRate::unset();
        if let Some((min, max)) = self.target {
            target.set(min, max)?;
        }
        let clock = self.clock.unwrap_or_else(clock::monotonic);
        let shared = Arc::new(Shared {
            name: self.name,
            clock,
            global: self.buffer_kind.build(self.capacity),
            locals: RwLock::new(Default::default()),
            default_window: self.window,
            buffer_capacity: self.capacity,
            buffer_kind: self.buffer_kind,
            target,
            backends: RwLock::new(self.backends),
            // Epoch 1 vs. the cache's initial 0 forces every thread's first
            // beat to snapshot the backend list.
            backends_epoch: std::sync::atomic::AtomicU64::new(1),
            instance_id: Shared::next_instance_id(),
        });
        if let Some(registry) = self.registry {
            registry.insert(Arc::clone(&shared))?;
        }
        Ok(Heartbeat::from_shared(shared))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::clock::ManualClock;

    #[test]
    fn default_builder_builds() {
        let hb = HeartbeatBuilder::new("app").build().unwrap();
        assert_eq!(hb.name(), "app");
        assert_eq!(hb.default_window(), DEFAULT_WINDOW);
        assert_eq!(hb.buffer_capacity(), DEFAULT_CAPACITY);
        assert!(hb.target().is_none());
    }

    #[test]
    fn empty_name_is_rejected() {
        assert!(matches!(
            HeartbeatBuilder::new("").build(),
            Err(HeartbeatError::InvalidConfig(_))
        ));
    }

    #[test]
    fn tiny_window_is_rejected() {
        assert!(HeartbeatBuilder::new("a").window(1).build().is_err());
        assert!(HeartbeatBuilder::new("a").window(0).build().is_err());
        assert!(HeartbeatBuilder::new("a").window(2).build().is_ok());
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(HeartbeatBuilder::new("a").capacity(0).build().is_err());
    }

    #[test]
    fn capacity_smaller_than_window_is_rejected() {
        assert!(HeartbeatBuilder::new("a")
            .window(100)
            .capacity(50)
            .build()
            .is_err());
    }

    #[test]
    fn initial_target_is_applied_and_validated() {
        let hb = HeartbeatBuilder::new("a").target(5.0, 10.0).build().unwrap();
        assert_eq!(hb.target(), Some((5.0, 10.0)));
        assert!(HeartbeatBuilder::new("b").target(10.0, 5.0).build().is_err());
    }

    #[test]
    fn initial_backend_receives_beats() {
        let probe = Arc::new(MemoryBackend::new());
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("a")
            .backend(probe.clone())
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        clock.advance_ns(1);
        hb.heartbeat();
        assert_eq!(probe.len(), 1);
    }

    #[test]
    fn custom_window_and_capacity_are_used() {
        let hb = HeartbeatBuilder::new("a")
            .window(7)
            .capacity(128)
            .build()
            .unwrap();
        assert_eq!(hb.default_window(), 7);
        assert_eq!(hb.buffer_capacity(), 128);
    }
}
