//! C-compatible FFI layer mirroring the original Heartbeats API.
//!
//! The paper's reference implementation "is written in C and is callable from
//! both C and C++ programs". This module exposes the same seven entry points
//! with C linkage so existing instrumented code (e.g. the PARSEC patches) can
//! link against this crate built as a `staticlib`/`cdylib`.
//!
//! Handles returned by [`HB_initialize`] index a process-global table of
//! [`Heartbeat`] instances; all functions are safe to call from any thread.
//! Failure is signalled with negative return values, as is conventional in C.

use std::ffi::CStr;
use std::os::raw::{c_char, c_double, c_int, c_longlong};

use parking_lot::RwLock;

use crate::backend::BeatScope;
use crate::builder::HeartbeatBuilder;
use crate::record::Tag;
use crate::Heartbeat;

/// A heartbeat record as laid out for C callers of [`HB_get_history`].
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HBRecord {
    /// Sequence number of the beat in its stream.
    pub seq: u64,
    /// Timestamp in nanoseconds.
    pub timestamp_ns: u64,
    /// User tag (0 if none).
    pub tag: u64,
    /// Dense thread id of the producer.
    pub thread_id: u32,
    /// Reserved for future use / alignment.
    pub _reserved: u32,
}

#[derive(Default)]
struct HandleTable {
    entries: Vec<Option<Heartbeat>>,
}

static HANDLES: RwLock<HandleTable> = RwLock::new(HandleTable {
    entries: Vec::new(),
});

fn with_handle<T>(handle: c_longlong, f: impl FnOnce(&Heartbeat) -> T) -> Option<T> {
    if handle < 0 {
        return None;
    }
    let table = HANDLES.read();
    table
        .entries
        .get(handle as usize)
        .and_then(|slot| slot.as_ref())
        .map(f)
}

/// Initializes a heartbeat instance.
///
/// * `name` — NUL-terminated application name; may be null, in which case a
///   name is derived from the handle index.
/// * `window` — default window in beats (values below 2 are raised to 2).
///
/// Returns a non-negative handle on success, or `-1` on failure.
///
/// # Safety
///
/// `name`, if non-null, must point to a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn HB_initialize(name: *const c_char, window: c_longlong) -> c_longlong {
    let mut table = HANDLES.write();
    let index = table.entries.len();
    let name = if name.is_null() {
        format!("hb-ffi-{index}")
    } else {
        match unsafe { CStr::from_ptr(name) }.to_str() {
            Ok(s) if !s.is_empty() => s.to_string(),
            _ => format!("hb-ffi-{index}"),
        }
    };
    let window = window.max(2) as usize;
    let built = HeartbeatBuilder::new(name)
        .window(window)
        .capacity(window.max(crate::buffer::DEFAULT_CAPACITY))
        .build();
    match built {
        Ok(hb) => {
            table.entries.push(Some(hb));
            index as c_longlong
        }
        Err(_) => -1,
    }
}

/// Releases the heartbeat associated with `handle`. Subsequent calls with the
/// same handle fail. Returns 0 on success, -1 if the handle was invalid.
#[no_mangle]
pub extern "C" fn HB_finalize(handle: c_longlong) -> c_int {
    if handle < 0 {
        return -1;
    }
    let mut table = HANDLES.write();
    match table.entries.get_mut(handle as usize) {
        Some(slot @ Some(_)) => {
            *slot = None;
            0
        }
        _ => -1,
    }
}

/// Registers a heartbeat. `local` non-zero produces a per-thread (local)
/// beat. Returns the beat's sequence number, or -1 on an invalid handle.
#[no_mangle]
pub extern "C" fn HB_heartbeat(handle: c_longlong, tag: c_longlong, local: c_int) -> c_longlong {
    with_handle(handle, |hb| {
        let scope = if local != 0 {
            BeatScope::Local
        } else {
            BeatScope::Global
        };
        hb.beat(Tag::new(tag as u64), scope) as c_longlong
    })
    .unwrap_or(-1)
}

/// Returns the average heart rate over the last `window` beats (0 = default
/// window), or a negative value if the handle is invalid or fewer than two
/// beats exist.
#[no_mangle]
pub extern "C" fn HB_current_rate(handle: c_longlong, window: c_longlong, local: c_int) -> c_double {
    with_handle(handle, |hb| {
        let window = window.max(0) as usize;
        let rate = if local != 0 {
            hb.current_rate_local(window)
        } else {
            hb.current_rate(window)
        };
        rate.unwrap_or(-1.0)
    })
    .unwrap_or(-1.0)
}

/// Sets the application's target heart-rate range. Returns 0 on success, -1
/// on an invalid handle or invalid range.
#[no_mangle]
pub extern "C" fn HB_set_target_rate(handle: c_longlong, min: c_double, max: c_double) -> c_int {
    with_handle(handle, |hb| {
        if hb.set_target_rate(min, max).is_ok() {
            0
        } else {
            -1
        }
    })
    .unwrap_or(-1)
}

/// Returns the minimum target rate, or a negative value if unset/invalid.
#[no_mangle]
pub extern "C" fn HB_get_target_min(handle: c_longlong) -> c_double {
    with_handle(handle, |hb| hb.target_min()).unwrap_or(-1.0)
}

/// Returns the maximum target rate, or a negative value if unset/invalid.
#[no_mangle]
pub extern "C" fn HB_get_target_max(handle: c_longlong) -> c_double {
    with_handle(handle, |hb| hb.target_max()).unwrap_or(-1.0)
}

/// Copies up to `n` of the most recent heartbeats (oldest first) into `out`.
/// Returns the number of records written, or -1 on an invalid handle or null
/// output pointer.
///
/// # Safety
///
/// `out` must point to a writable array of at least `n` [`HBRecord`]s.
#[no_mangle]
pub unsafe extern "C" fn HB_get_history(
    handle: c_longlong,
    n: c_longlong,
    out: *mut HBRecord,
    local: c_int,
) -> c_longlong {
    if out.is_null() || n < 0 {
        return -1;
    }
    with_handle(handle, |hb| {
        let records = if local != 0 {
            hb.history_local(n as usize)
        } else {
            hb.history(n as usize)
        };
        for (i, record) in records.iter().enumerate() {
            unsafe {
                out.add(i).write(HBRecord {
                    seq: record.seq,
                    timestamp_ns: record.timestamp_ns,
                    tag: record.tag.value(),
                    thread_id: record.thread.index(),
                    _reserved: 0,
                });
            }
        }
        records.len() as c_longlong
    })
    .unwrap_or(-1)
}

/// Returns the total number of global beats produced, or -1 on an invalid
/// handle.
#[no_mangle]
pub extern "C" fn HB_total_beats(handle: c_longlong) -> c_longlong {
    with_handle(handle, |hb| hb.total_beats() as c_longlong).unwrap_or(-1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    fn init(name: &str, window: i64) -> i64 {
        let cname = CString::new(name).unwrap();
        unsafe { HB_initialize(cname.as_ptr(), window) }
    }

    #[test]
    fn initialize_and_finalize() {
        let handle = init("ffi-app", 10);
        assert!(handle >= 0);
        assert_eq!(HB_finalize(handle), 0);
        assert_eq!(HB_finalize(handle), -1, "double finalize fails");
        assert_eq!(HB_heartbeat(handle, 0, 0), -1, "use after finalize fails");
    }

    #[test]
    fn initialize_with_null_name() {
        let handle = unsafe { HB_initialize(std::ptr::null(), 5) };
        assert!(handle >= 0);
        assert_eq!(HB_finalize(handle), 0);
    }

    #[test]
    fn heartbeat_and_rate() {
        let handle = init("ffi-rate", 4);
        assert_eq!(HB_heartbeat(handle, 1, 0), 0);
        assert_eq!(HB_heartbeat(handle, 2, 0), 1);
        assert_eq!(HB_total_beats(handle), 2);
        // Rate may still be unmeasurable if both beats landed on the same
        // nanosecond, but the call must not fail with -1 handle semantics.
        let rate = HB_current_rate(handle, 0, 0);
        assert!(rate >= -1.0);
        assert_eq!(HB_finalize(handle), 0);
    }

    #[test]
    fn targets_roundtrip() {
        let handle = init("ffi-target", 4);
        assert!(HB_get_target_min(handle) < 0.0);
        assert_eq!(HB_set_target_rate(handle, 30.0, 35.0), 0);
        assert_eq!(HB_get_target_min(handle), 30.0);
        assert_eq!(HB_get_target_max(handle), 35.0);
        assert_eq!(HB_set_target_rate(handle, 10.0, 5.0), -1);
        assert_eq!(HB_finalize(handle), 0);
    }

    #[test]
    fn history_copies_records() {
        let handle = init("ffi-history", 8);
        for i in 0..5 {
            HB_heartbeat(handle, i * 11, 0);
        }
        let mut out = vec![
            HBRecord {
                seq: 0,
                timestamp_ns: 0,
                tag: 0,
                thread_id: 0,
                _reserved: 0
            };
            3
        ];
        let written = unsafe { HB_get_history(handle, 3, out.as_mut_ptr(), 0) };
        assert_eq!(written, 3);
        assert_eq!(out[0].tag, 22);
        assert_eq!(out[2].tag, 44);
        assert_eq!(out[2].seq, 4);
        assert_eq!(HB_finalize(handle), 0);
    }

    #[test]
    fn history_rejects_null_out() {
        let handle = init("ffi-null", 4);
        let written = unsafe { HB_get_history(handle, 3, std::ptr::null_mut(), 0) };
        assert_eq!(written, -1);
        assert_eq!(HB_finalize(handle), 0);
    }

    #[test]
    fn local_beats_through_ffi() {
        let handle = init("ffi-local", 4);
        assert_eq!(HB_heartbeat(handle, 7, 1), 0);
        assert_eq!(HB_total_beats(handle), 0, "local beats are not global");
        let mut out = vec![
            HBRecord {
                seq: 0,
                timestamp_ns: 0,
                tag: 0,
                thread_id: 0,
                _reserved: 0
            };
            1
        ];
        let written = unsafe { HB_get_history(handle, 1, out.as_mut_ptr(), 1) };
        assert_eq!(written, 1);
        assert_eq!(out[0].tag, 7);
        assert_eq!(HB_finalize(handle), 0);
    }

    #[test]
    fn invalid_handles_fail_gracefully() {
        assert_eq!(HB_heartbeat(-1, 0, 0), -1);
        assert_eq!(HB_current_rate(9_999_999, 0, 0), -1.0);
        assert_eq!(HB_set_target_rate(-5, 1.0, 2.0), -1);
        assert_eq!(HB_total_beats(1 << 40), -1);
    }
}
