//! Analysis helpers over heartbeat histories.
//!
//! The paper gives tags two roles beyond opaque labels: distinguishing kinds
//! of work ("a video application may wish to indicate the type of frame (I, B
//! or P) to which the heartbeat corresponds") and acting as *sequence numbers*
//! "in situations where some heartbeats may be dropped or reordered". This
//! module provides the observer-side machinery for both: per-tag filtering and
//! rates, inter-beat gap analysis, and drop/reorder detection over
//! tag-as-sequence-number streams.

use std::collections::BTreeMap;

use crate::record::{HeartbeatRecord, Tag};
use crate::window;

/// Returns only the records carrying `tag`, preserving order.
pub fn filter_by_tag(records: &[HeartbeatRecord], tag: Tag) -> Vec<HeartbeatRecord> {
    records.iter().copied().filter(|r| r.tag == tag).collect()
}

/// Number of beats per distinct tag, sorted by tag value.
pub fn count_by_tag(records: &[HeartbeatRecord]) -> BTreeMap<Tag, usize> {
    let mut counts = BTreeMap::new();
    for record in records {
        *counts.entry(record.tag).or_insert(0) += 1;
    }
    counts
}

/// Average heart rate per distinct tag (beats of that tag per second, over the
/// span of that tag's beats). Tags with fewer than two beats are omitted.
pub fn rate_by_tag(records: &[HeartbeatRecord]) -> BTreeMap<Tag, f64> {
    let mut grouped: BTreeMap<Tag, Vec<HeartbeatRecord>> = BTreeMap::new();
    for record in records {
        grouped.entry(record.tag).or_default().push(*record);
    }
    grouped
        .into_iter()
        .filter_map(|(tag, group)| window::windowed_rate(&group).map(|rate| (tag, rate)))
        .collect()
}

/// The largest gap (in nanoseconds) between consecutive beats, with the index
/// of the beat that ended it. Useful for spotting stalls inside an otherwise
/// healthy stream. Returns `None` with fewer than two records.
pub fn longest_gap(records: &[HeartbeatRecord]) -> Option<(usize, u64)> {
    if records.len() < 2 {
        return None;
    }
    records
        .windows(2)
        .enumerate()
        .map(|(i, pair)| (i + 1, pair[1].timestamp_ns.saturating_sub(pair[0].timestamp_ns)))
        .max_by_key(|&(_, gap)| gap)
}

/// Result of validating a stream whose tags are sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SequenceReport {
    /// Sequence numbers that never appeared (dropped beats).
    pub missing: Vec<u64>,
    /// Sequence numbers that appeared more than once.
    pub duplicated: Vec<u64>,
    /// Number of adjacent pairs that arrived out of order.
    pub reordered: usize,
}

impl SequenceReport {
    /// True when the stream is a clean, gap-free, in-order sequence.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.duplicated.is_empty() && self.reordered == 0
    }
}

/// Validates a stream of records whose tags are expected to be the sequence
/// numbers `expected_start..=max(tag)`: reports dropped, duplicated and
/// out-of-order beats.
pub fn check_sequence(records: &[HeartbeatRecord], expected_start: u64) -> SequenceReport {
    let mut report = SequenceReport::default();
    if records.is_empty() {
        return report;
    }
    report.reordered = records
        .windows(2)
        .filter(|pair| pair[1].tag.value() < pair[0].tag.value())
        .count();
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for record in records {
        *counts.entry(record.tag.value()).or_insert(0) += 1;
    }
    let max_seen = *counts.keys().next_back().expect("non-empty");
    for seq in expected_start..=max_seen {
        match counts.get(&seq) {
            None => report.missing.push(seq),
            Some(&count) if count > 1 => report.duplicated.push(seq),
            _ => {}
        }
    }
    report
}

/// A histogram of inter-beat intervals with fixed-width buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalHistogram {
    /// Width of each bucket in nanoseconds.
    pub bucket_ns: u64,
    /// Bucket counts; bucket `i` covers `[i*bucket_ns, (i+1)*bucket_ns)`.
    pub counts: Vec<u64>,
    /// Intervals larger than the last bucket.
    pub overflow: u64,
}

impl IntervalHistogram {
    /// Total number of intervals recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }
}

/// Builds an interval histogram over consecutive beats.
pub fn interval_histogram(
    records: &[HeartbeatRecord],
    bucket_ns: u64,
    buckets: usize,
) -> IntervalHistogram {
    let bucket_ns = bucket_ns.max(1);
    let mut histogram = IntervalHistogram {
        bucket_ns,
        counts: vec![0; buckets.max(1)],
        overflow: 0,
    };
    for pair in records.windows(2) {
        let interval = pair[1].timestamp_ns.saturating_sub(pair[0].timestamp_ns);
        let bucket = (interval / bucket_ns) as usize;
        if bucket < histogram.counts.len() {
            histogram.counts[bucket] += 1;
        } else {
            histogram.overflow += 1;
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BeatThreadId;

    fn record(seq: u64, t_ms: u64, tag: u64) -> HeartbeatRecord {
        HeartbeatRecord::new(seq, t_ms * 1_000_000, Tag::new(tag), BeatThreadId(0))
    }

    #[test]
    fn filter_and_count_by_tag() {
        let records = vec![record(0, 0, 1), record(1, 10, 2), record(2, 20, 1), record(3, 30, 3)];
        assert_eq!(filter_by_tag(&records, Tag::new(1)).len(), 2);
        assert_eq!(filter_by_tag(&records, Tag::new(9)).len(), 0);
        let counts = count_by_tag(&records);
        assert_eq!(counts[&Tag::new(1)], 2);
        assert_eq!(counts[&Tag::new(2)], 1);
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn rate_by_tag_ignores_singletons() {
        // Tag 1 beats every 100 ms (10/s); tag 2 appears once.
        let records = vec![record(0, 0, 1), record(1, 50, 2), record(2, 100, 1), record(3, 200, 1)];
        let rates = rate_by_tag(&records);
        assert_eq!(rates.len(), 1);
        assert!((rates[&Tag::new(1)] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn longest_gap_finds_the_stall() {
        let records = vec![record(0, 0, 0), record(1, 10, 0), record(2, 500, 0), record(3, 510, 0)];
        let (index, gap) = longest_gap(&records).unwrap();
        assert_eq!(index, 2);
        assert_eq!(gap, 490 * 1_000_000);
        assert_eq!(longest_gap(&records[..1]), None);
    }

    #[test]
    fn clean_sequence_reports_clean() {
        let records: Vec<_> = (0..10).map(|i| record(i, i * 10, i)).collect();
        let report = check_sequence(&records, 0);
        assert!(report.is_clean());
        assert!(report.missing.is_empty());
    }

    #[test]
    fn dropped_and_duplicated_beats_are_reported() {
        // Sequence 0,1,3,3,5 starting from 0: missing 2 and 4, duplicate 3.
        let records = vec![
            record(0, 0, 0),
            record(1, 10, 1),
            record(2, 20, 3),
            record(3, 30, 3),
            record(4, 40, 5),
        ];
        let report = check_sequence(&records, 0);
        assert_eq!(report.missing, vec![2, 4]);
        assert_eq!(report.duplicated, vec![3]);
        assert_eq!(report.reordered, 0);
        assert!(!report.is_clean());
    }

    #[test]
    fn reordered_beats_are_counted() {
        let records = vec![record(0, 0, 0), record(1, 10, 2), record(2, 20, 1), record(3, 30, 3)];
        let report = check_sequence(&records, 0);
        assert_eq!(report.reordered, 1);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn empty_sequence_is_clean() {
        assert!(check_sequence(&[], 0).is_clean());
    }

    #[test]
    fn interval_histogram_buckets_and_overflow() {
        // Intervals: 10ms, 10ms, 35ms with 10ms buckets x 3.
        let records = vec![record(0, 0, 0), record(1, 10, 0), record(2, 20, 0), record(3, 55, 0)];
        let histogram = interval_histogram(&records, 10_000_000, 3);
        assert_eq!(histogram.counts, vec![0, 2, 0]);
        assert_eq!(histogram.overflow, 1);
        assert_eq!(histogram.total(), 3);
    }

    #[test]
    fn interval_histogram_handles_degenerate_inputs() {
        let histogram = interval_histogram(&[], 0, 0);
        assert_eq!(histogram.bucket_ns, 1);
        assert_eq!(histogram.counts.len(), 1);
        assert_eq!(histogram.total(), 0);
    }
}
