//! A process-wide registry of heartbeat-enabled applications.
//!
//! The paper's external observers (the scheduler of Section 5.3, system
//! administrative tools, an organic OS) need to *discover* heartbeat-enabled
//! applications and attach to their heartbeat data. Across processes that is
//! the role of the file / shared-memory backends; inside a single process (or
//! a simulation hosting many "applications") the [`Registry`] provides the
//! same discovery: producers register by name, observers look them up and get
//! a [`HeartbeatReader`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::heartbeat::Shared;
use crate::reader::HeartbeatReader;
use crate::{HeartbeatError, Result};

/// A name-indexed collection of heartbeat-enabled applications.
#[derive(Debug, Default)]
pub struct Registry {
    apps: RwLock<HashMap<String, Arc<Shared>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry used by
    /// [`HeartbeatBuilder::register`](crate::HeartbeatBuilder::register) and
    /// the C FFI layer.
    pub fn global() -> &'static Registry {
        static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    pub(crate) fn insert(&self, shared: Arc<Shared>) -> Result<()> {
        let mut apps = self.apps.write();
        if apps.contains_key(&shared.name) {
            return Err(HeartbeatError::AlreadyRegistered(shared.name.clone()));
        }
        apps.insert(shared.name.clone(), shared);
        Ok(())
    }

    /// Removes an application from the registry. Returns `true` if it was
    /// present.
    pub fn unregister(&self, name: &str) -> bool {
        self.apps.write().remove(name).is_some()
    }

    /// Looks up an application and returns an observer handle.
    pub fn attach(&self, name: &str) -> Result<HeartbeatReader> {
        self.apps
            .read()
            .get(name)
            .map(|shared| HeartbeatReader::from_shared(Arc::clone(shared)))
            .ok_or_else(|| HeartbeatError::NotRegistered(name.to_string()))
    }

    /// Names of all registered applications, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.apps.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Observer handles for every registered application.
    pub fn attach_all(&self) -> Vec<HeartbeatReader> {
        self.apps
            .read()
            .values()
            .map(|shared| HeartbeatReader::from_shared(Arc::clone(shared)))
            .collect()
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.read().len()
    }

    /// True if no applications are registered.
    pub fn is_empty(&self) -> bool {
        self.apps.read().is_empty()
    }

    /// Removes every registered application.
    pub fn clear(&self) {
        self.apps.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HeartbeatBuilder;
    use crate::clock::ManualClock;

    fn build_in(registry: &Registry, name: &str) -> (crate::Heartbeat, ManualClock) {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new(name)
            .clock(Arc::new(clock.clone()))
            .register_in(registry)
            .build()
            .unwrap();
        (hb, clock)
    }

    #[test]
    fn register_and_attach() {
        let registry = Registry::new();
        assert!(registry.is_empty());
        let (hb, clock) = build_in(&registry, "dedup");
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.list(), vec!["dedup".to_string()]);

        let reader = registry.attach("dedup").unwrap();
        clock.advance_ns(10);
        hb.heartbeat();
        assert_eq!(reader.total_beats(), 1);
    }

    #[test]
    fn attach_unknown_app_fails() {
        let registry = Registry::new();
        assert!(matches!(
            registry.attach("missing"),
            Err(HeartbeatError::NotRegistered(_))
        ));
    }

    #[test]
    fn duplicate_registration_fails() {
        let registry = Registry::new();
        let _first = build_in(&registry, "ferret");
        let clock = ManualClock::new();
        let second = HeartbeatBuilder::new("ferret")
            .clock(Arc::new(clock))
            .register_in(&registry)
            .build();
        assert!(matches!(
            second,
            Err(HeartbeatError::AlreadyRegistered(name)) if name == "ferret"
        ));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn unregister_and_clear() {
        let registry = Registry::new();
        let _a = build_in(&registry, "a");
        let _b = build_in(&registry, "b");
        assert_eq!(registry.len(), 2);
        assert!(registry.unregister("a"));
        assert!(!registry.unregister("a"));
        assert_eq!(registry.len(), 1);
        registry.clear();
        assert!(registry.is_empty());
    }

    #[test]
    fn list_is_sorted_and_attach_all_covers_everything() {
        let registry = Registry::new();
        let _c = build_in(&registry, "canneal");
        let _a = build_in(&registry, "blackscholes");
        let _b = build_in(&registry, "bodytrack");
        assert_eq!(
            registry.list(),
            vec![
                "blackscholes".to_string(),
                "bodytrack".to_string(),
                "canneal".to_string()
            ]
        );
        assert_eq!(registry.attach_all().len(), 3);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global() as *const Registry;
        let b = Registry::global() as *const Registry;
        assert_eq!(a, b);
    }
}
