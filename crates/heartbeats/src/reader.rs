//! Read-only observer handles.
//!
//! An external observer (the OS scheduler in Section 5.3 of the paper, a
//! cloud manager, a hardware model, or the application's own control thread)
//! holds a [`HeartbeatReader`]: it can query rates, history and targets but
//! cannot produce beats or change the application's declared goals.

use std::sync::Arc;

use crate::heartbeat::Shared;
use crate::record::{BeatThreadId, HeartbeatRecord};
use crate::target::TargetStatus;
use crate::window::{self, WindowStats};

/// Health of a heartbeat stream as seen by an observer.
///
/// The paper motivates heartbeats for failure detection: "a lack of
/// heartbeats from a particular node would indicate that it has failed, and
/// slow or erratic heartbeats could indicate that a machine is about to
/// fail". [`HeartbeatReader::health`] encodes that triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// No beat has ever been observed.
    NeverBeat,
    /// Beats are arriving and the last one is recent.
    Alive,
    /// The last beat is older than the staleness threshold; the application
    /// may have hung, deadlocked or crashed.
    Stalled,
}

/// A read-only view of one application's heartbeat state.
///
/// Cloning is cheap; readers share the producer's buffers and never copy the
/// history until asked.
#[derive(Debug, Clone)]
pub struct HeartbeatReader {
    shared: Arc<Shared>,
}

impl HeartbeatReader {
    pub(crate) fn from_shared(shared: Arc<Shared>) -> Self {
        HeartbeatReader { shared }
    }

    /// The observed application's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The default window the application registered.
    pub fn default_window(&self) -> usize {
        self.shared.default_window
    }

    /// Average heart rate over the last `window` global beats
    /// (`HB_current_rate` from the observer side). `0` means the default
    /// window.
    pub fn current_rate(&self, window: usize) -> Option<f64> {
        self.shared.rate_over(self.shared.global.as_ref(), window)
    }

    /// Lifetime average heart rate (Table 2's metric).
    pub fn global_average_rate(&self) -> Option<f64> {
        let total = self.shared.global.total();
        let first = self.shared.global.first_timestamp_ns()?;
        window::global_rate(total, first, self.shared.clock.now_ns())
    }

    /// Interval statistics over the last `window` global beats.
    pub fn window_stats(&self, window: usize) -> Option<WindowStats> {
        let records = self
            .shared
            .global
            .last_n(self.shared.effective_window(window));
        window::window_stats(&records)
    }

    /// The last `n` global heartbeats in chronological order.
    pub fn history(&self, n: usize) -> Vec<HeartbeatRecord> {
        self.shared.global.last_n(n)
    }

    /// The last `n` local heartbeats of a specific thread, if that thread has
    /// produced any.
    pub fn history_of_thread(&self, thread: BeatThreadId, n: usize) -> Vec<HeartbeatRecord> {
        match self.shared.locals.read().get(&thread.index()) {
            Some(buffer) => buffer.last_n(n),
            None => Vec::new(),
        }
    }

    /// Threads that have produced local beats.
    pub fn local_threads(&self) -> Vec<BeatThreadId> {
        let mut ids: Vec<BeatThreadId> = self
            .shared
            .locals
            .read()
            .keys()
            .map(|&id| BeatThreadId(id))
            .collect();
        ids.sort();
        ids
    }

    /// Total number of global beats produced so far.
    pub fn total_beats(&self) -> u64 {
        self.shared.global.total()
    }

    /// Minimum target rate declared by the application (negative if unset).
    pub fn target_min(&self) -> f64 {
        self.shared.target.min_bps()
    }

    /// Maximum target rate declared by the application (negative if unset).
    pub fn target_max(&self) -> f64 {
        self.shared.target.max_bps()
    }

    /// The declared target window, if any.
    pub fn target(&self) -> Option<(f64, f64)> {
        self.shared.target.range()
    }

    /// Classifies the current rate (over `window` beats) against the
    /// application's declared target.
    pub fn target_status(&self, window: usize) -> TargetStatus {
        match self.current_rate(window) {
            None => TargetStatus::NoTarget,
            Some(rate) => self.shared.target.classify(rate),
        }
    }

    /// Timestamp of the most recent global beat, if any.
    pub fn last_beat_ns(&self) -> Option<u64> {
        self.shared.global.latest().map(|r| r.timestamp_ns)
    }

    /// Nanoseconds elapsed since the most recent global beat.
    pub fn time_since_last_beat_ns(&self) -> Option<u64> {
        let last = self.last_beat_ns()?;
        Some(self.shared.clock.now_ns().saturating_sub(last))
    }

    /// Health triage: has the application ever beat, and is its last beat
    /// more recent than `stale_after_ns`?
    pub fn health(&self, stale_after_ns: u64) -> HealthStatus {
        match self.time_since_last_beat_ns() {
            None => HealthStatus::NeverBeat,
            Some(age) if age > stale_after_ns => HealthStatus::Stalled,
            Some(_) => HealthStatus::Alive,
        }
    }

    /// Current time on the observed application's clock (ns).
    pub fn now_ns(&self) -> u64 {
        self.shared.clock.now_ns()
    }
}

impl crate::observe::Observe for HeartbeatReader {
    fn name(&self) -> &str {
        HeartbeatReader::name(self)
    }

    fn snapshot(&self) -> Option<crate::observe::ObservedSnapshot> {
        Some(crate::observe::ObservedSnapshot {
            total_beats: self.total_beats(),
            rate_bps: self.current_rate(0),
            target: self.target(),
            dropped: 0, // the in-process buffers never shed beats
            alive: self.health(crate::observe::DEFAULT_STALE_NS) == HealthStatus::Alive,
        })
    }

    fn health(&self) -> crate::observe::ObservedHealth {
        use crate::observe::ObservedHealth;
        match HeartbeatReader::health(self, crate::observe::DEFAULT_STALE_NS) {
            HealthStatus::NeverBeat => ObservedHealth::NoSignal,
            HealthStatus::Stalled => ObservedHealth::Stalled,
            HealthStatus::Alive => {
                // Mirror the collector's rate-below-target anomaly so local
                // and remote observers agree on what "degraded" means.
                match (self.current_rate(0), self.target()) {
                    (Some(rate), Some((min, _))) if rate < min => ObservedHealth::Degraded,
                    _ => ObservedHealth::Healthy,
                }
            }
        }
    }

    fn rate(&self, window: usize) -> Option<f64> {
        self.current_rate(window)
    }

    fn beats_since(&self, seen_total: u64) -> Option<Vec<crate::observe::ObservedBeat>> {
        let total = self.total_beats();
        let fresh = total.saturating_sub(seen_total);
        if fresh == 0 {
            return Some(Vec::new());
        }
        // The bounded history may have already evicted the oldest of the
        // fresh beats; return what is retained (sequence numbers make any
        // gap visible to the consumer).
        Some(
            self.history(fresh.min(usize::MAX as u64) as usize)
                .into_iter()
                .filter(|record| record.seq >= seen_total)
                .map(|record| crate::observe::ObservedBeat {
                    record,
                    scope: crate::backend::BeatScope::Global,
                })
                .collect(),
        )
    }

    fn subscribe(
        &self,
        filter: &crate::observe::ObserveFilter,
    ) -> Result<crate::observe::ObserveStream, crate::observe::ObserveError> {
        // No push plane in-process: synthesize the identical event stream
        // from polling (cheap — the reader shares the producer's buffers).
        Ok(crate::observe::polling_stream(self.clone(), filter.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HeartbeatBuilder;
    use crate::clock::ManualClock;
    use crate::record::Tag;
    use crate::target::TargetStatus;
    use std::sync::Arc;

    fn setup() -> (crate::Heartbeat, HeartbeatReader, ManualClock) {
        let clock = ManualClock::new();
        let hb = HeartbeatBuilder::new("observed-app")
            .window(10)
            .clock(Arc::new(clock.clone()))
            .build()
            .unwrap();
        let reader = hb.reader();
        (hb, reader, clock)
    }

    #[test]
    fn reader_sees_producer_beats() {
        let (hb, reader, clock) = setup();
        assert_eq!(reader.total_beats(), 0);
        for _ in 0..5 {
            clock.advance_ns(100_000_000);
            hb.heartbeat();
        }
        assert_eq!(reader.total_beats(), 5);
        assert!((reader.current_rate(0).unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(reader.history(2).len(), 2);
        assert_eq!(reader.name(), "observed-app");
        assert_eq!(reader.default_window(), 10);
    }

    #[test]
    fn reader_sees_targets() {
        let (hb, reader, clock) = setup();
        assert!(reader.target().is_none());
        hb.set_target_rate(2.5, 3.5).unwrap();
        assert_eq!(reader.target(), Some((2.5, 3.5)));
        assert_eq!(reader.target_min(), 2.5);
        assert_eq!(reader.target_max(), 3.5);

        // Produce beats at 10/s -> above the target window.
        for _ in 0..6 {
            clock.advance_ns(100_000_000);
            hb.heartbeat();
        }
        assert_eq!(reader.target_status(0), TargetStatus::AboveTarget);
    }

    #[test]
    fn reader_health_triage() {
        let (hb, reader, clock) = setup();
        assert_eq!(reader.health(1_000_000), HealthStatus::NeverBeat);
        clock.advance_ns(10);
        hb.heartbeat();
        assert_eq!(reader.health(1_000_000), HealthStatus::Alive);
        clock.advance_ns(2_000_000);
        assert_eq!(reader.health(1_000_000), HealthStatus::Stalled);
        assert_eq!(reader.time_since_last_beat_ns(), Some(2_000_000));
    }

    #[test]
    fn reader_local_thread_histories() {
        let (hb, reader, clock) = setup();
        clock.advance_ns(10);
        hb.heartbeat_local(Tag::new(7));
        let threads = reader.local_threads();
        assert_eq!(threads.len(), 1);
        let hist = reader.history_of_thread(threads[0], 10);
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].tag, Tag::new(7));
        // Unknown thread yields an empty history.
        assert!(reader
            .history_of_thread(crate::record::BeatThreadId(9_999), 10)
            .is_empty());
    }

    #[test]
    fn reader_window_stats_and_average() {
        let (hb, reader, clock) = setup();
        for _ in 0..10 {
            clock.advance_ns(50_000_000); // 20 beats/s
            hb.heartbeat();
        }
        let stats = reader.window_stats(0).unwrap();
        assert!((stats.rate_bps - 20.0).abs() < 1e-9);
        assert!(reader.global_average_rate().unwrap() > 20.0);
        assert!(reader.now_ns() >= reader.last_beat_ns().unwrap());
    }

    #[test]
    fn reader_clone_is_independent_handle() {
        let (hb, reader, clock) = setup();
        let reader2 = reader.clone();
        clock.advance_ns(5);
        hb.heartbeat();
        assert_eq!(reader.total_beats(), 1);
        assert_eq!(reader2.total_beats(), 1);
    }
}
