//! Heartbeat history buffers.
//!
//! The paper's API returns the last *n* heartbeats (`HB_get_history`) and
//! computes rates over the last *window* heartbeats (`HB_current_rate`), and
//! suggests storing heartbeats "efficiently ... in a circular buffer". Two
//! buffer implementations are provided:
//!
//! * [`MutexRing`] — a straightforward mutex-protected circular buffer. This
//!   mirrors the reference C implementation's mutex-around-a-log design and is
//!   the easiest implementation to reason about.
//! * [`AtomicRing`] — a per-slot seqlock ring. Producers never block each
//!   other (a beat is a handful of atomic stores), and observers obtain
//!   torn-free snapshots by validating per-slot sequence stamps. This is the
//!   default buffer because `HB_heartbeat` sits on application hot paths.
//!
//! Both implement [`HistoryBuffer`] so the rest of the framework is agnostic.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::record::{BeatThreadId, HeartbeatRecord, Tag};

/// Default number of heartbeat records retained by a buffer.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Abstraction over heartbeat history storage.
///
/// A buffer assigns each pushed beat a dense sequence number (0-based) and
/// retains the most recent `capacity()` records.
pub trait HistoryBuffer: Send + Sync + std::fmt::Debug {
    /// Records a heartbeat and returns its sequence number.
    fn push(&self, timestamp_ns: u64, tag: Tag, thread: BeatThreadId) -> u64;

    /// Total number of heartbeats ever pushed.
    fn total(&self) -> u64;

    /// Maximum number of records retained.
    fn capacity(&self) -> usize;

    /// Returns up to the last `n` records in chronological order.
    ///
    /// Fewer records may be returned if fewer have been produced, if `n`
    /// exceeds the capacity, or (for lock-free buffers) if the oldest
    /// requested records were overwritten while the snapshot was being taken.
    fn last_n(&self, n: usize) -> Vec<HeartbeatRecord>;

    /// Returns the most recent record, if any.
    fn latest(&self) -> Option<HeartbeatRecord> {
        self.last_n(1).pop()
    }

    /// Timestamp of the first heartbeat ever recorded, if any.
    fn first_timestamp_ns(&self) -> Option<u64>;
}

/// A mutex-protected circular buffer of heartbeat records.
#[derive(Debug)]
pub struct MutexRing {
    inner: Mutex<MutexRingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct MutexRingInner {
    records: Vec<HeartbeatRecord>,
    /// Index of the logical start of the ring within `records`.
    start: usize,
    total: u64,
    first_timestamp_ns: Option<u64>,
}

impl MutexRing {
    /// Creates a ring retaining at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        MutexRing {
            inner: Mutex::new(MutexRingInner {
                records: Vec::with_capacity(capacity),
                start: 0,
                total: 0,
                first_timestamp_ns: None,
            }),
            capacity,
        }
    }
}

impl HistoryBuffer for MutexRing {
    fn push(&self, timestamp_ns: u64, tag: Tag, thread: BeatThreadId) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.total;
        let record = HeartbeatRecord::new(seq, timestamp_ns, tag, thread);
        if inner.records.len() < self.capacity {
            inner.records.push(record);
        } else {
            let start = inner.start;
            inner.records[start] = record;
            inner.start = (start + 1) % self.capacity;
        }
        inner.total += 1;
        if inner.first_timestamp_ns.is_none() {
            inner.first_timestamp_ns = Some(timestamp_ns);
        }
        seq
    }

    fn total(&self) -> u64 {
        self.inner.lock().total
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn last_n(&self, n: usize) -> Vec<HeartbeatRecord> {
        let inner = self.inner.lock();
        let len = inner.records.len();
        let take = n.min(len);
        let mut out = Vec::with_capacity(take);
        for i in (len - take)..len {
            let idx = (inner.start + i) % len.max(1);
            out.push(inner.records[idx]);
        }
        out
    }

    fn first_timestamp_ns(&self) -> Option<u64> {
        self.inner.lock().first_timestamp_ns
    }
}

/// One slot of the [`AtomicRing`].
///
/// `state` follows a per-slot seqlock protocol: for the record with sequence
/// number `s` stored in this slot, the stable state value is `2*s + 2`; while
/// the writer is filling the slot the state is `2*s + 1` (odd). A state of 0
/// means the slot has never been written.
#[derive(Debug)]
struct Slot {
    state: AtomicU64,
    timestamp_ns: AtomicU64,
    tag: AtomicU64,
    thread: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            state: AtomicU64::new(0),
            timestamp_ns: AtomicU64::new(0),
            tag: AtomicU64::new(0),
            thread: AtomicU64::new(0),
        }
    }

    #[inline]
    fn stable_state(seq: u64) -> u64 {
        seq.wrapping_mul(2).wrapping_add(2)
    }

    #[inline]
    fn writing_state(seq: u64) -> u64 {
        seq.wrapping_mul(2).wrapping_add(1)
    }

    /// Writes a record for sequence `seq` into the slot.
    fn write(&self, seq: u64, timestamp_ns: u64, tag: Tag, thread: BeatThreadId) {
        // Publish "write in progress" before touching the payload so a reader
        // that observes partially updated fields will also observe an odd (or
        // different) state and discard the read.
        self.state.store(Self::writing_state(seq), Ordering::Release);
        fence(Ordering::Release);
        self.timestamp_ns.store(timestamp_ns, Ordering::Relaxed);
        self.tag.store(tag.value(), Ordering::Relaxed);
        self.thread.store(thread.index() as u64, Ordering::Relaxed);
        // Publish the completed record. The release store orders the payload
        // stores before the state becomes visible as stable.
        self.state.store(Self::stable_state(seq), Ordering::Release);
    }

    /// Attempts to read the record with sequence `seq` from this slot.
    fn read(&self, seq: u64) -> Option<HeartbeatRecord> {
        let expected = Self::stable_state(seq);
        let before = self.state.load(Ordering::Acquire);
        if before != expected {
            return None;
        }
        let timestamp_ns = self.timestamp_ns.load(Ordering::Relaxed);
        let tag = self.tag.load(Ordering::Relaxed);
        let thread = self.thread.load(Ordering::Relaxed);
        // The acquire fence orders the payload loads before the validation
        // load, completing the seqlock read protocol.
        fence(Ordering::Acquire);
        let after = self.state.load(Ordering::Relaxed);
        if after != expected {
            return None;
        }
        Some(HeartbeatRecord::new(
            seq,
            timestamp_ns,
            Tag::new(tag),
            BeatThreadId(thread as u32),
        ))
    }
}

/// A lock-free circular buffer of heartbeat records.
///
/// Writers claim a sequence number with a single `fetch_add` and then publish
/// the record into `slots[seq % capacity]` using a per-slot seqlock. Readers
/// never block writers; a reader racing with a wrap-around simply sees fewer
/// old records.
#[derive(Debug)]
pub struct AtomicRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    first_timestamp_ns: AtomicU64,
    capacity: usize,
}

/// Sentinel meaning "no first timestamp recorded yet".
const NO_TIMESTAMP: u64 = u64::MAX;

impl AtomicRing {
    /// Creates a ring retaining at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::empty()).collect();
        AtomicRing {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            first_timestamp_ns: AtomicU64::new(NO_TIMESTAMP),
            capacity,
        }
    }

    /// Creates a ring with [`DEFAULT_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl HistoryBuffer for AtomicRing {
    fn push(&self, timestamp_ns: u64, tag: Tag, thread: BeatThreadId) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        if seq == 0 {
            // Only the very first beat records the stream origin; a relaxed
            // CAS is enough because exactly one thread owns seq 0.
            let _ = self.first_timestamp_ns.compare_exchange(
                NO_TIMESTAMP,
                timestamp_ns,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        let slot = &self.slots[(seq % self.capacity as u64) as usize];
        slot.write(seq, timestamp_ns, tag, thread);
        seq
    }

    fn total(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn last_n(&self, n: usize) -> Vec<HeartbeatRecord> {
        let head = self.head.load(Ordering::Acquire);
        if head == 0 || n == 0 {
            return Vec::new();
        }
        let available = head.min(self.capacity as u64);
        let take = (n as u64).min(available);
        let start = head - take;
        let mut out = Vec::with_capacity(take as usize);
        for seq in start..head {
            let slot = &self.slots[(seq % self.capacity as u64) as usize];
            match slot.read(seq) {
                Some(record) => out.push(record),
                // The record was overwritten (or is still being written)
                // while we were reading; older entries in this range are
                // also unreliable, so drop what we collected so far and
                // keep only newer, still-valid records.
                None => out.clear(),
            }
        }
        out
    }

    fn first_timestamp_ns(&self) -> Option<u64> {
        let ts = self.first_timestamp_ns.load(Ordering::Acquire);
        if ts == NO_TIMESTAMP {
            None
        } else {
            Some(ts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn push_n(buffer: &dyn HistoryBuffer, n: u64) {
        for i in 0..n {
            buffer.push(i * 1_000, Tag::new(i), BeatThreadId(0));
        }
    }

    fn check_basic(buffer: &dyn HistoryBuffer) {
        assert_eq!(buffer.total(), 0);
        assert!(buffer.latest().is_none());
        assert!(buffer.last_n(10).is_empty());
        assert!(buffer.first_timestamp_ns().is_none());

        push_n(buffer, 5);
        assert_eq!(buffer.total(), 5);
        assert_eq!(buffer.first_timestamp_ns(), Some(0));
        let last = buffer.latest().unwrap();
        assert_eq!(last.seq, 4);
        assert_eq!(last.timestamp_ns, 4_000);
        assert_eq!(last.tag, Tag::new(4));

        let hist = buffer.last_n(3);
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].seq, 2);
        assert_eq!(hist[2].seq, 4);
        // Chronological order.
        assert!(hist.windows(2).all(|w| w[0].timestamp_ns <= w[1].timestamp_ns));
    }

    fn check_wraparound(buffer: &dyn HistoryBuffer, capacity: usize) {
        push_n(buffer, (capacity as u64) * 3 + 1);
        assert_eq!(buffer.total(), capacity as u64 * 3 + 1);
        let hist = buffer.last_n(capacity * 10);
        assert_eq!(hist.len(), capacity);
        // Oldest retained record.
        assert_eq!(hist[0].seq, capacity as u64 * 2 + 1);
        // Newest record.
        assert_eq!(hist[capacity - 1].seq, capacity as u64 * 3);
        // First timestamp refers to the very first beat, not the retained one.
        assert_eq!(buffer.first_timestamp_ns(), Some(0));
    }

    #[test]
    fn mutex_ring_basic() {
        check_basic(&MutexRing::new(16));
    }

    #[test]
    fn atomic_ring_basic() {
        check_basic(&AtomicRing::new(16));
    }

    #[test]
    fn mutex_ring_wraparound() {
        check_wraparound(&MutexRing::new(8), 8);
    }

    #[test]
    fn atomic_ring_wraparound() {
        check_wraparound(&AtomicRing::new(8), 8);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        assert_eq!(MutexRing::new(0).capacity(), 1);
        assert_eq!(AtomicRing::new(0).capacity(), 1);
    }

    #[test]
    fn atomic_ring_default_capacity() {
        assert_eq!(AtomicRing::with_default_capacity().capacity(), DEFAULT_CAPACITY);
    }

    #[test]
    fn last_n_zero_is_empty() {
        let ring = AtomicRing::new(8);
        push_n(&ring, 4);
        assert!(ring.last_n(0).is_empty());
    }

    #[test]
    fn single_slot_ring_keeps_latest() {
        let ring = AtomicRing::new(1);
        push_n(&ring, 10);
        let hist = ring.last_n(5);
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].seq, 9);
    }

    #[test]
    fn concurrent_producers_assign_unique_seq() {
        let ring = Arc::new(AtomicRing::new(1 << 14));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        ring.push(i, Tag::new(i), BeatThreadId(t));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.total(), 8_000);
        let hist = ring.last_n(8_000);
        assert_eq!(hist.len(), 8_000);
        // Sequence numbers must be dense and unique.
        for (i, record) in hist.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
        }
    }

    #[test]
    fn concurrent_reader_never_sees_torn_records() {
        // Writers continuously overwrite a small ring while a reader
        // snapshots; every record returned must be self-consistent
        // (timestamp == tag by construction).
        let ring = Arc::new(AtomicRing::new(64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    ring.push(i, Tag::new(i), BeatThreadId(0));
                    i += 1;
                }
            })
        };

        for _ in 0..2_000 {
            for record in ring.last_n(64) {
                assert_eq!(record.timestamp_ns, record.tag.value());
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn mutex_ring_concurrent_producers() {
        let ring = Arc::new(MutexRing::new(1 << 13));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        ring.push(i, Tag::new(i), BeatThreadId(t));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.total(), 4_000);
        assert_eq!(ring.last_n(10_000).len(), 4_000);
    }
}
