//! The unified observer API: one [`Observe`] trait across every transport.
//!
//! The paper's central claim is that *external* observers — schedulers,
//! system software, other applications — can consume a program's registered
//! heartbeats. This workspace grew three observer paths (the in-process
//! [`HeartbeatReader`](crate::HeartbeatReader), the `hb-shm` cross-process
//! readers, and `hb-net`'s remote collector client), and before this module
//! each exposed its own, divergent, poll-only surface. [`Observe`] is the
//! common denominator:
//!
//! * [`Observe::snapshot`] — one coherent point-in-time view
//!   ([`ObservedSnapshot`]: totals, windowed rate, declared target,
//!   liveness).
//! * [`Observe::health`] — the coarse four-level triage
//!   ([`ObservedHealth`]), aligned with the collector-side anomaly detector
//!   and `control`'s `HealthLevel`.
//! * [`Observe::subscribe`] — a **push subscription**: an [`ObserveStream`]
//!   of [`ObserveEvent`]s (snapshots, health transitions, raw beats),
//!   filtered by an [`ObserveFilter`]. Transports with a real push plane
//!   (the network collector) deliver collector-originated events; local
//!   transports synthesize the same events from polling via
//!   [`polling_stream`], so consumers are written once and run against any
//!   transport.
//!
//! `control`'s `RateSource` and `HealthSource` have blanket implementations
//! for every `T: Observe`, so a `RateMonitor` or `ControlLoop` drives
//! unchanged from a local reader, a shared-memory segment, or a remote
//! collector.

use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

use crate::backend::BeatScope;
use crate::record::HeartbeatRecord;

/// Default staleness horizon used when a transport has no configured one:
/// an application silent longer than this is considered not alive
/// (matches the collector's default `stale_after`).
pub const DEFAULT_STALE_NS: u64 = 5_000_000_000;

/// Bitmask of event classes an observer wants pushed.
///
/// The numeric bit layout is stable — it is carried verbatim in `hb-net`'s
/// `Subscribe` wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interest(u8);

impl Interest {
    /// Periodic application snapshots (totals, rate, target).
    pub const SNAPSHOTS: Interest = Interest(0b001);
    /// Health-transition events (`healthy → stalled`, …).
    pub const HEALTH: Interest = Interest(0b010);
    /// Raw heartbeat records as they arrive.
    pub const BEATS: Interest = Interest(0b100);
    /// Every event class.
    pub const ALL: Interest = Interest(0b111);
    /// No event class (an inert subscription).
    pub const NONE: Interest = Interest(0);

    /// Builds a mask from its stable wire encoding; `None` if unknown bits
    /// are set.
    pub fn from_bits(bits: u8) -> Option<Interest> {
        (bits & !Self::ALL.0 == 0).then_some(Interest(bits))
    }

    /// The stable wire encoding of the mask.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True if every class in `other` is requested by `self`.
    pub fn contains(self, other: Interest) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no class is requested.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// What a subscription should deliver, and how often.
#[derive(Debug, Clone)]
pub struct ObserveFilter {
    /// Event classes wanted ([`Interest::SNAPSHOTS`] / [`Interest::HEALTH`]
    /// / [`Interest::BEATS`], OR-combined).
    pub interests: Interest,
    /// Minimum spacing between snapshot updates and health re-assessments
    /// for one application. Raw-beat events are *not* throttled by this
    /// (they are bounded by queue capacity instead), so beat counts stay
    /// exact.
    pub min_interval: Duration,
    /// For transports without their own stall detector (local reader,
    /// shared memory): a stream whose beat total stops advancing for this
    /// long is reported [`ObservedHealth::Stalled`]. Remote transports use
    /// the collector's health window instead.
    pub stall_after: Duration,
}

impl ObserveFilter {
    /// A filter for `interests` with a 100 ms minimum update interval and
    /// the default staleness horizon.
    pub fn new(interests: Interest) -> Self {
        ObserveFilter {
            interests,
            min_interval: Duration::from_millis(100),
            stall_after: Duration::from_nanos(DEFAULT_STALE_NS),
        }
    }

    /// Sets the minimum update interval.
    pub fn min_interval(mut self, interval: Duration) -> Self {
        self.min_interval = interval;
        self
    }

    /// Sets the stall horizon used by polling transports.
    pub fn stall_after(mut self, after: Duration) -> Self {
        self.stall_after = after;
        self
    }
}

impl Default for ObserveFilter {
    fn default() -> Self {
        ObserveFilter::new(Interest::SNAPSHOTS | Interest::HEALTH)
    }
}

/// One coherent point-in-time view of an observed application, independent
/// of the transport it was read through.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedSnapshot {
    /// Global (application-wide) beats produced so far.
    pub total_beats: u64,
    /// Windowed heart rate in beats/s, if at least two beats are visible.
    pub rate_bps: Option<f64>,
    /// The application's declared target range, if any.
    pub target: Option<(f64, f64)>,
    /// Beats shed before reaching this observer's transport (producer-side
    /// backpressure); `0` where the transport cannot lose beats.
    pub dropped: u64,
    /// False once the stream has been silent past the transport's staleness
    /// horizon.
    pub alive: bool,
}

/// Coarse four-level health triage, transport-neutral.
///
/// Mirrors the collector-side anomaly detector's classification and
/// `control::HealthLevel`; the numeric encoding (0–3, higher is healthier)
/// is stable across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ObservedHealth {
    /// No beat has ever been observed (or the observation channel failed).
    NoSignal = 0,
    /// Beats used to arrive but have stopped past the stall horizon.
    Stalled = 1,
    /// Beats arrive but the stream shows an anomaly (e.g. rate below the
    /// declared target).
    Degraded = 2,
    /// Beats arrive and nothing looks wrong.
    Healthy = 3,
}

impl ObservedHealth {
    /// The stable numeric encoding.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes the stable numeric encoding.
    pub fn from_u8(value: u8) -> Option<ObservedHealth> {
        match value {
            0 => Some(ObservedHealth::NoSignal),
            1 => Some(ObservedHealth::Stalled),
            2 => Some(ObservedHealth::Degraded),
            3 => Some(ObservedHealth::Healthy),
            _ => None,
        }
    }
}

/// One heartbeat record with its scope, as carried in a beats event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedBeat {
    /// The heartbeat record.
    pub record: HeartbeatRecord,
    /// Global (application-wide) or local (per-thread) stream.
    pub scope: BeatScope,
}

/// One pushed observation event.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveEvent {
    /// The application the event describes.
    pub app: String,
    /// What happened.
    pub kind: ObserveEventKind,
}

/// The payload of an [`ObserveEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum ObserveEventKind {
    /// A periodic snapshot update.
    Snapshot(ObservedSnapshot),
    /// The health classification changed.
    Health {
        /// Classification before the transition.
        from: ObservedHealth,
        /// Classification after the transition.
        to: ObservedHealth,
    },
    /// Raw beats, in production order.
    Beats {
        /// The records, with their scopes.
        beats: Vec<ObservedBeat>,
        /// The producer's cumulative drop counter at this batch.
        dropped_total: u64,
    },
}

/// Why an observation operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObserveError {
    /// The transport (or the peer it talks to) cannot provide the requested
    /// operation — e.g. subscribing through a collector that predates the
    /// subscription protocol.
    Unsupported(String),
    /// The observation channel failed (connection lost, segment gone).
    Transport(String),
}

impl fmt::Display for ObserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObserveError::Unsupported(msg) => write!(f, "observation unsupported: {msg}"),
            ObserveError::Transport(msg) => write!(f, "observation transport failed: {msg}"),
        }
    }
}

impl std::error::Error for ObserveError {}

/// Transport-specific event source behind an [`ObserveStream`].
pub trait EventStream: Send {
    /// Returns the next pending event without blocking, or `None` if none
    /// is ready yet.
    fn try_next(&mut self) -> Option<ObserveEvent>;

    /// Waits up to `timeout` for an event.
    fn wait_next(&mut self, timeout: Duration) -> Option<ObserveEvent>;

    /// True once the stream can never produce another event (subscription
    /// cancelled, connection lost). Polling streams never close.
    fn is_closed(&self) -> bool {
        false
    }
}

/// A stream of pushed [`ObserveEvent`]s — the handle returned by
/// [`Observe::subscribe`].
///
/// Use [`try_next`](Self::try_next) from a control loop that must not
/// block, [`wait_next`](Self::wait_next) with a deadline, or iterate (each
/// iteration blocks until an event arrives; iteration ends when the stream
/// closes).
pub struct ObserveStream {
    inner: Box<dyn EventStream>,
}

impl fmt::Debug for ObserveStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserveStream")
            .field("closed", &self.inner.is_closed())
            .finish_non_exhaustive()
    }
}

impl ObserveStream {
    /// Wraps a transport-specific event source.
    pub fn new(inner: Box<dyn EventStream>) -> Self {
        ObserveStream { inner }
    }

    /// Returns the next pending event without blocking.
    pub fn try_next(&mut self) -> Option<ObserveEvent> {
        self.inner.try_next()
    }

    /// Waits up to `timeout` for an event.
    pub fn wait_next(&mut self, timeout: Duration) -> Option<ObserveEvent> {
        self.inner.wait_next(timeout)
    }

    /// True once the stream can never produce another event.
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }
}

impl Iterator for ObserveStream {
    type Item = ObserveEvent;

    /// Blocks until the next event arrives; `None` once the stream closes.
    fn next(&mut self) -> Option<ObserveEvent> {
        loop {
            if let Some(event) = self.inner.wait_next(Duration::from_millis(250)) {
                return Some(event);
            }
            if self.inner.is_closed() {
                return None;
            }
        }
    }
}

/// The unified observer interface over one application's heartbeat stream.
///
/// Implemented by the in-process [`HeartbeatReader`](crate::HeartbeatReader),
/// `hb-shm`'s `ShmObserver`, and `hb-net`'s `RemoteApp`, so observation code
/// — control loops, dashboards, schedulers — is written once against this
/// trait and runs over any transport. `control` provides blanket
/// `RateSource`/`HealthSource` implementations for every `T: Observe`.
pub trait Observe {
    /// Name of the observed application.
    fn name(&self) -> &str;

    /// One coherent point-in-time view, or `None` if the application is
    /// unknown to the transport (never registered, collector unreachable).
    fn snapshot(&self) -> Option<ObservedSnapshot>;

    /// Coarse health triage of the stream. Transports that cannot judge
    /// health degrade to [`ObservedHealth::NoSignal`] when their channel
    /// fails, mirroring how [`snapshot`](Self::snapshot) returns `None`.
    fn health(&self) -> ObservedHealth;

    /// Windowed heart rate in beats/s (`0` = the source's default window).
    ///
    /// The default reads the snapshot's rate; transports that can re-window
    /// (the local reader) override it, transports that cannot (a remote
    /// collector tracks the producer-declared window) keep the default.
    fn rate(&self, window: usize) -> Option<f64> {
        let _ = window;
        self.snapshot().and_then(|s| s.rate_bps)
    }

    /// True if [`rate`](Self::rate) honors a non-default window. Remote
    /// transports return `false` (the collector tracks only the
    /// producer-declared window), which tells generic samplers to take the
    /// snapshot's rate instead of issuing a second — necessarily identical
    /// and possibly torn — round trip.
    fn can_rewindow(&self) -> bool {
        true
    }

    /// The global beats with sequence numbers `>= seen_total`, if the
    /// transport retains them — the hook [`polling_stream`] uses to
    /// synthesize raw-beat events. `None` when history is unavailable.
    fn beats_since(&self, seen_total: u64) -> Option<Vec<ObservedBeat>> {
        let _ = seen_total;
        None
    }

    /// Opens a push subscription filtered by `filter`.
    ///
    /// Transports with a real push plane deliver events originated at the
    /// source; polling transports synthesize the identical event stream
    /// (see [`polling_stream`]). Fails with [`ObserveError::Unsupported`]
    /// when the transport (or its peer) cannot subscribe at all.
    fn subscribe(&self, filter: &ObserveFilter) -> Result<ObserveStream, ObserveError>;
}

/// Builds an [`ObserveStream`] for a poll-only transport by sampling
/// `source` and synthesizing the push events a native plane would emit:
/// snapshot updates when beats advance (rate-limited by
/// [`ObserveFilter::min_interval`]), health transitions whenever the
/// classification changes (including a synthesized
/// [`Stalled`](ObservedHealth::Stalled) when the beat total stops advancing
/// for [`ObserveFilter::stall_after`]), and raw beats via
/// [`Observe::beats_since`].
///
/// The stream performs no background work: events materialize inside
/// `try_next`/`wait_next` calls, so an abandoned stream costs nothing.
///
/// Like the remote push plane, the stream starts *at the present*: beats
/// produced before the subscription are not replayed (the first snapshot
/// and health events still announce the current state).
pub fn polling_stream<T>(source: T, filter: ObserveFilter) -> ObserveStream
where
    T: Observe + Send + 'static,
{
    // Prime at the current total so a beats-interest subscription delivers
    // only what happens next — a remote subscriber gets exactly the same.
    let last_total = source.snapshot().map(|s| s.total_beats).unwrap_or(0);
    ObserveStream::new(Box::new(PollingStream {
        source,
        filter,
        pending: VecDeque::new(),
        last_emit: None,
        last_total,
        last_health: ObservedHealth::NoSignal,
        last_progress: Instant::now(),
    }))
}

/// Poll-to-push adapter behind [`polling_stream`].
struct PollingStream<T: Observe + Send> {
    source: T,
    filter: ObserveFilter,
    pending: VecDeque<ObserveEvent>,
    last_emit: Option<Instant>,
    last_total: u64,
    last_health: ObservedHealth,
    /// When the beat total last advanced (observer clock), for synthesizing
    /// stall transitions on transports without their own detector.
    last_progress: Instant,
}

impl<T: Observe + Send> PollingStream<T> {
    fn poll(&mut self) {
        let now = Instant::now();
        let snapshot = self.source.snapshot();
        let total = snapshot.as_ref().map(|s| s.total_beats).unwrap_or(0);
        let progressed = total != self.last_total;
        if progressed {
            self.last_progress = now;
        }

        let mut health = self.source.health();
        // Synthesize the stall: a transport that only sees a shared buffer
        // cannot judge producer liveness, but "the total stopped advancing"
        // is observable from any transport.
        if !progressed
            && total > 0
            && health > ObservedHealth::Stalled
            && now.duration_since(self.last_progress) >= self.filter.stall_after
        {
            health = ObservedHealth::Stalled;
        }

        let app = self.source.name().to_string();
        if self.filter.interests.contains(Interest::BEATS) && total > self.last_total {
            if let Some(beats) = self.source.beats_since(self.last_total) {
                if !beats.is_empty() {
                    let dropped_total = snapshot.as_ref().map(|s| s.dropped).unwrap_or(0);
                    self.pending.push_back(ObserveEvent {
                        app: app.clone(),
                        kind: ObserveEventKind::Beats {
                            beats,
                            dropped_total,
                        },
                    });
                }
            }
        }
        if self.filter.interests.contains(Interest::HEALTH) && health != self.last_health {
            self.pending.push_back(ObserveEvent {
                app: app.clone(),
                kind: ObserveEventKind::Health {
                    from: self.last_health,
                    to: health,
                },
            });
            self.last_health = health;
        }
        if self.filter.interests.contains(Interest::SNAPSHOTS) && progressed {
            if let Some(snapshot) = snapshot {
                self.pending.push_back(ObserveEvent {
                    app,
                    kind: ObserveEventKind::Snapshot(snapshot),
                });
            }
        }
        self.last_total = total;
        if !self.pending.is_empty() {
            self.last_emit = Some(now);
        }
    }
}

impl<T: Observe + Send> EventStream for PollingStream<T> {
    fn try_next(&mut self) -> Option<ObserveEvent> {
        if let Some(event) = self.pending.pop_front() {
            return Some(event);
        }
        if let Some(at) = self.last_emit {
            if at.elapsed() < self.filter.min_interval {
                return None;
            }
        }
        self.poll();
        self.pending.pop_front()
    }

    fn wait_next(&mut self, timeout: Duration) -> Option<ObserveEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(event) = self.try_next() {
                return Some(event);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn interest_mask_roundtrips_and_combines() {
        let mask = Interest::SNAPSHOTS | Interest::BEATS;
        assert!(mask.contains(Interest::SNAPSHOTS));
        assert!(mask.contains(Interest::BEATS));
        assert!(!mask.contains(Interest::HEALTH));
        assert_eq!(Interest::from_bits(mask.bits()), Some(mask));
        assert_eq!(Interest::from_bits(0b1000), None, "unknown bits rejected");
        assert!(Interest::NONE.is_empty());
        assert!(Interest::ALL.contains(mask));
    }

    #[test]
    fn observed_health_encoding_is_stable() {
        for (level, value) in [
            (ObservedHealth::NoSignal, 0),
            (ObservedHealth::Stalled, 1),
            (ObservedHealth::Degraded, 2),
            (ObservedHealth::Healthy, 3),
        ] {
            assert_eq!(level.as_u8(), value);
            assert_eq!(ObservedHealth::from_u8(value), Some(level));
        }
        assert_eq!(ObservedHealth::from_u8(4), None);
        assert!(ObservedHealth::Healthy > ObservedHealth::Stalled);
    }

    /// A scripted source: totals and health controlled by the test.
    #[derive(Clone)]
    struct Scripted {
        total: Arc<AtomicU64>,
        rate: f64,
    }

    impl Observe for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }

        fn snapshot(&self) -> Option<ObservedSnapshot> {
            Some(ObservedSnapshot {
                total_beats: self.total.load(Ordering::Relaxed),
                rate_bps: Some(self.rate),
                target: None,
                dropped: 0,
                alive: true,
            })
        }

        fn health(&self) -> ObservedHealth {
            if self.total.load(Ordering::Relaxed) == 0 {
                ObservedHealth::NoSignal
            } else {
                ObservedHealth::Healthy
            }
        }

        fn subscribe(&self, filter: &ObserveFilter) -> Result<ObserveStream, ObserveError> {
            Ok(polling_stream(self.clone(), filter.clone()))
        }
    }

    #[test]
    fn polling_stream_synthesizes_snapshots_and_health_transitions() {
        let total = Arc::new(AtomicU64::new(0));
        let source = Scripted {
            total: Arc::clone(&total),
            rate: 10.0,
        };
        let filter = ObserveFilter::new(Interest::SNAPSHOTS | Interest::HEALTH)
            .min_interval(Duration::ZERO)
            .stall_after(Duration::from_millis(60));
        let mut stream = source.subscribe(&filter).unwrap();
        assert!(stream.try_next().is_none(), "nothing before the first beat");

        total.store(3, Ordering::Relaxed);
        let first = stream.try_next().expect("health transition");
        assert_eq!(
            first.kind,
            ObserveEventKind::Health {
                from: ObservedHealth::NoSignal,
                to: ObservedHealth::Healthy,
            }
        );
        match stream.try_next().expect("snapshot follows").kind {
            ObserveEventKind::Snapshot(snapshot) => assert_eq!(snapshot.total_beats, 3),
            other => panic!("expected snapshot, got {other:?}"),
        }

        // The total stops advancing: past stall_after the stream reports a
        // synthesized stall transition even though the source says Healthy.
        std::thread::sleep(Duration::from_millis(90));
        let stalled = stream
            .wait_next(Duration::from_millis(200))
            .expect("stall transition");
        assert_eq!(
            stalled.kind,
            ObserveEventKind::Health {
                from: ObservedHealth::Healthy,
                to: ObservedHealth::Stalled,
            }
        );

        // Recovery on fresh beats.
        total.store(4, Ordering::Relaxed);
        let recovered = stream
            .wait_next(Duration::from_millis(200))
            .expect("recovery transition");
        assert_eq!(
            recovered.kind,
            ObserveEventKind::Health {
                from: ObservedHealth::Stalled,
                to: ObservedHealth::Healthy,
            }
        );
    }

    #[test]
    fn polling_stream_respects_min_interval() {
        let total = Arc::new(AtomicU64::new(1));
        let source = Scripted {
            total: Arc::clone(&total),
            rate: 1.0,
        };
        let filter = ObserveFilter::new(Interest::SNAPSHOTS)
            .min_interval(Duration::from_secs(3600));
        let mut stream = source.subscribe(&filter).unwrap();
        // First poll emits (fresh progress, no prior emission)...
        total.store(2, Ordering::Relaxed);
        assert!(stream.try_next().is_some());
        // ...then the huge min_interval suppresses further polls even though
        // the total keeps advancing.
        total.store(3, Ordering::Relaxed);
        assert!(stream.try_next().is_none());
        assert!(!stream.is_closed(), "polling streams never close");
    }

    #[test]
    fn polling_stream_starts_at_the_present() {
        // 10k beats of history must not be replayed into a new stream.
        let total = Arc::new(AtomicU64::new(10_000));
        let source = Scripted {
            total: Arc::clone(&total),
            rate: 1.0,
        };
        let filter = ObserveFilter::new(Interest::SNAPSHOTS).min_interval(Duration::ZERO);
        let mut stream = source.subscribe(&filter).unwrap();
        assert!(
            stream.try_next().is_none(),
            "no event until something new happens"
        );
        total.store(10_001, Ordering::Relaxed);
        match stream.try_next().expect("fresh progress emits").kind {
            ObserveEventKind::Snapshot(snapshot) => {
                assert_eq!(snapshot.total_beats, 10_001)
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn filter_builder_sets_fields() {
        let filter = ObserveFilter::new(Interest::BEATS)
            .min_interval(Duration::from_millis(7))
            .stall_after(Duration::from_secs(9));
        assert_eq!(filter.interests, Interest::BEATS);
        assert_eq!(filter.min_interval, Duration::from_millis(7));
        assert_eq!(filter.stall_after, Duration::from_secs(9));
        let default = ObserveFilter::default();
        assert!(default.interests.contains(Interest::SNAPSHOTS));
        assert!(default.interests.contains(Interest::HEALTH));
    }

    #[test]
    fn observe_error_displays() {
        assert!(ObserveError::Unsupported("v2 peer".into())
            .to_string()
            .contains("v2 peer"));
        assert!(ObserveError::Transport("gone".into())
            .to_string()
            .contains("gone"));
    }
}
