//! Small statistics helpers used for heart-rate summaries and the evaluation
//! harness (means, variance, percentiles, online accumulation).

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by observers that want running statistics over heartbeat intervals
/// without retaining the whole history.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation of a slice (0 for fewer than two values).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Linear-interpolation percentile (`p` in `[0, 100]`) of a slice.
///
/// Returns `None` for an empty slice. The input does not need to be sorted.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Simple exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    /// Values outside the range are clamped.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// Adds a sample and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(next);
        next
    }

    /// Current average, if any samples have been pushed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn online_stats_matches_batch() {
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for v in values {
            s.push(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - mean(&values)).abs() < 1e-12);
        assert!((s.stddev() - stddev(&values)).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_matches_single_pass() {
        let a_values = [1.0, 2.0, 3.0];
        let b_values = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for v in a_values {
            a.push(v);
        }
        for v in b_values {
            b.push(v);
        }
        let mut combined = OnlineStats::new();
        for v in a_values.iter().chain(b_values.iter()) {
            combined.push(*v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-9);
        assert!((a.variance() - combined.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn mean_and_stddev_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[7.0]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn percentile_basic() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 50.0), Some(3.0));
        assert_eq!(percentile(&values, 100.0), Some(5.0));
        assert_eq!(percentile(&values, 25.0), Some(2.0));
    }

    #[test]
    fn percentile_interpolates() {
        let values = [0.0, 10.0];
        assert_eq!(percentile(&values, 50.0), Some(5.0));
        assert_eq!(percentile(&values, 75.0), Some(7.5));
    }

    #[test]
    fn percentile_empty_and_single() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[42.0], 99.0), Some(42.0));
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&values, -10.0), Some(1.0));
        assert_eq!(percentile(&values, 200.0), Some(3.0));
    }

    #[test]
    fn ewma_first_sample_is_identity() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.push(10.0), 10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn ewma_smooths() {
        let mut e = Ewma::new(0.5);
        e.push(0.0);
        let v = e.push(10.0);
        assert!((v - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_alpha_one_tracks_input() {
        let mut e = Ewma::new(1.0);
        e.push(1.0);
        assert_eq!(e.push(100.0), 100.0);
    }

    #[test]
    fn ewma_alpha_clamped() {
        let mut e = Ewma::new(5.0);
        e.push(1.0);
        assert_eq!(e.push(3.0), 3.0);
    }
}
