//! Target heart-rate ranges (`HB_set_target_rate` / `HB_get_target_min` /
//! `HB_get_target_max`).
//!
//! The application declares the heart-rate window it wants to stay inside;
//! observers (the application itself, the OS scheduler, hardware, a cloud
//! manager...) read it and act when the measured rate leaves the window.
//! The range is stored in two atomics so producers and observers in different
//! threads (or, through the shm backend, different processes) never block.

use std::sync::atomic::{AtomicU64, Ordering};

/// Value used when no target has been set.
pub const UNSET_TARGET: f64 = -1.0;

/// An atomically readable/writable `[min, max]` heart-rate goal in beats/s.
#[derive(Debug)]
pub struct TargetRate {
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for TargetRate {
    fn default() -> Self {
        Self::unset()
    }
}

impl TargetRate {
    /// Creates an unset target (both bounds read back as [`UNSET_TARGET`]).
    pub fn unset() -> Self {
        TargetRate {
            min_bits: AtomicU64::new(UNSET_TARGET.to_bits()),
            max_bits: AtomicU64::new(UNSET_TARGET.to_bits()),
        }
    }

    /// Creates a target with the given bounds.
    ///
    /// Returns an error if the bounds are not finite, negative, or `min > max`.
    pub fn new(min_bps: f64, max_bps: f64) -> Result<Self, crate::HeartbeatError> {
        let target = Self::unset();
        target.set(min_bps, max_bps)?;
        Ok(target)
    }

    /// Sets the target range.
    pub fn set(&self, min_bps: f64, max_bps: f64) -> Result<(), crate::HeartbeatError> {
        if !min_bps.is_finite() || !max_bps.is_finite() {
            return Err(crate::HeartbeatError::InvalidConfig(
                "target rates must be finite".into(),
            ));
        }
        if min_bps < 0.0 || max_bps < 0.0 {
            return Err(crate::HeartbeatError::InvalidConfig(
                "target rates must be non-negative".into(),
            ));
        }
        if min_bps > max_bps {
            return Err(crate::HeartbeatError::InvalidConfig(format!(
                "target min ({min_bps}) must not exceed target max ({max_bps})"
            )));
        }
        self.min_bits.store(min_bps.to_bits(), Ordering::Release);
        self.max_bits.store(max_bps.to_bits(), Ordering::Release);
        Ok(())
    }

    /// Clears the target back to the unset state.
    pub fn clear(&self) {
        self.min_bits
            .store(UNSET_TARGET.to_bits(), Ordering::Release);
        self.max_bits
            .store(UNSET_TARGET.to_bits(), Ordering::Release);
    }

    /// Minimum target rate, or [`UNSET_TARGET`] if none was set.
    pub fn min_bps(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Acquire))
    }

    /// Maximum target rate, or [`UNSET_TARGET`] if none was set.
    pub fn max_bps(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Acquire))
    }

    /// Whether a target has been set.
    pub fn is_set(&self) -> bool {
        self.min_bps() >= 0.0 && self.max_bps() >= 0.0
    }

    /// Returns the target as a `(min, max)` pair if set.
    pub fn range(&self) -> Option<(f64, f64)> {
        if self.is_set() {
            Some((self.min_bps(), self.max_bps()))
        } else {
            None
        }
    }

    /// Classifies a measured rate relative to the target window.
    pub fn classify(&self, rate_bps: f64) -> TargetStatus {
        match self.range() {
            None => TargetStatus::NoTarget,
            Some((min, max)) => {
                if rate_bps < min {
                    TargetStatus::BelowTarget
                } else if rate_bps > max {
                    TargetStatus::AboveTarget
                } else {
                    TargetStatus::WithinTarget
                }
            }
        }
    }
}

/// Relationship of a measured heart rate to the application's declared goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStatus {
    /// No goal has been declared.
    NoTarget,
    /// The rate is below the minimum: the application is missing its goal and
    /// needs more resources or a cheaper algorithm.
    BelowTarget,
    /// The rate is inside the declared window.
    WithinTarget,
    /// The rate exceeds the maximum: resources can be reclaimed or quality
    /// increased.
    AboveTarget,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_target_reads_negative() {
        let t = TargetRate::unset();
        assert_eq!(t.min_bps(), UNSET_TARGET);
        assert_eq!(t.max_bps(), UNSET_TARGET);
        assert!(!t.is_set());
        assert_eq!(t.range(), None);
    }

    #[test]
    fn set_and_read_back() {
        let t = TargetRate::unset();
        t.set(2.5, 3.5).unwrap();
        assert!(t.is_set());
        assert_eq!(t.range(), Some((2.5, 3.5)));
    }

    #[test]
    fn new_validates() {
        assert!(TargetRate::new(30.0, 35.0).is_ok());
        assert!(TargetRate::new(35.0, 30.0).is_err());
        assert!(TargetRate::new(-1.0, 5.0).is_err());
        assert!(TargetRate::new(f64::NAN, 5.0).is_err());
        assert!(TargetRate::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn equal_bounds_are_allowed() {
        let t = TargetRate::new(30.0, 30.0).unwrap();
        assert_eq!(t.classify(30.0), TargetStatus::WithinTarget);
    }

    #[test]
    fn clear_unsets() {
        let t = TargetRate::new(1.0, 2.0).unwrap();
        t.clear();
        assert!(!t.is_set());
        assert_eq!(t.classify(1.5), TargetStatus::NoTarget);
    }

    #[test]
    fn classify_relative_to_window() {
        let t = TargetRate::new(30.0, 35.0).unwrap();
        assert_eq!(t.classify(25.0), TargetStatus::BelowTarget);
        assert_eq!(t.classify(30.0), TargetStatus::WithinTarget);
        assert_eq!(t.classify(33.0), TargetStatus::WithinTarget);
        assert_eq!(t.classify(35.0), TargetStatus::WithinTarget);
        assert_eq!(t.classify(40.0), TargetStatus::AboveTarget);
    }

    #[test]
    fn zero_target_is_valid() {
        let t = TargetRate::new(0.0, 0.0).unwrap();
        assert!(t.is_set());
        assert_eq!(t.classify(0.1), TargetStatus::AboveTarget);
    }

    #[test]
    fn failed_set_leaves_previous_value() {
        let t = TargetRate::new(10.0, 20.0).unwrap();
        assert!(t.set(30.0, 5.0).is_err());
        assert_eq!(t.range(), Some((10.0, 20.0)));
    }
}
