//! Time sources for the Heartbeats framework.
//!
//! Every [`Heartbeat`](crate::Heartbeat) is parameterized by a [`Clock`]. The
//! production clock is [`MonotonicClock`] (a thin wrapper around
//! [`std::time::Instant`]); the [`ManualClock`] is a shared, atomically
//! advanced virtual clock used by the simulation substrate and by tests so
//! that every experiment in the paper can be reproduced deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Implementations must be cheap to query and monotonically non-decreasing
/// from the point of view of a single thread. Cross-thread monotonicity is
/// provided by both built-in clocks.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time in nanoseconds since an arbitrary, fixed origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock monotonic time based on [`Instant`].
///
/// The origin is the moment the clock was created, so timestamps start near
/// zero and are comparable across all heartbeats sharing the clock.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced virtual clock.
///
/// Cloning a `ManualClock` yields a handle to the *same* underlying time, so a
/// workload driver can advance time while heartbeat producers and external
/// observers read it. Advancing uses a single atomic fetch-add, which keeps
/// the hot path allocation- and lock-free.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now_ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start_ns` nanoseconds.
    pub fn starting_at(start_ns: u64) -> Self {
        let clock = Self::new();
        clock.now_ns.store(start_ns, Ordering::Release);
        clock
    }

    /// Advances the clock by `delta_ns` nanoseconds and returns the new time.
    pub fn advance_ns(&self, delta_ns: u64) -> u64 {
        self.now_ns.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns
    }

    /// Advances the clock by `delta_secs` seconds (saturating at u64 range)
    /// and returns the new time in nanoseconds.
    pub fn advance_secs(&self, delta_secs: f64) -> u64 {
        let delta_ns = (delta_secs * 1e9).max(0.0) as u64;
        self.advance_ns(delta_ns)
    }

    /// Sets the clock to an absolute time. Panics (in debug builds) if this
    /// would move time backwards, since heartbeat rate estimation assumes a
    /// monotonic clock.
    pub fn set_ns(&self, now_ns: u64) {
        let prev = self.now_ns.swap(now_ns, Ordering::AcqRel);
        debug_assert!(
            now_ns >= prev,
            "ManualClock moved backwards: {prev} -> {now_ns}"
        );
    }
}

impl Clock for ManualClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }
}

/// A shared, dynamically dispatched clock handle.
///
/// Heartbeats store their clock behind an `Arc<dyn Clock>` so that producers,
/// local (per-thread) handles and observers all agree on the time source.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared monotonic clock.
pub fn monotonic() -> SharedClock {
    Arc::new(MonotonicClock::new())
}

/// Convenience constructor for a shared manual clock, returning both the
/// type-erased handle (to give to heartbeats) and the concrete handle (to
/// advance time with).
pub fn manual() -> (SharedClock, ManualClock) {
    let clock = ManualClock::new();
    (Arc::new(clock.clone()) as SharedClock, clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn monotonic_clock_is_non_decreasing() {
        let clock = MonotonicClock::new();
        let mut prev = clock.now_ns();
        for _ in 0..1_000 {
            let now = clock.now_ns();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn monotonic_clock_starts_near_zero() {
        let clock = MonotonicClock::new();
        assert!(clock.now_ns() < 1_000_000_000, "origin should be creation time");
    }

    #[test]
    fn manual_clock_starts_at_zero() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
    }

    #[test]
    fn manual_clock_starting_at() {
        let clock = ManualClock::starting_at(5_000);
        assert_eq!(clock.now_ns(), 5_000);
    }

    #[test]
    fn manual_clock_advance_ns_returns_new_time() {
        let clock = ManualClock::new();
        assert_eq!(clock.advance_ns(100), 100);
        assert_eq!(clock.advance_ns(50), 150);
        assert_eq!(clock.now_ns(), 150);
    }

    #[test]
    fn manual_clock_advance_secs() {
        let clock = ManualClock::new();
        clock.advance_secs(1.5);
        assert_eq!(clock.now_ns(), 1_500_000_000);
    }

    #[test]
    fn manual_clock_advance_secs_negative_is_noop() {
        let clock = ManualClock::starting_at(10);
        clock.advance_secs(-3.0);
        assert_eq!(clock.now_ns(), 10);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance_ns(42);
        assert_eq!(b.now_ns(), 42);
        b.advance_ns(8);
        assert_eq!(a.now_ns(), 50);
    }

    #[test]
    fn manual_clock_set_ns() {
        let clock = ManualClock::new();
        clock.set_ns(1_000);
        assert_eq!(clock.now_ns(), 1_000);
    }

    #[test]
    fn manual_clock_concurrent_advance_sums() {
        let clock = ManualClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.advance_ns(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(clock.now_ns(), 80_000);
    }

    #[test]
    fn shared_clock_constructors() {
        let shared = monotonic();
        let _ = shared.now_ns();
        let (shared, handle) = manual();
        handle.advance_ns(7);
        assert_eq!(shared.now_ns(), 7);
    }
}
