//! # Application Heartbeats
//!
//! A Rust implementation of the *Application Heartbeats* framework
//! (Hoffmann, Eastep, Santambrogio, Miller, Agarwal — MIT CSAIL, PPoPP 2010):
//! a simple, standardized API that applications use to signal their progress
//! toward their goals, and that the application itself, the operating system,
//! a runtime, or hardware can query to drive adaptation.
//!
//! The core abstraction is a **heartbeat**: at significant points (a video
//! frame encoded, a query answered, a chunk deduplicated) the application
//! calls [`Heartbeat::heartbeat`]. The intervals between heartbeats yield the
//! **heart rate** (beats per second); the application declares the rate range
//! it needs with [`Heartbeat::set_target_rate`], and observers — in-process
//! via [`HeartbeatReader`]/[`Registry`], cross-process via the file and
//! shared-memory backends in the `hb-shm` crate, across the network via the
//! `hb-net` TCP backend and collector daemon — compare the measured rate
//! to the goal and act.
//!
//! ## Quick start
//!
//! ```
//! use heartbeats::{HeartbeatBuilder, TargetStatus};
//!
//! // HB_initialize(window = 20)
//! let hb = HeartbeatBuilder::new("video-encoder").window(20).build().unwrap();
//! // HB_set_target_rate(30, 35)
//! hb.set_target_rate(30.0, 35.0).unwrap();
//!
//! for _frame in 0..100 {
//!     // ... do one unit of useful work ...
//!     hb.heartbeat();                       // HB_heartbeat
//! }
//!
//! let rate = hb.current_rate(0);            // HB_current_rate(default window)
//! let history = hb.history(10);             // HB_get_history(10)
//! match hb.target_status(0) {
//!     TargetStatus::BelowTarget => { /* switch to a cheaper algorithm */ }
//!     TargetStatus::AboveTarget => { /* raise quality / release resources */ }
//!     _ => {}
//! }
//! # let _ = (rate, history);
//! ```
//!
//! ## Crate map
//!
//! * [`Heartbeat`] / [`HeartbeatBuilder`] — producer API (Table 1 of the paper).
//! * [`HeartbeatReader`] — read-only observer handle.
//! * [`observe`] — the unified [`Observe`] trait (snapshot / health / push
//!   subscriptions), implemented by every observer path so consumers run
//!   unchanged over in-process, shared-memory, and network transports.
//! * [`Registry`] — in-process discovery of heartbeat-enabled applications.
//! * [`record`], [`window`], [`stats`] — records, windowed-rate estimation,
//!   summary statistics.
//! * [`buffer`] — mutex-based and lock-free circular history buffers.
//! * [`backend`] — mirroring hooks used by external-observer backends, with
//!   uniform backpressure counters ([`BackendStats`]). Three observer paths
//!   build on it: in-process ([`HeartbeatReader`]), same-host cross-process
//!   (`hb-shm` file/shared-memory mirrors) and across the network (`hb-net`
//!   TCP backend → collector daemon → remote reader).
//! * [`ffi`] — C ABI mirroring the original C reference implementation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod backend;
pub mod buffer;
pub mod builder;
pub mod clock;
mod error;
pub mod ffi;
mod heartbeat;
pub mod observe;
mod reader;
pub mod record;
mod registry;
pub mod stats;
pub mod target;
pub mod window;

pub use analysis::{check_sequence, IntervalHistogram, SequenceReport};
pub use backend::{Backend, BackendStats, BeatScope, MemoryBackend, NullBackend};
pub use buffer::{AtomicRing, HistoryBuffer, MutexRing, DEFAULT_CAPACITY};
pub use builder::{HeartbeatBuilder, DEFAULT_WINDOW};
pub use clock::{Clock, ManualClock, MonotonicClock, SharedClock};
pub use error::{HeartbeatError, Result};
pub use heartbeat::{current_thread_id, BufferKind, Heartbeat};
pub use observe::{
    Interest, Observe, ObserveError, ObserveEvent, ObserveEventKind, ObserveFilter,
    ObserveStream, ObservedBeat, ObservedHealth, ObservedSnapshot,
};
pub use reader::{HealthStatus, HeartbeatReader};
pub use record::{BeatThreadId, HeartbeatRecord, Tag};
pub use registry::Registry;
pub use target::{TargetRate, TargetStatus, UNSET_TARGET};
pub use window::{MovingRate, WindowStats};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::backend::{Backend, BackendStats, BeatScope};
    pub use crate::builder::HeartbeatBuilder;
    pub use crate::clock::{Clock, ManualClock, MonotonicClock};
    pub use crate::heartbeat::Heartbeat;
    pub use crate::observe::{
        Interest, Observe, ObserveEvent, ObserveEventKind, ObserveFilter, ObservedHealth,
    };
    pub use crate::reader::{HealthStatus, HeartbeatReader};
    pub use crate::record::{BeatThreadId, HeartbeatRecord, Tag};
    pub use crate::registry::Registry;
    pub use crate::target::TargetStatus;
    pub use crate::window::MovingRate;
}
