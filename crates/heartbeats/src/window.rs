//! Heart-rate estimation over windows of heartbeats.
//!
//! `HB_current_rate` in the paper returns "the average heart rate calculated
//! from the last *window* heartbeats". With `w` beats in a window there are
//! `w − 1` inter-beat intervals, so the windowed rate is
//! `(w − 1) / (t_last − t_first)` beats per second. The same convention is
//! used by the figures in the paper (e.g. Figure 2's 20-beat moving average).

use crate::record::HeartbeatRecord;
use crate::stats::OnlineStats;

/// Summary of the inter-beat intervals inside a window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Number of heartbeats in the window.
    pub beats: usize,
    /// Average heart rate over the window, in beats per second.
    pub rate_bps: f64,
    /// Mean inter-beat interval in nanoseconds.
    pub mean_interval_ns: f64,
    /// Smallest inter-beat interval in nanoseconds.
    pub min_interval_ns: u64,
    /// Largest inter-beat interval in nanoseconds.
    pub max_interval_ns: u64,
    /// Standard deviation of the inter-beat intervals in nanoseconds.
    pub stddev_interval_ns: f64,
}

/// Computes the average heart rate (beats/second) over a chronological slice
/// of heartbeat records.
///
/// Returns `None` if the slice has fewer than two records or spans zero time
/// (the rate is undefined in both cases, matching the behaviour of
/// `HB_current_rate` before enough beats exist).
pub fn windowed_rate(records: &[HeartbeatRecord]) -> Option<f64> {
    if records.len() < 2 {
        return None;
    }
    let first = records.first().expect("len >= 2");
    let last = records.last().expect("len >= 2");
    let span_ns = last.timestamp_ns.checked_sub(first.timestamp_ns)?;
    if span_ns == 0 {
        return None;
    }
    Some((records.len() - 1) as f64 / (span_ns as f64 / 1e9))
}

/// Computes the lifetime average heart rate from the total number of beats
/// and the time span between the first beat and `now_ns`.
///
/// This is the quantity reported in Table 2 of the paper ("Average Heart
/// Rate" over the whole execution). Returns `None` when fewer than one beat
/// has been produced or no time has elapsed.
pub fn global_rate(total_beats: u64, first_beat_ns: u64, now_ns: u64) -> Option<f64> {
    if total_beats == 0 {
        return None;
    }
    let span_ns = now_ns.checked_sub(first_beat_ns)?;
    if span_ns == 0 {
        return None;
    }
    Some(total_beats as f64 / (span_ns as f64 / 1e9))
}

/// Computes interval statistics over a chronological slice of records.
///
/// Returns `None` if there are fewer than two records.
pub fn window_stats(records: &[HeartbeatRecord]) -> Option<WindowStats> {
    if records.len() < 2 {
        return None;
    }
    let mut stats = OnlineStats::new();
    let mut min_interval = u64::MAX;
    let mut max_interval = 0u64;
    for pair in records.windows(2) {
        let interval = pair[1].timestamp_ns.saturating_sub(pair[0].timestamp_ns);
        stats.push(interval as f64);
        min_interval = min_interval.min(interval);
        max_interval = max_interval.max(interval);
    }
    let rate = windowed_rate(records).unwrap_or(0.0);
    Some(WindowStats {
        beats: records.len(),
        rate_bps: rate,
        mean_interval_ns: stats.mean(),
        min_interval_ns: min_interval,
        max_interval_ns: max_interval,
        stddev_interval_ns: stats.stddev(),
    })
}

/// Moving-average heart rate over a fixed-size beat window.
///
/// Feed beat timestamps one at a time (chronological order); after each push
/// the tracker reports the rate over the most recent `window` beats. This is
/// exactly how the figures in the paper are produced ("a moving average of
/// heart rate for the x264 benchmark using a 20 beat window").
#[derive(Debug, Clone)]
pub struct MovingRate {
    window: usize,
    timestamps_ns: std::collections::VecDeque<u64>,
}

impl MovingRate {
    /// Creates a tracker over `window` beats (minimum 2).
    pub fn new(window: usize) -> Self {
        MovingRate {
            window: window.max(2),
            timestamps_ns: std::collections::VecDeque::with_capacity(window.max(2)),
        }
    }

    /// Number of beats the moving window covers.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records a beat at `timestamp_ns` and returns the current windowed
    /// rate, if at least two beats are available.
    pub fn push(&mut self, timestamp_ns: u64) -> Option<f64> {
        if self.timestamps_ns.len() == self.window {
            self.timestamps_ns.pop_front();
        }
        self.timestamps_ns.push_back(timestamp_ns);
        self.rate()
    }

    /// Current windowed rate, if at least two beats are available.
    pub fn rate(&self) -> Option<f64> {
        if self.timestamps_ns.len() < 2 {
            return None;
        }
        let first = *self.timestamps_ns.front().expect("non-empty");
        let last = *self.timestamps_ns.back().expect("non-empty");
        let span_ns = last.checked_sub(first)?;
        if span_ns == 0 {
            return None;
        }
        Some((self.timestamps_ns.len() - 1) as f64 / (span_ns as f64 / 1e9))
    }

    /// Number of beats currently tracked.
    pub fn len(&self) -> usize {
        self.timestamps_ns.len()
    }

    /// True if no beats have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.timestamps_ns.is_empty()
    }

    /// Clears all tracked beats.
    pub fn clear(&mut self) {
        self.timestamps_ns.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BeatThreadId, Tag};

    fn records_at(timestamps: &[u64]) -> Vec<HeartbeatRecord> {
        timestamps
            .iter()
            .enumerate()
            .map(|(i, &t)| HeartbeatRecord::new(i as u64, t, Tag::NONE, BeatThreadId(0)))
            .collect()
    }

    #[test]
    fn windowed_rate_needs_two_beats() {
        assert_eq!(windowed_rate(&[]), None);
        assert_eq!(windowed_rate(&records_at(&[100])), None);
    }

    #[test]
    fn windowed_rate_uniform_beats() {
        // Beats every 100 ms -> 10 beats per second.
        let records = records_at(&[0, 100_000_000, 200_000_000, 300_000_000]);
        let rate = windowed_rate(&records).unwrap();
        assert!((rate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_rate_zero_span_is_none() {
        let records = records_at(&[500, 500, 500]);
        assert_eq!(windowed_rate(&records), None);
    }

    #[test]
    fn windowed_rate_two_beats() {
        // 1 interval of 0.5 s -> 2 beats/s.
        let records = records_at(&[0, 500_000_000]);
        assert!((windowed_rate(&records).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn global_rate_basic() {
        // 30 beats over 2 seconds -> 15 beats/s.
        let rate = global_rate(30, 1_000_000_000, 3_000_000_000).unwrap();
        assert!((rate - 15.0).abs() < 1e-9);
    }

    #[test]
    fn global_rate_edge_cases() {
        assert_eq!(global_rate(0, 0, 1_000_000_000), None);
        assert_eq!(global_rate(10, 500, 500), None);
        assert_eq!(global_rate(10, 1_000, 500), None);
    }

    #[test]
    fn window_stats_uniform() {
        let records = records_at(&[0, 1_000_000, 2_000_000, 3_000_000]);
        let stats = window_stats(&records).unwrap();
        assert_eq!(stats.beats, 4);
        assert_eq!(stats.min_interval_ns, 1_000_000);
        assert_eq!(stats.max_interval_ns, 1_000_000);
        assert!((stats.mean_interval_ns - 1_000_000.0).abs() < 1e-6);
        assert!(stats.stddev_interval_ns < 1e-6);
        assert!((stats.rate_bps - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn window_stats_irregular() {
        let records = records_at(&[0, 1_000_000, 5_000_000]);
        let stats = window_stats(&records).unwrap();
        assert_eq!(stats.min_interval_ns, 1_000_000);
        assert_eq!(stats.max_interval_ns, 4_000_000);
        assert!(stats.stddev_interval_ns > 0.0);
    }

    #[test]
    fn window_stats_needs_two() {
        assert!(window_stats(&records_at(&[1])).is_none());
    }

    #[test]
    fn moving_rate_tracks_fixed_window() {
        let mut tracker = MovingRate::new(3);
        assert_eq!(tracker.window(), 3);
        assert!(tracker.is_empty());
        assert_eq!(tracker.push(0), None);
        assert!(!tracker.is_empty());
        // Two beats, 1 s apart -> 1 beat/s.
        assert!((tracker.push(1_000_000_000).unwrap() - 1.0).abs() < 1e-9);
        // Three beats over 2 s -> 1 beat/s.
        assert!((tracker.push(2_000_000_000).unwrap() - 1.0).abs() < 1e-9);
        // Window slides: beats at 1, 2, 2.5 s -> 2 intervals over 1.5 s.
        let rate = tracker.push(2_500_000_000).unwrap();
        assert!((rate - 2.0 / 1.5).abs() < 1e-9);
        assert_eq!(tracker.len(), 3);
    }

    #[test]
    fn moving_rate_window_minimum_is_two() {
        let tracker = MovingRate::new(0);
        assert_eq!(tracker.window(), 2);
    }

    #[test]
    fn moving_rate_clear() {
        let mut tracker = MovingRate::new(4);
        tracker.push(0);
        tracker.push(1_000);
        tracker.clear();
        assert!(tracker.is_empty());
        assert_eq!(tracker.rate(), None);
    }

    #[test]
    fn moving_rate_speedup_is_visible() {
        // Beats accelerate; the windowed rate must increase.
        let mut tracker = MovingRate::new(5);
        let mut t = 0u64;
        let mut slow_rate = 0.0;
        for _ in 0..5 {
            t += 200_000_000; // 5 beats/s
            if let Some(r) = tracker.push(t) {
                slow_rate = r;
            }
        }
        let mut fast_rate = 0.0;
        for _ in 0..10 {
            t += 50_000_000; // 20 beats/s
            if let Some(r) = tracker.push(t) {
                fast_rate = r;
            }
        }
        assert!(fast_rate > slow_rate * 3.0);
    }
}
