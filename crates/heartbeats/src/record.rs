//! Heartbeat records: the unit of information produced by every call to
//! [`Heartbeat::heartbeat`](crate::Heartbeat::heartbeat).
//!
//! The paper specifies that each heartbeat is automatically stamped with the
//! current time and the thread id of the caller, and may carry a user-supplied
//! *tag* (e.g. an H.264 frame type, or a sequence number when beats may be
//! dropped or reordered).

use std::fmt;

/// A user-supplied tag attached to a heartbeat.
///
/// Tags are opaque 64-bit values. Applications typically use them as small
/// enums (frame type), sequence numbers, or item identifiers. The framework
/// never interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(pub u64);

impl Tag {
    /// Tag used when the application does not supply one.
    pub const NONE: Tag = Tag(0);

    /// Creates a tag from a raw value.
    #[inline]
    pub const fn new(value: u64) -> Self {
        Tag(value)
    }

    /// Returns the raw tag value.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for Tag {
    fn from(value: u64) -> Self {
        Tag(value)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of the thread that issued a heartbeat.
///
/// The framework assigns each OS thread a small dense integer the first time
/// it issues a heartbeat; this keeps records `Copy` and lets per-thread (local)
/// buffers be indexed cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BeatThreadId(pub u32);

impl BeatThreadId {
    /// Returns the raw thread index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BeatThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single heartbeat event.
///
/// This is the record returned by `HB_get_history`: a timestamp, a tag and the
/// issuing thread, plus a monotonically increasing sequence number assigned by
/// the buffer the record was pushed into (global records carry the global
/// sequence, local records the per-thread sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatRecord {
    /// Position of this beat in its buffer's stream (0-based).
    pub seq: u64,
    /// Timestamp in nanoseconds on the clock the heartbeat was created with.
    pub timestamp_ns: u64,
    /// User-supplied tag ([`Tag::NONE`] if none was given).
    pub tag: Tag,
    /// Dense id of the issuing thread.
    pub thread: BeatThreadId,
}

impl HeartbeatRecord {
    /// Creates a record. Mostly useful for tests and backends replaying logs.
    pub const fn new(seq: u64, timestamp_ns: u64, tag: Tag, thread: BeatThreadId) -> Self {
        HeartbeatRecord {
            seq,
            timestamp_ns,
            tag,
            thread,
        }
    }

    /// Timestamp expressed in seconds.
    #[inline]
    pub fn timestamp_secs(&self) -> f64 {
        self.timestamp_ns as f64 / 1e9
    }

    /// Interval in nanoseconds between `earlier` and `self`.
    ///
    /// Returns `None` if `earlier` does not precede `self` in time.
    pub fn interval_since(&self, earlier: &HeartbeatRecord) -> Option<u64> {
        self.timestamp_ns.checked_sub(earlier.timestamp_ns)
    }
}

impl fmt::Display for HeartbeatRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "beat #{} @ {:.6}s tag={} thread={}",
            self.seq,
            self.timestamp_secs(),
            self.tag,
            self.thread
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let t = Tag::new(42);
        assert_eq!(t.value(), 42);
        assert_eq!(Tag::from(42u64), t);
        assert_eq!(t.to_string(), "42");
    }

    #[test]
    fn tag_none_is_zero() {
        assert_eq!(Tag::NONE.value(), 0);
        assert_eq!(Tag::default(), Tag::NONE);
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(BeatThreadId(3).to_string(), "t3");
        assert_eq!(BeatThreadId(3).index(), 3);
    }

    #[test]
    fn record_timestamp_secs() {
        let r = HeartbeatRecord::new(0, 2_500_000_000, Tag::NONE, BeatThreadId(0));
        assert!((r.timestamp_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn record_interval_since() {
        let a = HeartbeatRecord::new(0, 1_000, Tag::NONE, BeatThreadId(0));
        let b = HeartbeatRecord::new(1, 4_000, Tag::NONE, BeatThreadId(0));
        assert_eq!(b.interval_since(&a), Some(3_000));
        assert_eq!(a.interval_since(&b), None);
    }

    #[test]
    fn record_display_contains_fields() {
        let r = HeartbeatRecord::new(7, 1_000_000_000, Tag::new(9), BeatThreadId(2));
        let s = r.to_string();
        assert!(s.contains("#7"));
        assert!(s.contains("tag=9"));
        assert!(s.contains("t2"));
    }
}
