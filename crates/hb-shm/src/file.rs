//! File-backed heartbeat log — parity with the paper's reference
//! implementation.
//!
//! Section 4 of the paper: *"When the `HB_heartbeat` function is called, a new
//! entry containing a timestamp, tag and thread ID is written into a file. One
//! file is used to store global heartbeats. When per-thread heartbeats are
//! used, each thread writes to its own individual file. ... The target heart
//! rates are also written into the appropriate file so that the external
//! service can access them."*
//!
//! [`FileBackend`] mirrors every beat and target change into a text log with
//! one record per line; [`FileObserver`] is the external-service side that
//! parses the log and recomputes rates, history and targets without any
//! cooperation from the running process beyond the shared file.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use heartbeats::{Backend, BackendStats, BeatScope, BeatThreadId, HeartbeatRecord, Result, Tag};

/// One parsed line of a heartbeat log file.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry {
    /// A mirrored heartbeat.
    Beat {
        /// The reconstructed record.
        record: HeartbeatRecord,
        /// Whether it was a global or per-thread beat.
        scope: BeatScope,
    },
    /// A target heart-rate declaration.
    Target {
        /// Minimum target rate in beats/s.
        min_bps: f64,
        /// Maximum target rate in beats/s.
        max_bps: f64,
    },
}

/// Serializes a beat line. Format (whitespace separated):
/// `beat <seq> <timestamp_ns> <tag> <thread> <G|L>`
fn beat_line(record: &HeartbeatRecord, scope: BeatScope) -> String {
    let scope_char = match scope {
        BeatScope::Global => 'G',
        BeatScope::Local => 'L',
    };
    format!(
        "beat {} {} {} {} {}\n",
        record.seq,
        record.timestamp_ns,
        record.tag.value(),
        record.thread.index(),
        scope_char
    )
}

/// Serializes a target line. Format: `target <min_bps> <max_bps>`
fn target_line(min_bps: f64, max_bps: f64) -> String {
    format!("target {min_bps} {max_bps}\n")
}

/// Parses one log line. Returns `None` for blank or unrecognized lines
/// (observers must tolerate partial writes at the tail of a live log).
pub fn parse_line(line: &str) -> Option<LogEntry> {
    let mut parts = line.split_whitespace();
    match parts.next()? {
        "beat" => {
            let seq = parts.next()?.parse().ok()?;
            let timestamp_ns = parts.next()?.parse().ok()?;
            let tag = parts.next()?.parse().ok()?;
            let thread = parts.next()?.parse().ok()?;
            let scope = match parts.next()? {
                "G" => BeatScope::Global,
                "L" => BeatScope::Local,
                _ => return None,
            };
            Some(LogEntry::Beat {
                record: HeartbeatRecord::new(seq, timestamp_ns, Tag::new(tag), BeatThreadId(thread)),
                scope,
            })
        }
        "target" => {
            let min_bps = parts.next()?.parse().ok()?;
            let max_bps = parts.next()?.parse().ok()?;
            Some(LogEntry::Target { min_bps, max_bps })
        }
        _ => None,
    }
}

/// A [`Backend`] that mirrors heartbeats into a text log file.
///
/// Writes are buffered; call [`Heartbeat::flush`](heartbeats::Heartbeat::flush)
/// (or drop the producing `Heartbeat`) before expecting an external process to
/// see the latest beats, or construct the backend with
/// [`FileBackend::with_flush_every`] to bound staleness.
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    flush_every: Option<u64>,
    written: Mutex<u64>,
    mirrored: AtomicU64,
    dropped: AtomicU64,
}

impl FileBackend {
    /// Creates (truncating) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileBackend {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            flush_every: None,
            written: Mutex::new(0),
            mirrored: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Creates the log file and flushes it to disk every `n` beats.
    pub fn with_flush_every(path: impl AsRef<Path>, n: u64) -> Result<Self> {
        let mut backend = Self::create(path)?;
        backend.flush_every = Some(n.max(1));
        Ok(backend)
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Backend for FileBackend {
    fn on_beat(&self, _app: &str, record: &HeartbeatRecord, scope: BeatScope) {
        let line = beat_line(record, scope);
        let mut writer = self.writer.lock();
        // A failed mirror write must never take down the application; the
        // in-memory history is still intact and the observer will simply see
        // a truncated log. The loss is surfaced through the drop counter.
        match writer.write_all(line.as_bytes()) {
            Ok(()) => self.mirrored.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.dropped.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(every) = self.flush_every {
            let mut written = self.written.lock();
            *written += 1;
            if (*written).is_multiple_of(every) {
                let _ = writer.flush();
            }
        }
    }

    fn on_target_change(&self, _app: &str, min_bps: f64, max_bps: f64) {
        let mut writer = self.writer.lock();
        let _ = writer.write_all(target_line(min_bps, max_bps).as_bytes());
        let _ = writer.flush();
    }

    fn flush(&self) -> Result<()> {
        self.writer.lock().flush()?;
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            mirrored: self.mirrored.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// External-observer view over a heartbeat log file.
///
/// Every query re-reads the file, so the observer always sees the latest
/// flushed state and needs no shared memory with the producer — exactly the
/// coupling model of the paper's reference implementation.
#[derive(Debug, Clone)]
pub struct FileObserver {
    path: PathBuf,
}

impl FileObserver {
    /// Creates an observer for the log at `path`. The file does not need to
    /// exist yet; queries on a missing file behave as "no beats yet".
    pub fn new(path: impl AsRef<Path>) -> Self {
        FileObserver {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// Parses the whole log.
    pub fn entries(&self) -> Vec<LogEntry> {
        let Ok(file) = File::open(&self.path) else {
            return Vec::new();
        };
        BufReader::new(file)
            .lines()
            .map_while(|line| line.ok())
            .filter_map(|line| parse_line(&line))
            .collect()
    }

    /// All global heartbeat records, in log order.
    pub fn global_beats(&self) -> Vec<HeartbeatRecord> {
        self.entries()
            .into_iter()
            .filter_map(|entry| match entry {
                LogEntry::Beat {
                    record,
                    scope: BeatScope::Global,
                } => Some(record),
                _ => None,
            })
            .collect()
    }

    /// Local heartbeat records of one thread, in log order.
    pub fn local_beats_of(&self, thread: BeatThreadId) -> Vec<HeartbeatRecord> {
        self.entries()
            .into_iter()
            .filter_map(|entry| match entry {
                LogEntry::Beat {
                    record,
                    scope: BeatScope::Local,
                } if record.thread == thread => Some(record),
                _ => None,
            })
            .collect()
    }

    /// The last `n` global beats in chronological order (`HB_get_history`
    /// as seen from outside the process).
    pub fn history(&self, n: usize) -> Vec<HeartbeatRecord> {
        let beats = self.global_beats();
        let start = beats.len().saturating_sub(n);
        beats[start..].to_vec()
    }

    /// Average heart rate over the last `window` global beats.
    pub fn current_rate(&self, window: usize) -> Option<f64> {
        heartbeats::window::windowed_rate(&self.history(window.max(2)))
    }

    /// Total number of global beats logged so far.
    pub fn total_beats(&self) -> u64 {
        self.global_beats().len() as u64
    }

    /// The most recently declared target range, if any.
    pub fn target(&self) -> Option<(f64, f64)> {
        self.entries()
            .into_iter()
            .filter_map(|entry| match entry {
                LogEntry::Target { min_bps, max_bps } => Some((min_bps, max_bps)),
                _ => None,
            })
            .next_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heartbeats::{HeartbeatBuilder, ManualClock};
    use std::sync::Arc;

    fn temp_log(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("hb-file-test-{}-{}", std::process::id(), name));
        path
    }

    #[test]
    fn beat_line_roundtrip() {
        let record = HeartbeatRecord::new(3, 123_456, Tag::new(9), BeatThreadId(2));
        let line = beat_line(&record, BeatScope::Global);
        match parse_line(&line).unwrap() {
            LogEntry::Beat { record: parsed, scope } => {
                assert_eq!(parsed, record);
                assert_eq!(scope, BeatScope::Global);
            }
            other => panic!("unexpected entry: {other:?}"),
        }
    }

    #[test]
    fn local_beat_line_roundtrip() {
        let record = HeartbeatRecord::new(0, 1, Tag::NONE, BeatThreadId(7));
        let line = beat_line(&record, BeatScope::Local);
        assert!(matches!(
            parse_line(&line).unwrap(),
            LogEntry::Beat { scope: BeatScope::Local, .. }
        ));
    }

    #[test]
    fn target_line_roundtrip() {
        let line = target_line(2.5, 3.5);
        assert_eq!(
            parse_line(&line).unwrap(),
            LogEntry::Target { min_bps: 2.5, max_bps: 3.5 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("# comment"), None);
        assert_eq!(parse_line("beat 1 2"), None);
        assert_eq!(parse_line("beat x y z w G"), None);
        assert_eq!(parse_line("beat 1 2 3 4 Q"), None);
        assert_eq!(parse_line("target only-one"), None);
    }

    #[test]
    fn backend_and_observer_end_to_end() {
        let path = temp_log("end-to-end");
        let clock = ManualClock::new();
        let backend = Arc::new(FileBackend::create(&path).unwrap());
        let hb = HeartbeatBuilder::new("filetest")
            .window(4)
            .clock(Arc::new(clock.clone()))
            .backend(backend)
            .build()
            .unwrap();

        hb.set_target_rate(5.0, 10.0).unwrap();
        for i in 0..10u64 {
            clock.advance_ns(100_000_000); // 10 beats/s
            hb.heartbeat_tagged(Tag::new(i));
        }
        hb.heartbeat_local(Tag::new(99));
        hb.flush().unwrap();

        let observer = FileObserver::new(&path);
        assert_eq!(observer.total_beats(), 10);
        assert_eq!(observer.target(), Some((5.0, 10.0)));
        let rate = observer.current_rate(4).unwrap();
        assert!((rate - 10.0).abs() < 1e-9);
        let history = observer.history(3);
        assert_eq!(history.len(), 3);
        assert_eq!(history[2].tag, Tag::new(9));
        // The local beat is visible under its thread, not globally.
        let thread = history[0].thread;
        let locals = observer.local_beats_of(thread);
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].tag, Tag::new(99));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn observer_on_missing_file_is_empty() {
        let observer = FileObserver::new(temp_log("never-created"));
        assert_eq!(observer.total_beats(), 0);
        assert!(observer.history(10).is_empty());
        assert_eq!(observer.current_rate(10), None);
        assert_eq!(observer.target(), None);
    }

    #[test]
    fn flush_every_bounds_staleness() {
        let path = temp_log("flush-every");
        let clock = ManualClock::new();
        let backend = Arc::new(FileBackend::with_flush_every(&path, 5).unwrap());
        let hb = HeartbeatBuilder::new("flusher")
            .clock(Arc::new(clock.clone()))
            .backend(backend)
            .build()
            .unwrap();
        let observer = FileObserver::new(&path);
        for _ in 0..5 {
            clock.advance_ns(1_000);
            hb.heartbeat();
        }
        // The fifth beat triggered an automatic flush; no manual flush needed.
        assert_eq!(observer.total_beats(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn last_target_wins() {
        let path = temp_log("targets");
        let backend = Arc::new(FileBackend::create(&path).unwrap());
        let hb = HeartbeatBuilder::new("retarget")
            .backend(backend)
            .build()
            .unwrap();
        hb.set_target_rate(1.0, 2.0).unwrap();
        hb.set_target_rate(30.0, 35.0).unwrap();
        hb.flush().unwrap();
        assert_eq!(FileObserver::new(&path).target(), Some((30.0, 35.0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backend_counts_mirrored_beats() {
        let path = temp_log("stats");
        let clock = ManualClock::new();
        let backend = Arc::new(FileBackend::create(&path).unwrap());
        let hb = HeartbeatBuilder::new("stats")
            .clock(Arc::new(clock.clone()))
            .backend(Arc::clone(&backend) as Arc<dyn Backend>)
            .build()
            .unwrap();
        for _ in 0..7 {
            clock.advance_ns(1_000);
            hb.heartbeat();
        }
        let stats = backend.stats();
        assert_eq!(stats.mirrored, 7);
        assert_eq!(stats.dropped, 0);
        assert_eq!(backend.dropped(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backend_path_accessor() {
        let path = temp_log("path-accessor");
        let backend = FileBackend::create(&path).unwrap();
        assert_eq!(backend.path(), path.as_path());
        std::fs::remove_file(&path).ok();
    }
}
