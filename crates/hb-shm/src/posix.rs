//! Thin, safe wrappers around the POSIX shared-memory primitives
//! (`shm_open`, `ftruncate`, `mmap`, `munmap`, `shm_unlink`, `close`).
//!
//! Only the small surface needed by the heartbeat shared-memory backend is
//! wrapped; everything else in this crate works with safe Rust on top of
//! [`ShmRegion`].

use std::io;
use std::os::raw::c_int;

use heartbeats::{HeartbeatError, Result};

/// Normalizes a shared-memory object name to the `/name` form required by
/// POSIX (a single leading slash, no other slashes).
pub fn normalize_name(name: &str) -> String {
    let trimmed = name.trim_start_matches('/');
    let sanitized: String = trimmed
        .chars()
        .map(|c| if c == '/' { '_' } else { c })
        .collect();
    format!("/{sanitized}")
}

fn last_error(context: &str) -> HeartbeatError {
    HeartbeatError::Backend(format!("{context}: {}", io::Error::last_os_error()))
}

/// A mapped POSIX shared-memory object.
///
/// The mapping is removed and the file descriptor closed on drop; the
/// underlying object persists until [`ShmRegion::unlink`] is called (by
/// whichever process owns the object's lifecycle).
#[derive(Debug)]
pub struct ShmRegion {
    name: String,
    ptr: *mut u8,
    len: usize,
    fd: c_int,
}

// SAFETY: the raw mapping is only ever accessed through atomic operations (or
// before the region is shared, during initialization), so concurrent access
// from multiple threads is sound.
unsafe impl Send for ShmRegion {}
unsafe impl Sync for ShmRegion {}

impl ShmRegion {
    /// Creates (or re-opens and resizes) a shared-memory object of `len`
    /// bytes and maps it read-write.
    pub fn create(name: &str, len: usize) -> Result<Self> {
        let name = normalize_name(name);
        let c_name = std::ffi::CString::new(name.clone())
            .map_err(|_| HeartbeatError::Backend("shm name contains NUL".into()))?;
        // SAFETY: c_name is a valid NUL-terminated string; flags and mode are
        // plain integers.
        let fd = unsafe {
            libc::shm_open(
                c_name.as_ptr(),
                libc::O_CREAT | libc::O_RDWR,
                (libc::S_IRUSR | libc::S_IWUSR) as libc::mode_t,
            )
        };
        if fd < 0 {
            return Err(last_error("shm_open(create)"));
        }
        // SAFETY: fd is a valid descriptor we just opened.
        if unsafe { libc::ftruncate(fd, len as libc::off_t) } != 0 {
            let err = last_error("ftruncate");
            unsafe { libc::close(fd) };
            return Err(err);
        }
        Self::map(name, fd, len)
    }

    /// Opens an existing shared-memory object and maps it read-write.
    ///
    /// `expected_min_len` guards against mapping an object that is too small
    /// to contain a valid header.
    pub fn open(name: &str, expected_min_len: usize) -> Result<Self> {
        let name = normalize_name(name);
        let c_name = std::ffi::CString::new(name.clone())
            .map_err(|_| HeartbeatError::Backend("shm name contains NUL".into()))?;
        // SAFETY: c_name is a valid NUL-terminated string.
        let fd = unsafe { libc::shm_open(c_name.as_ptr(), libc::O_RDWR, 0) };
        if fd < 0 {
            return Err(last_error("shm_open(open)"));
        }
        // SAFETY: fd is valid; stat is a plain output struct.
        let mut stat: libc::stat = unsafe { std::mem::zeroed() };
        if unsafe { libc::fstat(fd, &mut stat) } != 0 {
            let err = last_error("fstat");
            unsafe { libc::close(fd) };
            return Err(err);
        }
        let len = stat.st_size as usize;
        if len < expected_min_len {
            unsafe { libc::close(fd) };
            return Err(HeartbeatError::Backend(format!(
                "shared-memory object {name} is too small ({len} bytes)"
            )));
        }
        Self::map(name, fd, len)
    }

    fn map(name: String, fd: c_int, len: usize) -> Result<Self> {
        // SAFETY: fd is a valid shm descriptor of at least `len` bytes.
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                fd,
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            let err = last_error("mmap");
            unsafe { libc::close(fd) };
            return Err(err);
        }
        Ok(ShmRegion {
            name,
            ptr: ptr as *mut u8,
            len,
            fd,
        })
    }

    /// Removes the named object from the system namespace. Existing mappings
    /// stay valid until they are unmapped.
    pub fn unlink(name: &str) -> Result<()> {
        let name = normalize_name(name);
        let c_name = std::ffi::CString::new(name)
            .map_err(|_| HeartbeatError::Backend("shm name contains NUL".into()))?;
        // SAFETY: c_name is a valid NUL-terminated string.
        if unsafe { libc::shm_unlink(c_name.as_ptr()) } != 0 {
            return Err(last_error("shm_unlink"));
        }
        Ok(())
    }

    /// The normalized object name (`/something`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mapping has zero length (never the case for valid regions).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a reference to an [`AtomicU64`](std::sync::atomic::AtomicU64)
    /// living at `offset` bytes into the region.
    ///
    /// Panics if the offset is out of bounds or not 8-byte aligned.
    pub fn atomic_u64(&self, offset: usize) -> &std::sync::atomic::AtomicU64 {
        assert!(
            offset + 8 <= self.len,
            "offset {offset} out of bounds for region of {} bytes",
            self.len
        );
        assert_eq!(offset % 8, 0, "offset {offset} is not 8-byte aligned");
        // SAFETY: the mapping is page-aligned, the offset is 8-byte aligned
        // and in bounds, and all concurrent access goes through atomics.
        unsafe { &*(self.ptr.add(offset) as *const std::sync::atomic::AtomicU64) }
    }
}

impl Drop for ShmRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len describe the mapping created in `map`; fd is ours.
        unsafe {
            libc::munmap(self.ptr as *mut libc::c_void, self.len);
            libc::close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn unique_name(tag: &str) -> String {
        use std::sync::atomic::AtomicU64;
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        format!(
            "hb-posix-test-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )
    }

    #[test]
    fn normalize_name_adds_single_slash() {
        assert_eq!(normalize_name("foo"), "/foo");
        assert_eq!(normalize_name("/foo"), "/foo");
        assert_eq!(normalize_name("//foo"), "/foo");
        assert_eq!(normalize_name("a/b"), "/a_b");
    }

    #[test]
    fn create_map_and_reopen() {
        let name = unique_name("roundtrip");
        {
            let region = ShmRegion::create(&name, 4096).unwrap();
            assert_eq!(region.len(), 4096);
            assert!(!region.is_empty());
            assert!(region.name().starts_with('/'));
            region.atomic_u64(0).store(0xDEADBEEF, Ordering::Release);
            region.atomic_u64(4088).store(42, Ordering::Release);
        }
        {
            let region = ShmRegion::open(&name, 4096).unwrap();
            assert_eq!(region.atomic_u64(0).load(Ordering::Acquire), 0xDEADBEEF);
            assert_eq!(region.atomic_u64(4088).load(Ordering::Acquire), 42);
        }
        ShmRegion::unlink(&name).unwrap();
    }

    #[test]
    fn open_missing_object_fails() {
        assert!(ShmRegion::open(&unique_name("missing"), 64).is_err());
    }

    #[test]
    fn open_too_small_object_fails() {
        let name = unique_name("small");
        let _region = ShmRegion::create(&name, 64).unwrap();
        assert!(ShmRegion::open(&name, 4096).is_err());
        ShmRegion::unlink(&name).unwrap();
    }

    #[test]
    fn unlink_twice_fails_second_time() {
        let name = unique_name("unlink");
        let _region = ShmRegion::create(&name, 128).unwrap();
        assert!(ShmRegion::unlink(&name).is_ok());
        assert!(ShmRegion::unlink(&name).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn atomic_out_of_bounds_panics() {
        let name = unique_name("oob");
        let region = ShmRegion::create(&name, 64).unwrap();
        ShmRegion::unlink(&name).ok();
        region.atomic_u64(64);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn atomic_misaligned_panics() {
        let name = unique_name("misaligned");
        let region = ShmRegion::create(&name, 64).unwrap();
        ShmRegion::unlink(&name).ok();
        region.atomic_u64(12);
    }
}
