//! Shared-memory heartbeat segments: producer backend and external observer.
//!
//! A [`ShmSegment`] is a POSIX shared-memory object laid out per
//! [`crate::layout`]. The producing process attaches a [`ShmBackend`] to its
//! [`Heartbeat`](heartbeats::Heartbeat); any other process (an external
//! scheduler, a system-administration tool, a hardware model) opens the same
//! segment by name with [`ShmObserver`] and reads rates, history and targets
//! without any cooperation from the producer beyond the shared mapping.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use heartbeats::{
    Backend, BeatScope, BeatThreadId, HeartbeatRecord, Result, Tag,
};

use crate::layout::{self, offsets, slot_offsets};
use crate::posix::ShmRegion;

/// A heartbeat buffer living in POSIX shared memory.
#[derive(Debug)]
pub struct ShmSegment {
    region: ShmRegion,
    capacity: usize,
}

impl ShmSegment {
    /// Creates a segment named `name` with room for `capacity` records and
    /// initializes its header.
    pub fn create(name: &str, capacity: usize, default_window: usize) -> Result<Self> {
        let capacity = capacity.max(1);
        let region = ShmRegion::create(name, layout::segment_size(capacity))?;
        // Zero the slot states so stale data from a previous incarnation of
        // the object can never be mistaken for valid records.
        for i in 0..capacity {
            region
                .atomic_u64(layout::slot_offset(i) + slot_offsets::STATE)
                .store(0, Ordering::Relaxed);
        }
        region
            .atomic_u64(offsets::VERSION)
            .store(layout::VERSION, Ordering::Relaxed);
        region
            .atomic_u64(offsets::CAPACITY)
            .store(capacity as u64, Ordering::Relaxed);
        region.atomic_u64(offsets::HEAD).store(0, Ordering::Relaxed);
        region
            .atomic_u64(offsets::TARGET_MIN)
            .store(layout::unset_target_bits(), Ordering::Relaxed);
        region
            .atomic_u64(offsets::TARGET_MAX)
            .store(layout::unset_target_bits(), Ordering::Relaxed);
        region
            .atomic_u64(offsets::FIRST_TIMESTAMP)
            .store(layout::NO_TIMESTAMP, Ordering::Relaxed);
        region
            .atomic_u64(offsets::DEFAULT_WINDOW)
            .store(default_window as u64, Ordering::Relaxed);
        // Publish the magic last: an observer that sees the magic is
        // guaranteed to see an initialized header.
        region
            .atomic_u64(offsets::MAGIC)
            .store(layout::MAGIC, Ordering::Release);
        Ok(ShmSegment { region, capacity })
    }

    /// Opens an existing segment by name and validates its header.
    pub fn open(name: &str) -> Result<Self> {
        let region = ShmRegion::open(name, layout::HEADER_SIZE)?;
        let magic = region.atomic_u64(offsets::MAGIC).load(Ordering::Acquire);
        if magic != layout::MAGIC {
            return Err(heartbeats::HeartbeatError::Backend(format!(
                "shared-memory object {name} is not a heartbeat segment (magic {magic:#x})"
            )));
        }
        let version = region.atomic_u64(offsets::VERSION).load(Ordering::Acquire);
        if version != layout::VERSION {
            return Err(heartbeats::HeartbeatError::Backend(format!(
                "unsupported heartbeat segment version {version}"
            )));
        }
        let capacity = region.atomic_u64(offsets::CAPACITY).load(Ordering::Acquire) as usize;
        if capacity == 0 || layout::segment_size(capacity) > region.len() {
            return Err(heartbeats::HeartbeatError::Backend(format!(
                "heartbeat segment {name} declares capacity {capacity} but is only {} bytes",
                region.len()
            )));
        }
        Ok(ShmSegment { region, capacity })
    }

    /// Removes the named segment from the system namespace.
    pub fn unlink(name: &str) -> Result<()> {
        ShmRegion::unlink(name)
    }

    /// Number of record slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Default window registered by the producer.
    pub fn default_window(&self) -> usize {
        self.region
            .atomic_u64(offsets::DEFAULT_WINDOW)
            .load(Ordering::Acquire) as usize
    }

    /// Total number of beats recorded so far.
    pub fn total(&self) -> u64 {
        self.region.atomic_u64(offsets::HEAD).load(Ordering::Acquire)
    }

    /// Timestamp of the first beat, if any.
    pub fn first_timestamp_ns(&self) -> Option<u64> {
        let ts = self
            .region
            .atomic_u64(offsets::FIRST_TIMESTAMP)
            .load(Ordering::Acquire);
        if ts == layout::NO_TIMESTAMP {
            None
        } else {
            Some(ts)
        }
    }

    fn write_slot(&self, seq: u64, timestamp_ns: u64, tag: u64, thread: u64) {
        let base = layout::slot_offset((seq % self.capacity as u64) as usize);
        let state = self.region.atomic_u64(base + slot_offsets::STATE);
        state.store(layout::writing_state(seq), Ordering::Release);
        std::sync::atomic::fence(Ordering::Release);
        self.region
            .atomic_u64(base + slot_offsets::TIMESTAMP)
            .store(timestamp_ns, Ordering::Relaxed);
        self.region
            .atomic_u64(base + slot_offsets::TAG)
            .store(tag, Ordering::Relaxed);
        self.region
            .atomic_u64(base + slot_offsets::THREAD)
            .store(thread, Ordering::Relaxed);
        state.store(layout::stable_state(seq), Ordering::Release);
    }

    fn read_slot(&self, seq: u64) -> Option<HeartbeatRecord> {
        let base = layout::slot_offset((seq % self.capacity as u64) as usize);
        let state = self.region.atomic_u64(base + slot_offsets::STATE);
        let expected = layout::stable_state(seq);
        if state.load(Ordering::Acquire) != expected {
            return None;
        }
        let timestamp_ns = self
            .region
            .atomic_u64(base + slot_offsets::TIMESTAMP)
            .load(Ordering::Relaxed);
        let tag = self
            .region
            .atomic_u64(base + slot_offsets::TAG)
            .load(Ordering::Relaxed);
        let thread = self
            .region
            .atomic_u64(base + slot_offsets::THREAD)
            .load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        if state.load(Ordering::Relaxed) != expected {
            return None;
        }
        Some(HeartbeatRecord::new(
            seq,
            timestamp_ns,
            Tag::new(tag),
            BeatThreadId(thread as u32),
        ))
    }

    /// Records a beat directly into the segment, assigning the next sequence
    /// number. Used when the segment *is* the primary buffer (no in-process
    /// heartbeat object).
    pub fn push(&self, timestamp_ns: u64, tag: Tag, thread: BeatThreadId) -> u64 {
        let seq = self.region.atomic_u64(offsets::HEAD).fetch_add(1, Ordering::AcqRel);
        if seq == 0 {
            let _ = self.region.atomic_u64(offsets::FIRST_TIMESTAMP).compare_exchange(
                layout::NO_TIMESTAMP,
                timestamp_ns,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        self.write_slot(seq, timestamp_ns, tag.value(), thread.index() as u64);
        seq
    }

    /// Mirrors a record that already carries a sequence number assigned by an
    /// in-process buffer. The head counter tracks the highest mirrored
    /// sequence, so out-of-order arrival from concurrent producer threads is
    /// tolerated.
    pub fn mirror(&self, record: &HeartbeatRecord) {
        if record.seq == 0 {
            let _ = self.region.atomic_u64(offsets::FIRST_TIMESTAMP).compare_exchange(
                layout::NO_TIMESTAMP,
                record.timestamp_ns,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        self.write_slot(
            record.seq,
            record.timestamp_ns,
            record.tag.value(),
            record.thread.index() as u64,
        );
        self.region
            .atomic_u64(offsets::HEAD)
            .fetch_max(record.seq + 1, Ordering::AcqRel);
    }

    /// Sets the published target heart-rate range.
    pub fn set_target(&self, min_bps: f64, max_bps: f64) {
        self.region
            .atomic_u64(offsets::TARGET_MIN)
            .store(min_bps.to_bits(), Ordering::Release);
        self.region
            .atomic_u64(offsets::TARGET_MAX)
            .store(max_bps.to_bits(), Ordering::Release);
    }

    /// The published target range, if set.
    pub fn target(&self) -> Option<(f64, f64)> {
        let min = f64::from_bits(
            self.region
                .atomic_u64(offsets::TARGET_MIN)
                .load(Ordering::Acquire),
        );
        let max = f64::from_bits(
            self.region
                .atomic_u64(offsets::TARGET_MAX)
                .load(Ordering::Acquire),
        );
        if min >= 0.0 && max >= 0.0 {
            Some((min, max))
        } else {
            None
        }
    }

    /// Returns up to the last `n` records in chronological order.
    pub fn last_n(&self, n: usize) -> Vec<HeartbeatRecord> {
        let head = self.total();
        if head == 0 || n == 0 {
            return Vec::new();
        }
        let available = head.min(self.capacity as u64);
        let take = (n as u64).min(available);
        let mut out = Vec::with_capacity(take as usize);
        for seq in (head - take)..head {
            match self.read_slot(seq) {
                Some(record) => out.push(record),
                None => out.clear(),
            }
        }
        out
    }
}

/// A [`Backend`] that mirrors global heartbeats into a shared-memory segment.
///
/// Local (per-thread) beats are not mirrored: the paper's model keeps private
/// buffers thread-local, while the globally accessible buffer carries the
/// application-wide stream.
#[derive(Debug, Clone)]
pub struct ShmBackend {
    segment: Arc<ShmSegment>,
    mirrored: Arc<std::sync::atomic::AtomicU64>,
}

impl ShmBackend {
    /// Creates a backend that writes into a freshly created segment.
    pub fn create(name: &str, capacity: usize, default_window: usize) -> Result<Self> {
        Ok(Self::from_segment(Arc::new(ShmSegment::create(
            name,
            capacity,
            default_window,
        )?)))
    }

    /// Wraps an already created segment.
    pub fn from_segment(segment: Arc<ShmSegment>) -> Self {
        ShmBackend {
            segment,
            mirrored: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// The underlying segment.
    pub fn segment(&self) -> &Arc<ShmSegment> {
        &self.segment
    }
}

impl Backend for ShmBackend {
    fn on_beat(&self, _app: &str, record: &HeartbeatRecord, scope: BeatScope) {
        if scope == BeatScope::Global {
            self.segment.mirror(record);
            self.mirrored.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn on_target_change(&self, _app: &str, min_bps: f64, max_bps: f64) {
        self.segment.set_target(min_bps, max_bps);
    }

    fn stats(&self) -> heartbeats::BackendStats {
        heartbeats::BackendStats {
            mirrored: self.mirrored.load(Ordering::Relaxed),
            // The shared-memory ring overwrites the oldest slot by design;
            // nothing is ever shed before reaching the medium.
            dropped: 0,
        }
    }
}

/// External-observer handle over a shared-memory heartbeat segment.
///
/// Cloning is cheap (the mapping is shared), which is what lets
/// [`Observe::subscribe`](heartbeats::Observe::subscribe) hand out an event
/// stream that owns its own handle.
#[derive(Debug, Clone)]
pub struct ShmObserver {
    name: String,
    segment: Arc<ShmSegment>,
    /// Observer-side progress probe `(last total, when it last advanced)`:
    /// the producer's clock is process-local, so the only stall signal an
    /// external mapping has is "the beat total stopped moving". Shared
    /// across clones so every handle agrees.
    progress: Arc<std::sync::Mutex<(u64, std::time::Instant)>>,
}

impl ShmObserver {
    /// Attaches to the segment named `name`.
    pub fn attach(name: &str) -> Result<Self> {
        Ok(ShmObserver {
            name: name.to_string(),
            segment: Arc::new(ShmSegment::open(name)?),
            progress: Arc::new(std::sync::Mutex::new((0, std::time::Instant::now()))),
        })
    }

    /// True if the beat total has advanced within the stall horizon
    /// (observer clock). Updates the progress probe.
    fn progressing(&self, total: u64) -> bool {
        let mut probe = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        let now = std::time::Instant::now();
        if total != probe.0 {
            *probe = (total, now);
            return true;
        }
        now.duration_since(probe.1).as_nanos() < heartbeats::observe::DEFAULT_STALE_NS as u128
    }

    /// The shared-memory object name this observer is attached to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of global beats recorded.
    pub fn total_beats(&self) -> u64 {
        self.segment.total()
    }

    /// The last `n` beats in chronological order.
    pub fn history(&self, n: usize) -> Vec<HeartbeatRecord> {
        self.segment.last_n(n)
    }

    /// Average heart rate over the last `window` beats (0 = the producer's
    /// default window).
    pub fn current_rate(&self, window: usize) -> Option<f64> {
        let window = if window == 0 {
            self.segment.default_window().max(2)
        } else {
            window.max(2)
        };
        heartbeats::window::windowed_rate(&self.segment.last_n(window))
    }

    /// Lifetime average rate given the current time on the producer's clock.
    pub fn global_average_rate(&self, now_ns: u64) -> Option<f64> {
        let first = self.segment.first_timestamp_ns()?;
        heartbeats::window::global_rate(self.segment.total(), first, now_ns)
    }

    /// The producer's declared target range, if any.
    pub fn target(&self) -> Option<(f64, f64)> {
        self.segment.target()
    }

    /// The producer's default window.
    pub fn default_window(&self) -> usize {
        self.segment.default_window()
    }
}

impl heartbeats::Observe for ShmObserver {
    fn name(&self) -> &str {
        &self.name
    }

    fn snapshot(&self) -> Option<heartbeats::ObservedSnapshot> {
        let total = self.total_beats();
        Some(heartbeats::ObservedSnapshot {
            total_beats: total,
            rate_bps: self.current_rate(0),
            target: self.target(),
            dropped: 0, // the shared ring overwrites in place, never sheds
            alive: total > 0 && self.progressing(total),
        })
    }

    fn health(&self) -> heartbeats::ObservedHealth {
        let total = self.total_beats();
        if total == 0 {
            return heartbeats::ObservedHealth::NoSignal;
        }
        // The segment's rate is computed from frozen producer timestamps,
        // so it never decays on its own; a dead producer is detected by
        // the observer-side progress probe instead (a guarded control loop
        // must hold rather than act on the frozen rate).
        if !self.progressing(total) {
            return heartbeats::ObservedHealth::Stalled;
        }
        match (self.current_rate(0), self.target()) {
            (Some(rate), Some((min, _))) if rate < min => heartbeats::ObservedHealth::Degraded,
            _ => heartbeats::ObservedHealth::Healthy,
        }
    }

    fn rate(&self, window: usize) -> Option<f64> {
        self.current_rate(window)
    }

    fn beats_since(&self, seen_total: u64) -> Option<Vec<heartbeats::ObservedBeat>> {
        let total = self.total_beats();
        let fresh = total.saturating_sub(seen_total);
        if fresh == 0 {
            return Some(Vec::new());
        }
        Some(
            self.history(fresh.min(usize::MAX as u64) as usize)
                .into_iter()
                .filter(|record| record.seq >= seen_total)
                .map(|record| heartbeats::ObservedBeat {
                    record,
                    scope: BeatScope::Global, // only global beats are mirrored
                })
                .collect(),
        )
    }

    fn subscribe(
        &self,
        filter: &heartbeats::ObserveFilter,
    ) -> std::result::Result<heartbeats::ObserveStream, heartbeats::ObserveError> {
        Ok(heartbeats::observe::polling_stream(
            self.clone(),
            filter.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heartbeats::{Clock, HeartbeatBuilder, ManualClock};
    use std::sync::atomic::AtomicU64;

    fn unique_name(tag: &str) -> String {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        format!(
            "hb-shm-test-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )
    }

    #[test]
    fn create_and_open_roundtrip_header() {
        let name = unique_name("header");
        let segment = ShmSegment::create(&name, 64, 20).unwrap();
        assert_eq!(segment.capacity(), 64);
        assert_eq!(segment.default_window(), 20);
        assert_eq!(segment.total(), 0);
        assert!(segment.target().is_none());
        assert!(segment.first_timestamp_ns().is_none());

        let reopened = ShmSegment::open(&name).unwrap();
        assert_eq!(reopened.capacity(), 64);
        assert_eq!(reopened.default_window(), 20);
        ShmSegment::unlink(&name).unwrap();
    }

    #[test]
    fn open_rejects_non_heartbeat_object() {
        let name = unique_name("garbage");
        let _region = ShmRegion::create(&name, 4096).unwrap();
        assert!(ShmSegment::open(&name).is_err());
        ShmSegment::unlink(&name).unwrap();
    }

    #[test]
    fn push_and_read_across_handles() {
        let name = unique_name("push");
        let writer = ShmSegment::create(&name, 16, 4).unwrap();
        for i in 0..10u64 {
            writer.push(i * 1_000, Tag::new(i), BeatThreadId(1));
        }
        let reader = ShmSegment::open(&name).unwrap();
        assert_eq!(reader.total(), 10);
        assert_eq!(reader.first_timestamp_ns(), Some(0));
        let hist = reader.last_n(3);
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[2].seq, 9);
        assert_eq!(hist[2].tag, Tag::new(9));
        ShmSegment::unlink(&name).unwrap();
    }

    #[test]
    fn wraparound_keeps_most_recent() {
        let name = unique_name("wrap");
        let segment = ShmSegment::create(&name, 8, 4).unwrap();
        for i in 0..20u64 {
            segment.push(i, Tag::new(i), BeatThreadId(0));
        }
        let hist = segment.last_n(100);
        assert_eq!(hist.len(), 8);
        assert_eq!(hist[0].seq, 12);
        assert_eq!(hist[7].seq, 19);
        ShmSegment::unlink(&name).unwrap();
    }

    #[test]
    fn targets_roundtrip_through_shm() {
        let name = unique_name("targets");
        let segment = ShmSegment::create(&name, 8, 4).unwrap();
        segment.set_target(30.0, 35.0);
        let observer = ShmObserver::attach(&name).unwrap();
        assert_eq!(observer.target(), Some((30.0, 35.0)));
        ShmSegment::unlink(&name).unwrap();
    }

    #[test]
    fn backend_mirrors_heartbeat_stream() {
        let name = unique_name("backend");
        let clock = ManualClock::new();
        let backend = ShmBackend::create(&name, 128, 10).unwrap();
        let hb = HeartbeatBuilder::new("shm-app")
            .window(10)
            .clock(Arc::new(clock.clone()))
            .backend(Arc::new(backend))
            .build()
            .unwrap();
        hb.set_target_rate(25.0, 30.0).unwrap();
        for i in 0..50u64 {
            clock.advance_ns(40_000_000); // 25 beats/s
            hb.heartbeat_tagged(Tag::new(i));
        }
        hb.heartbeat_local(Tag::new(999)); // must NOT be mirrored

        let observer = ShmObserver::attach(&name).unwrap();
        assert_eq!(observer.total_beats(), 50);
        assert_eq!(observer.target(), Some((25.0, 30.0)));
        assert_eq!(observer.default_window(), 10);
        let rate = observer.current_rate(0).unwrap();
        assert!((rate - 25.0).abs() < 1e-6);
        let rate_wide = observer.current_rate(50).unwrap();
        assert!((rate_wide - 25.0).abs() < 1e-6);
        let avg = observer.global_average_rate(clock.now_ns()).unwrap();
        assert!(avg > 24.0 && avg < 26.0);
        let hist = observer.history(5);
        assert_eq!(hist.len(), 5);
        assert_eq!(hist[4].tag, Tag::new(49));
        ShmSegment::unlink(&name).unwrap();
    }

    #[test]
    fn concurrent_mirroring_is_torn_free() {
        let name = unique_name("concurrent");
        let segment = Arc::new(ShmSegment::create(&name, 64, 4).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let segment = Arc::clone(&segment);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    segment.push(i, Tag::new(i), BeatThreadId(0));
                    i += 1;
                }
            })
        };
        let observer = ShmSegment::open(&name).unwrap();
        for _ in 0..2_000 {
            for record in observer.last_n(64) {
                assert_eq!(record.timestamp_ns, record.tag.value());
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        ShmSegment::unlink(&name).unwrap();
    }

    #[test]
    fn observer_attach_missing_segment_fails() {
        assert!(ShmObserver::attach(&unique_name("missing")).is_err());
    }
}
