//! # hb-shm — external observability backends for Application Heartbeats
//!
//! The Heartbeats paper requires that "the global buffer must be in a
//! universally accessible location such as coherent shared memory or a disk
//! file" so that external observers — the OS, other applications, hardware —
//! can read an application's progress and goals. This crate provides both
//! options:
//!
//! * [`FileBackend`] / [`FileObserver`] — a line-oriented log file, matching
//!   the reference C implementation described in Section 4 of the paper.
//! * [`ShmBackend`] / [`ShmObserver`] / [`ShmSegment`] — a POSIX shared-memory
//!   segment with a documented fixed layout ([`layout`]), realizing the
//!   "standard memory layout" the paper leaves as future work. Producers are
//!   lock-free; observers take torn-free snapshots via per-slot seqlocks.
//!
//! Both plug into the core crate through the
//! [`Backend`](heartbeats::Backend) trait:
//!
//! ```no_run
//! use std::sync::Arc;
//! use heartbeats::HeartbeatBuilder;
//! use hb_shm::ShmBackend;
//!
//! let backend = ShmBackend::create("my-app-heartbeats", 4096, 20).unwrap();
//! let hb = HeartbeatBuilder::new("my-app")
//!     .window(20)
//!     .backend(Arc::new(backend))
//!     .build()
//!     .unwrap();
//! hb.heartbeat();
//! ```
//!
//! and an external process attaches with:
//!
//! ```no_run
//! use hb_shm::ShmObserver;
//! let observer = ShmObserver::attach("my-app-heartbeats").unwrap();
//! println!("rate = {:?}", observer.current_rate(0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod file;
pub mod layout;
pub mod posix;
mod shm;

pub use file::{parse_line, FileBackend, FileObserver, LogEntry};
pub use posix::ShmRegion;
pub use shm::{ShmBackend, ShmObserver, ShmSegment};
