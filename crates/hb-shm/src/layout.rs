//! The standard shared-memory layout for heartbeat data.
//!
//! Section 3 of the paper anticipates hardware that reads heartbeat buffers
//! directly and notes that *"a standard must be established specifying the
//! components and layout of the heartbeat data structures in memory"*, leaving
//! that standard to future work. This module defines such a layout: a fixed
//! header followed by a power-of-two-free array of fixed-size record slots
//! forming a circular buffer, with per-slot sequence stamps (a seqlock) so
//! readers in other processes — or hardware agents — can take torn-free
//! snapshots without ever blocking the producer.
//!
//! All fields are little-endian `u64`s at 8-byte-aligned offsets, updated
//! exclusively with atomic operations.
//!
//! ```text
//! offset  field
//! ------  -----------------------------------------------------------
//!   0     magic            0x4842_5348_4D31_0001 ("HBSHM1", version 1)
//!   8     version          layout version (currently 1)
//!  16     capacity         number of record slots
//!  24     head             total number of beats ever recorded
//!  32     target_min_bits  f64 bit pattern of the min target rate
//!  40     target_max_bits  f64 bit pattern of the max target rate
//!  48     first_timestamp  ns timestamp of the first beat (u64::MAX = none)
//!  56     default_window   default window registered by the application
//!  64..   reserved         zeroed, reserved for future layout versions
//! 128     slot[0]          first record slot
//! ...
//! 128 + i*32   slot[i]
//! ```
//!
//! Each 32-byte slot:
//!
//! ```text
//! offset  field
//! ------  -----------------------------------------------------
//!   0     state        seqlock stamp: 2*seq+1 writing, 2*seq+2 stable
//!   8     timestamp    beat timestamp in nanoseconds
//!  16     tag          user tag
//!  24     thread       dense thread id of the producer
//! ```

/// Magic value identifying a heartbeat shared-memory segment ("HBSHM1" + 0001).
pub const MAGIC: u64 = 0x4842_5348_4D31_0001;

/// Current layout version.
pub const VERSION: u64 = 1;

/// Size of the segment header in bytes.
pub const HEADER_SIZE: usize = 128;

/// Size of one record slot in bytes.
pub const SLOT_SIZE: usize = 32;

/// Sentinel stored in `first_timestamp` when no beat has been recorded.
pub const NO_TIMESTAMP: u64 = u64::MAX;

/// Value stored in the target fields when no target has been set
/// (bit pattern of -1.0).
pub fn unset_target_bits() -> u64 {
    (-1.0f64).to_bits()
}

/// Byte offsets of the header fields.
pub mod offsets {
    /// Magic value.
    pub const MAGIC: usize = 0;
    /// Layout version.
    pub const VERSION: usize = 8;
    /// Number of record slots.
    pub const CAPACITY: usize = 16;
    /// Total beats recorded.
    pub const HEAD: usize = 24;
    /// Bit pattern of the minimum target rate.
    pub const TARGET_MIN: usize = 32;
    /// Bit pattern of the maximum target rate.
    pub const TARGET_MAX: usize = 40;
    /// Timestamp of the first beat.
    pub const FIRST_TIMESTAMP: usize = 48;
    /// Default window registered by the application.
    pub const DEFAULT_WINDOW: usize = 56;
}

/// Byte offsets of the fields inside a slot (relative to the slot start).
pub mod slot_offsets {
    /// Seqlock stamp.
    pub const STATE: usize = 0;
    /// Beat timestamp (ns).
    pub const TIMESTAMP: usize = 8;
    /// User tag.
    pub const TAG: usize = 16;
    /// Producer thread id.
    pub const THREAD: usize = 24;
}

/// Total size in bytes of a segment with `capacity` slots.
pub fn segment_size(capacity: usize) -> usize {
    HEADER_SIZE + capacity * SLOT_SIZE
}

/// Byte offset of slot `index`.
pub fn slot_offset(index: usize) -> usize {
    HEADER_SIZE + index * SLOT_SIZE
}

/// Seqlock stamp marking a slot as being written for sequence `seq`.
pub fn writing_state(seq: u64) -> u64 {
    seq.wrapping_mul(2).wrapping_add(1)
}

/// Seqlock stamp marking a slot as holding the stable record for `seq`.
pub fn stable_state(seq: u64) -> u64 {
    seq.wrapping_mul(2).wrapping_add(2)
}

#[cfg(test)]
#[allow(clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    fn header_fits_reserved_space() {
        assert!(offsets::DEFAULT_WINDOW + 8 <= HEADER_SIZE);
    }

    #[test]
    fn header_offsets_are_aligned_and_distinct() {
        let all = [
            offsets::MAGIC,
            offsets::VERSION,
            offsets::CAPACITY,
            offsets::HEAD,
            offsets::TARGET_MIN,
            offsets::TARGET_MAX,
            offsets::FIRST_TIMESTAMP,
            offsets::DEFAULT_WINDOW,
        ];
        for (i, &a) in all.iter().enumerate() {
            assert_eq!(a % 8, 0);
            for &b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn slot_offsets_are_within_slot() {
        assert!(slot_offsets::THREAD + 8 <= SLOT_SIZE);
        assert_eq!(slot_offsets::STATE, 0);
    }

    #[test]
    fn segment_size_scales_with_capacity() {
        assert_eq!(segment_size(0), HEADER_SIZE);
        assert_eq!(segment_size(4), HEADER_SIZE + 4 * SLOT_SIZE);
        assert_eq!(slot_offset(0), HEADER_SIZE);
        assert_eq!(slot_offset(3), HEADER_SIZE + 3 * SLOT_SIZE);
    }

    #[test]
    fn seqlock_states_are_distinct_per_seq() {
        for seq in [0u64, 1, 2, 1_000_000] {
            assert_ne!(writing_state(seq), stable_state(seq));
            assert_eq!(writing_state(seq) % 2, 1);
            assert_eq!(stable_state(seq) % 2, 0);
            assert_ne!(stable_state(seq), 0, "0 is reserved for never-written");
        }
        assert_ne!(stable_state(0), stable_state(1));
    }

    #[test]
    fn unset_target_bits_decode_to_negative() {
        assert!(f64::from_bits(unset_target_bits()) < 0.0);
    }
}
