//! Proves the reactor's Beats decode→ingest path is allocation-free at
//! steady state: a counting global allocator measures the exact number of
//! heap operations while frames flow through `FrameDecoder::next_event`
//! (yielding borrowing `BeatsView`s) into
//! `CollectorState::ingest_batch_with` — and requires zero.
//!
//! The file contains a single test so no concurrent test thread can
//! attribute its allocations to the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hb_net::frame::{FrameDecoder, FrameEvent};
use hb_net::wire::{BatchEncoder, WireBeat};
use hb_net::{CollectorConfig, CollectorState};
use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};

struct CountingAllocator;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Encodes one batch frame of `n` beats starting at `base`, in either
/// encoding, reusing `encoder`'s buffer.
fn encode_batch(encoder: &mut BatchEncoder, compact: bool, base: u64, n: u64) -> Vec<u8> {
    if compact {
        encoder.begin_compact(0);
    } else {
        encoder.begin(0);
    }
    for i in 0..n {
        let seq = base + i;
        encoder.push(&WireBeat {
            record: HeartbeatRecord::new(seq, seq * 1_000_000 + 17, Tag::NONE, BeatThreadId(0)),
            scope: BeatScope::Global,
        });
    }
    encoder.finish().to_vec()
}

#[test]
fn beats_decode_to_ingest_allocates_nothing_at_steady_state() {
    const BATCH: u64 = 64;
    let state = CollectorState::new(CollectorConfig::default());
    let handle = state.hello("alloc-probe", 1, 20);
    let mut encoder = BatchEncoder::new();

    for compact in [false, true] {
        let mut decoder = FrameDecoder::new();
        let mut base = 0u64;
        // Warm-up: grow the decoder buffer to steady state, create the
        // registry entry's rate window/history ring, and fill the moving
        // window to its bound (frames are encoded up front so the measured
        // loop touches producer-side buffers not at all).
        let warm_frames: Vec<Vec<u8>> = (0..64)
            .map(|_| {
                let f = encode_batch(&mut encoder, compact, base, BATCH);
                base += BATCH;
                f
            })
            .collect();
        let measured_frames: Vec<Vec<u8>> = (0..256)
            .map(|_| {
                let f = encode_batch(&mut encoder, compact, base, BATCH);
                base += BATCH;
                f
            })
            .collect();
        let drive = |decoder: &mut FrameDecoder, frames: &[Vec<u8>]| {
            for frame in frames {
                decoder.push(frame);
                while let Some(event) = decoder.next_event().unwrap() {
                    match event {
                        FrameEvent::Beats(view) => {
                            state.ingest_batch_with(&handle, view.dropped_total(), view.iter());
                        }
                        FrameEvent::Control(other) => panic!("unexpected frame {other:?}"),
                    }
                }
            }
        };
        drive(&mut decoder, &warm_frames);

        let before = ALLOC_OPS.load(Ordering::Relaxed);
        drive(&mut decoder, &measured_frames);
        let after = ALLOC_OPS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "decode→ingest of 256 {} frames must not allocate",
            if compact { "compact" } else { "fixed-width" }
        );
    }

    // The beats really arrived.
    let snap = state.snapshot("alloc-probe").unwrap();
    assert_eq!(snap.total_beats, 2 * (64 + 256) * BATCH);
}
