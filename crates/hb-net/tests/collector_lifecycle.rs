//! Lifecycle stress: the collector must start and stop cleanly while
//! producers are concurrently connecting.
//!
//! Regression test for the PR 1 thread-per-connection engine, whose
//! `shutdown` joined connection threads under a held `Mutex` on the thread
//! list — a connection thread registering itself at the wrong moment
//! deadlocked the daemon. The reactor has a fixed thread pool and no
//! per-connection threads, so shutdown cannot race connection churn; this
//! test pins that property.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hb_net::{Collector, Frame, Hello};

#[test]
fn start_stop_100x_under_concurrent_connects() {
    for round in 0..100 {
        let mut collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0")
            .unwrap_or_else(|e| panic!("bind round {round}: {e}"));
        let ingest = collector.ingest_addr();
        let query = collector.query_addr();
        let stop = Arc::new(AtomicBool::new(false));

        // Connectors hammer both ports while the collector starts and stops.
        let connectors: Vec<_> = (0..3)
            .map(|i| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let hello = Frame::Hello(Hello {
                        app: format!("churn-{i}"),
                        pid: i,
                        default_window: 20,
                    })
                    .encode();
                    while !stop.load(Ordering::Relaxed) {
                        let addr = if i % 2 == 0 { ingest } else { query };
                        if let Ok(mut stream) = TcpStream::connect(addr) {
                            // Half the connections say something first; all
                            // of them disconnect abruptly.
                            if i % 2 == 0 {
                                let _ = stream.write_all(&hello);
                            } else {
                                let _ = stream.write_all(b"PING\n");
                            }
                        }
                        // Throttle so the connect loop cannot starve the
                        // reactor of CPU on small machines.
                        std::thread::sleep(Duration::from_micros(500));
                    }
                })
            })
            .collect();

        // Let a few connections land mid-flight, then shut down while the
        // connectors are still running — this must never deadlock.
        std::thread::sleep(Duration::from_millis(2));
        collector.shutdown();
        drop(collector);

        stop.store(true, Ordering::Relaxed);
        for handle in connectors {
            handle.join().expect("connector thread");
        }
    }
}
