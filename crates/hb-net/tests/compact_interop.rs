//! Cross-version interop for the compact (version-3) beat framing.
//!
//! Four quadrants, over real loopback sockets:
//!
//! * v3 producer ↔ v3 collector — negotiates compact framing via the
//!   hello acknowledgment and delivers beats.
//! * v3 producer ↔ "v2 collector" (a silent server that, like every
//!   pre-v3 collector, never writes on the ingest socket) — the producer
//!   falls back cleanly to the fixed-width version-2 encoding.
//! * v2 producer (compact negotiation disabled) ↔ v3 collector — the
//!   collector decodes the legacy frames.
//! * A raw byte-level v2 client (hand-encoded `Frame::encode` stream,
//!   exactly what an old binary emits) ↔ v3 collector.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hb_net::frame::{FrameDecoder, FrameEvent};
use hb_net::wire::{BeatBatch, Frame, Hello, WireBeat};
use hb_net::{Collector, TcpBackend, TcpBackendConfig};
use heartbeats::{Backend, BeatScope, BeatThreadId, HeartbeatRecord, Tag};

fn record(seq: u64) -> HeartbeatRecord {
    HeartbeatRecord::new(seq, 1_000_000 * seq + 500, Tag::NONE, BeatThreadId(0))
}

/// Spins until `cond` holds or panics after a generous deadline.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn v3_client_negotiates_compact_with_v3_collector() {
    let mut collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").unwrap();
    let backend = TcpBackend::with_config(
        collector.ingest_addr().to_string(),
        "compact-app",
        TcpBackendConfig {
            flush_interval: Duration::from_millis(1),
            ..TcpBackendConfig::default()
        },
    );
    for i in 0..500u64 {
        backend.on_beat("compact-app", &record(i), BeatScope::Global);
    }
    let state = collector.state();
    wait_for("all beats ingested", || {
        state
            .snapshot("compact-app")
            .map(|s| s.total_beats + s.producer_dropped >= 500)
            .unwrap_or(false)
    });
    assert!(
        backend.negotiated_compact(),
        "a v3 collector acks the hello, so the connection must run compact"
    );
    let snap = state.snapshot("compact-app").unwrap();
    assert_eq!(snap.total_beats + snap.producer_dropped, 500);
    // Timestamps survived the delta encoding: the windowed rate is the
    // nominal 1 kHz of `record`'s 1 ms spacing.
    let rate = snap.rate_bps.expect("enough beats for a rate");
    assert!((rate - 1_000.0).abs() < 1.0, "rate {rate}");
    drop(backend);
    collector.shutdown();
}

#[test]
fn v3_client_falls_back_cleanly_against_v2_collector() {
    // A faithful stand-in for every pre-v3 collector: accepts, reads,
    // never writes on the ingest socket.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Vec<u8> {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
            let mut received = Vec::new();
            let mut buf = [0u8; 4096];
            while !stop.load(Ordering::Relaxed) {
                match conn.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => received.extend_from_slice(&buf[..n]),
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
            received
        })
    };

    let backend = TcpBackend::with_config(
        addr.to_string(),
        "fallback-app",
        TcpBackendConfig {
            flush_interval: Duration::from_millis(1),
            negotiate_timeout: Duration::from_millis(30),
            ..TcpBackendConfig::default()
        },
    );
    for i in 0..100u64 {
        backend.on_beat("fallback-app", &record(i), BeatScope::Global);
    }
    wait_for("beats flushed to the silent server", || backend.sent() >= 100);
    assert!(
        !backend.negotiated_compact(),
        "no hello-ack means the v2 fallback"
    );
    drop(backend); // sends Bye, closes the socket
    stop.store(true, Ordering::Relaxed);
    let received = server.join().unwrap();

    // Everything on the wire must decode under pre-v3 rules: producer
    // kinds only, all version-1 headers, no compact frames.
    let mut decoder = FrameDecoder::new();
    decoder.push(&received);
    let mut beats_seen = 0u64;
    let mut hello_seen = false;
    loop {
        match decoder.next_event().unwrap() {
            Some(FrameEvent::Beats(view)) => {
                assert!(!view.is_compact(), "fallback must use fixed-width framing");
                beats_seen += view.len() as u64;
            }
            Some(FrameEvent::Control(Frame::Hello(hello))) => {
                assert_eq!(hello.app, "fallback-app");
                hello_seen = true;
            }
            Some(FrameEvent::Control(Frame::Bye)) => {}
            Some(FrameEvent::Control(other)) => panic!("unexpected frame {other:?}"),
            None => break,
        }
    }
    assert!(hello_seen);
    assert_eq!(beats_seen, 100);
    assert!(!decoder.has_partial(), "stream ended on a frame boundary");
    // Every header byte 4 in the stream: the producer stamped only
    // versions a v2 decoder accepts (per-kind stamping: hello/beats/bye
    // are all version 1).
    let mut at = 0;
    while at + 14 <= received.len() {
        let (_, payload_len, _) = Frame::decode_header(&received[at..]).unwrap();
        assert!(received[at + 4] <= 2, "frame at {at} claims version {}", received[at + 4]);
        at += 14 + payload_len;
    }
}

#[test]
fn v2_client_interops_with_v3_collector() {
    let mut collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").unwrap();
    let backend = TcpBackend::with_config(
        collector.ingest_addr().to_string(),
        "legacy-app",
        TcpBackendConfig {
            flush_interval: Duration::from_millis(1),
            prefer_compact: false, // a v2-era producer
            ..TcpBackendConfig::default()
        },
    );
    for i in 0..200u64 {
        backend.on_beat("legacy-app", &record(i), BeatScope::Global);
    }
    let state = collector.state();
    wait_for("legacy beats ingested", || {
        state
            .snapshot("legacy-app")
            .map(|s| s.total_beats + s.producer_dropped >= 200)
            .unwrap_or(false)
    });
    assert!(!backend.negotiated_compact());
    drop(backend);
    collector.shutdown();
}

#[test]
fn raw_v2_byte_stream_is_accepted_by_v3_collector() {
    // Exactly the bytes an old client binary would send: Frame::encode's
    // fixed-width batch after a hello, no reads at all.
    let mut collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").unwrap();
    let mut conn = TcpStream::connect(collector.ingest_addr()).unwrap();
    let mut bytes = Frame::Hello(Hello {
        app: "raw-v2".into(),
        pid: 42,
        default_window: 20,
    })
    .encode();
    Frame::Beats(BeatBatch {
        dropped_total: 3,
        beats: (0..64)
            .map(|i| WireBeat {
                record: record(i),
                scope: BeatScope::Global,
            })
            .collect(),
    })
    .encode_into(&mut bytes);
    conn.write_all(&bytes).unwrap();
    conn.flush().unwrap();

    let state = collector.state();
    wait_for("raw v2 beats ingested", || {
        state
            .snapshot("raw-v2")
            .map(|s| s.total_beats == 64)
            .unwrap_or(false)
    });
    let snap = state.snapshot("raw-v2").unwrap();
    assert_eq!(snap.pid, 42);
    assert_eq!(snap.producer_dropped, 3);
    drop(conn);
    collector.shutdown();
}
