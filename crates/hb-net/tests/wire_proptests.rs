//! Randomized property tests for the wire protocol: encode→decode equality
//! for records, batches and every frame kind, plus rejection of malformed
//! and corrupted frames.

use proptest::prelude::*;

use hb_net::wire::{BeatBatch, Frame, Hello, WireBeat, HEADER_LEN};
use hb_net::{FrameReader, FrameWriter};
use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};

/// Deterministically expands compact random tuples into a WireBeat.
fn beat_from(parts: (u64, u64, u64, u32, bool)) -> WireBeat {
    let (seq, timestamp_ns, tag, thread, local) = parts;
    WireBeat {
        record: HeartbeatRecord::new(seq, timestamp_ns, Tag::new(tag), BeatThreadId(thread)),
        scope: if local {
            BeatScope::Local
        } else {
            BeatScope::Global
        },
    }
}

proptest! {
    /// Any single record round-trips exactly through a batch frame.
    #[test]
    fn single_record_roundtrip(
        seq in any::<u64>(),
        timestamp_ns in any::<u64>(),
        tag in any::<u64>(),
        thread in any::<u32>(),
        local in any::<bool>(),
        dropped in any::<u64>(),
    ) {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: dropped,
            beats: vec![beat_from((seq, timestamp_ns, tag, thread, local))],
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// Whole batches of arbitrary size round-trip exactly.
    #[test]
    fn batch_roundtrip(
        seqs in prop::collection::vec(any::<u64>(), 0..200),
        dropped in any::<u64>(),
    ) {
        let beats: Vec<WireBeat> = seqs
            .iter()
            .enumerate()
            .map(|(i, &s)| beat_from((i as u64, s, s ^ 0xABCD, (s % 97) as u32, s % 2 == 0)))
            .collect();
        let frame = Frame::Beats(BeatBatch { dropped_total: dropped, beats });
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Hello frames round-trip for arbitrary (short) names.
    #[test]
    fn hello_roundtrip(
        pid in any::<u32>(),
        window in any::<u32>(),
        name_seed in prop::collection::vec(97u8..123, 1..64),
    ) {
        let app = String::from_utf8(name_seed).unwrap();
        let frame = Frame::Hello(Hello { app, pid, default_window: window });
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Target frames round-trip bit-exactly for finite rates.
    #[test]
    fn target_roundtrip(min in -1.0e12f64..1.0e12, width in 0.0f64..1.0e12) {
        let frame = Frame::Target { min_bps: min, max_bps: min + width };
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// A stream of many frames survives a writer/reader round trip in order.
    #[test]
    fn stream_roundtrip(batch_sizes in prop::collection::vec(0usize..30, 1..20)) {
        let frames: Vec<Frame> = batch_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                Frame::Beats(BeatBatch {
                    dropped_total: i as u64,
                    beats: (0..n)
                        .map(|j| beat_from((j as u64, j as u64 * 31 + i as u64, 0, 0, false)))
                        .collect(),
                })
            })
            .collect();
        let mut wire = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut wire);
            for frame in &frames {
                writer.write_frame(frame).unwrap();
            }
        }
        let mut reader = FrameReader::new(wire.as_slice());
        for frame in &frames {
            prop_assert_eq!(reader.read_frame().unwrap().as_ref(), Some(frame));
        }
        prop_assert_eq!(reader.read_frame().unwrap(), None);
    }

    /// Flipping any single byte of an encoded frame never yields a DIFFERENT
    /// valid frame: decoding either fails or returns the original.
    #[test]
    fn single_byte_corruption_is_never_misread(
        seqs in prop::collection::vec(any::<u64>(), 1..20),
        corrupt_at_fraction in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 1,
            beats: seqs
                .iter()
                .map(|&s| beat_from((s, s.wrapping_mul(3), s, 1, false)))
                .collect(),
        });
        let mut bytes = frame.encode();
        let at = ((bytes.len() as f64 * corrupt_at_fraction) as usize).min(bytes.len() - 1);
        bytes[at] ^= 1 << flip_bit;
        match Frame::decode(&bytes) {
            Err(_) => {}
            Ok((decoded, _)) => prop_assert_eq!(decoded, frame, "corruption at byte {}", at),
        }
    }

    /// Truncating an encoded frame anywhere always fails to decode.
    #[test]
    fn truncation_is_always_rejected(
        seqs in prop::collection::vec(any::<u64>(), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 0,
            beats: seqs.iter().map(|&s| beat_from((s, s, s, 0, true))).collect(),
        });
        let bytes = frame.encode();
        let cut = ((bytes.len() as f64 * cut_fraction) as usize).min(bytes.len() - 1);
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
    }

    /// Random byte soup never decodes as a frame (the magic plus CRC make
    /// accidental acceptance practically impossible).
    #[test]
    fn random_bytes_are_rejected(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Reject only inputs that do not start with the real magic/version.
        if bytes.len() >= HEADER_LEN
            && bytes[..4] == hb_net::wire::MAGIC.to_le_bytes()
        {
            return Ok(());
        }
        prop_assert!(Frame::decode(&bytes).is_err());
    }
}
