//! Randomized property tests for the wire protocol: encode→decode equality
//! for records, batches and every frame kind, plus rejection of malformed
//! and corrupted frames.

use proptest::prelude::*;

use hb_net::wire::{BatchEncoder, BeatBatch, BeatsView, Frame, Hello, WireBeat, HEADER_LEN};
use hb_net::{FrameReader, FrameWriter};
use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};

/// Deterministically expands compact random tuples into a WireBeat.
fn beat_from(parts: (u64, u64, u64, u32, bool)) -> WireBeat {
    let (seq, timestamp_ns, tag, thread, local) = parts;
    WireBeat {
        record: HeartbeatRecord::new(seq, timestamp_ns, Tag::new(tag), BeatThreadId(thread)),
        scope: if local {
            BeatScope::Local
        } else {
            BeatScope::Global
        },
    }
}

/// Expands one random seed into an adversarial record: non-monotone
/// timestamps, maximal sequence/tag jumps, a mix of elided (NONE) and
/// explicit tags, both scopes, arbitrary thread ids.
fn adversarial_beat(i: usize, s: u64) -> WireBeat {
    beat_from((
        s,
        s.rotate_left((i % 64) as u32),
        if s.is_multiple_of(3) { 0 } else { s ^ 0x5A5A },
        (s >> 32) as u32,
        s.is_multiple_of(2),
    ))
}

/// Encodes a batch with the compact (version-3) delta/varint framing.
fn encode_compact(batch: &BeatBatch) -> Vec<u8> {
    let mut encoder = BatchEncoder::new();
    encoder.begin_compact(batch.dropped_total);
    for beat in &batch.beats {
        assert!(encoder.push(beat), "test batches fit one compact frame");
    }
    encoder.finish().to_vec()
}

proptest! {
    /// Any single record round-trips exactly through a batch frame.
    #[test]
    fn single_record_roundtrip(
        seq in any::<u64>(),
        timestamp_ns in any::<u64>(),
        tag in any::<u64>(),
        thread in any::<u32>(),
        local in any::<bool>(),
        dropped in any::<u64>(),
    ) {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: dropped,
            beats: vec![beat_from((seq, timestamp_ns, tag, thread, local))],
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// Whole batches of arbitrary size round-trip exactly.
    #[test]
    fn batch_roundtrip(
        seqs in prop::collection::vec(any::<u64>(), 0..200),
        dropped in any::<u64>(),
    ) {
        let beats: Vec<WireBeat> = seqs
            .iter()
            .enumerate()
            .map(|(i, &s)| beat_from((i as u64, s, s ^ 0xABCD, (s % 97) as u32, s % 2 == 0)))
            .collect();
        let frame = Frame::Beats(BeatBatch { dropped_total: dropped, beats });
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Hello frames round-trip for arbitrary (short) names.
    #[test]
    fn hello_roundtrip(
        pid in any::<u32>(),
        window in any::<u32>(),
        name_seed in prop::collection::vec(97u8..123, 1..64),
    ) {
        let app = String::from_utf8(name_seed).unwrap();
        let frame = Frame::Hello(Hello { app, pid, default_window: window });
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Target frames round-trip bit-exactly for finite rates.
    #[test]
    fn target_roundtrip(min in -1.0e12f64..1.0e12, width in 0.0f64..1.0e12) {
        let frame = Frame::Target { min_bps: min, max_bps: min + width };
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// A stream of many frames survives a writer/reader round trip in order.
    #[test]
    fn stream_roundtrip(batch_sizes in prop::collection::vec(0usize..30, 1..20)) {
        let frames: Vec<Frame> = batch_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                Frame::Beats(BeatBatch {
                    dropped_total: i as u64,
                    beats: (0..n)
                        .map(|j| beat_from((j as u64, j as u64 * 31 + i as u64, 0, 0, false)))
                        .collect(),
                })
            })
            .collect();
        let mut wire = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut wire);
            for frame in &frames {
                writer.write_frame(frame).unwrap();
            }
        }
        let mut reader = FrameReader::new(wire.as_slice());
        for frame in &frames {
            prop_assert_eq!(reader.read_frame().unwrap().as_ref(), Some(frame));
        }
        prop_assert_eq!(reader.read_frame().unwrap(), None);
    }

    /// Flipping any single byte of an encoded frame never yields a DIFFERENT
    /// valid frame: decoding either fails or returns the original.
    #[test]
    fn single_byte_corruption_is_never_misread(
        seqs in prop::collection::vec(any::<u64>(), 1..20),
        corrupt_at_fraction in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 1,
            beats: seqs
                .iter()
                .map(|&s| beat_from((s, s.wrapping_mul(3), s, 1, false)))
                .collect(),
        });
        let mut bytes = frame.encode();
        let at = ((bytes.len() as f64 * corrupt_at_fraction) as usize).min(bytes.len() - 1);
        bytes[at] ^= 1 << flip_bit;
        match Frame::decode(&bytes) {
            Err(_) => {}
            Ok((decoded, _)) => prop_assert_eq!(decoded, frame, "corruption at byte {}", at),
        }
    }

    /// Truncating an encoded frame anywhere always fails to decode.
    #[test]
    fn truncation_is_always_rejected(
        seqs in prop::collection::vec(any::<u64>(), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 0,
            beats: seqs.iter().map(|&s| beat_from((s, s, s, 0, true))).collect(),
        });
        let bytes = frame.encode();
        let cut = ((bytes.len() as f64 * cut_fraction) as usize).min(bytes.len() - 1);
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
    }

    /// Random byte soup never decodes as a frame (the magic plus CRC make
    /// accidental acceptance practically impossible).
    #[test]
    fn random_bytes_are_rejected(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Reject only inputs that do not start with the real magic/version.
        if bytes.len() >= HEADER_LEN
            && bytes[..4] == hb_net::wire::MAGIC.to_le_bytes()
        {
            return Ok(());
        }
        prop_assert!(Frame::decode(&bytes).is_err());
    }

    /// Arbitrary batches — non-monotone timestamps, maximal varint
    /// seq/tag jumps, empty batches included — round-trip exactly through
    /// the compact (version-3) encoding.
    #[test]
    fn compact_batch_roundtrip(
        seeds in prop::collection::vec(any::<u64>(), 0..200),
        dropped in any::<u64>(),
    ) {
        let beats: Vec<WireBeat> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| adversarial_beat(i, s))
            .collect();
        let batch = BeatBatch { dropped_total: dropped, beats };
        let bytes = encode_compact(&batch);
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, Frame::Beats(batch));
    }

    /// The borrowing view and the materialized decode agree on every
    /// compact batch (and the view's length is exact).
    #[test]
    fn compact_view_matches_materialized_decode(
        seeds in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let beats: Vec<WireBeat> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| adversarial_beat(i, s))
            .collect();
        let batch = BeatBatch { dropped_total: 9, beats };
        let bytes = encode_compact(&batch);
        let (kind, payload_len, _) = Frame::decode_header(&bytes).unwrap();
        let view = BeatsView::parse(kind, &bytes[HEADER_LEN..HEADER_LEN + payload_len]).unwrap();
        prop_assert_eq!(view.len(), batch.beats.len());
        let collected: Vec<WireBeat> = view.iter().collect();
        prop_assert_eq!(collected, batch.beats);
    }

    /// Flipping any single byte of a compact frame never yields a
    /// DIFFERENT valid batch: decoding either fails or returns the
    /// original (the CRC catches everything the varint grammar might
    /// accept).
    #[test]
    fn compact_single_byte_corruption_is_never_misread(
        seeds in prop::collection::vec(any::<u64>(), 1..30),
        corrupt_at_fraction in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let beats: Vec<WireBeat> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| adversarial_beat(i, s))
            .collect();
        let batch = BeatBatch { dropped_total: 1, beats };
        let reference = Frame::Beats(batch.clone());
        let mut bytes = encode_compact(&batch);
        let at = ((bytes.len() as f64 * corrupt_at_fraction) as usize).min(bytes.len() - 1);
        bytes[at] ^= 1 << flip_bit;
        match Frame::decode(&bytes) {
            Err(_) => {}
            Ok((decoded, _)) => prop_assert_eq!(decoded, reference, "corruption at byte {}", at),
        }
    }

    /// A well-behaved stream (monotone seq, bounded jitter, untagged)
    /// always beats the fixed-width encoding by a wide margin: at most 8
    /// bytes per beat against 29.
    #[test]
    fn compact_monotone_stream_stays_small(
        jitters in prop::collection::vec(0u64..2_000_000, 2..200),
    ) {
        let mut ts = 1_700_000_000_000_000_000u64;
        let beats: Vec<WireBeat> = jitters
            .iter()
            .enumerate()
            .map(|(i, &j)| {
                ts += j;
                beat_from((i as u64, ts, 0, 0, false))
            })
            .collect();
        let n = beats.len();
        let batch = BeatBatch { dropped_total: 0, beats };
        let bytes = encode_compact(&batch);
        // Header + dropped varint + first record's absolute timestamp are
        // amortized; per-record cost must stay under 8 bytes.
        prop_assert!(
            bytes.len() <= HEADER_LEN + 11 + 10 + n * 8,
            "{} beats took {} bytes",
            n,
            bytes.len()
        );
    }
}

/// A representative multi-frame stream covering the federation-hardening
/// surface: versioned NodeHello with a path vector, the challenge/response
/// pair, a cursored Subscribe, a cursored Event inside and outside the
/// relay envelope, plus plain beats and acks.
fn federation_stream() -> Vec<u8> {
    use hb_net::wire::{EventFrame, EventPayload, SubscribeReq, AUTH_LEN};
    let event = EventFrame {
        sub_id: 7,
        sent_at_ns: 1_700_000_000_000_000_000,
        cursor: 42,
        app: "edge/camera".into(),
        payload: EventPayload::Beats {
            dropped_total: 3,
            beats: (0..4).map(|i| adversarial_beat(i, 0x9E37_79B9 + i as u64)).collect(),
        },
    };
    let frames = vec![
        Frame::NodeHello {
            node: "edge".into(),
            pid: 4242,
            path: vec!["edge".into(), "leaf-a".into(), "leaf-b".into()],
        },
        Frame::NodeChallenge { nonce: [0xA5; AUTH_LEN] },
        Frame::NodeAuth { mac: [0x5A; AUTH_LEN] },
        Frame::Subscribe(SubscribeReq {
            sub_id: 7,
            pattern: "edge/*".into(),
            interests: 0x07,
            min_interval_ns: 1_000_000,
            resume_from: 41,
        }),
        Frame::Event(event.clone()),
        Frame::RelayEvent { seq: 9, event },
        Frame::RelayAck { last_applied: 9 },
        Frame::Beats(BeatBatch {
            dropped_total: 1,
            beats: (0..8).map(|i| adversarial_beat(i, i as u64 * 0x517C_C1B7)).collect(),
        }),
    ];
    let mut stream = Vec::new();
    for frame in &frames {
        stream.extend_from_slice(&frame.encode());
    }
    stream
}

proptest! {
    /// Decoder survival under faultnet mangling: feed a valid federation
    /// stream through [`hb_net::faultnet::mangle`] (truncation plus random
    /// bit flips) in arbitrary chunk sizes. Corruption must surface as a
    /// decode error or a clean early end of stream — never a panic. This
    /// is the offline twin of the chaos test's in-flight corruption.
    #[test]
    fn mangled_streams_never_panic_the_decoder(
        seed in any::<u64>(),
        chunk in 1usize..512,
    ) {
        let mangled = hb_net::faultnet::mangle(seed, &federation_stream());

        // One-shot decode of the mangled head: Ok or Err, never a panic.
        let _ = Frame::decode(&mangled);

        // Incremental decode in adversarial chunk sizes: frames before the
        // first corruption may decode; the stream then errors or ends.
        let mut decoder = hb_net::FrameDecoder::new();
        let mut dead = false;
        for part in mangled.chunks(chunk) {
            if dead {
                break;
            }
            decoder.push(part);
            loop {
                match decoder.next_event() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
    }
}

/// Expands one random seed into a history sample with a finite-or-absent
/// rate (NaN is the wire's None sentinel, so `Some(NaN)` is unrepresentable).
fn sample_from(s: u64) -> hb_net::HistorySample {
    hb_net::HistorySample {
        seq: s,
        timestamp_ns: s.rotate_left(17),
        tag: s ^ 0xA5A5,
        interval_ns: s >> 3,
        rate_bps: if s.is_multiple_of(2) {
            None
        } else {
            Some((s % 100_000) as f64 / 7.0)
        },
    }
}

proptest! {
    /// Every query/control frame kind round-trips exactly: Bye, HistoryReq,
    /// History, HealthReq, Health, HelloAck, SubAck and Unsubscribe. Keeps
    /// the long tail of small frames honest — no kind ships without an
    /// encode→decode property (hb-lint's wire-kind check enforces this
    /// coverage).
    #[test]
    fn control_frames_roundtrip(
        name_seed in prop::collection::vec(97u8..123, 1..16),
        limit in any::<u32>(),
        total in any::<u64>(),
        known in any::<bool>(),
        max_version in any::<u8>(),
        sub_id in any::<u32>(),
        status_byte in 0u8..3,
        sample_seeds in prop::collection::vec(any::<u64>(), 0..5),
        health_sel in 0u8..4,
        window_beats in any::<u32>(),
        silent_ns in any::<u64>(),
    ) {
        use hb_net::wire::{HealthFrame, HistoryChunk, SubStatus};
        use hb_net::{HealthReason, HealthReport, HealthStatus};

        let app = String::from_utf8(name_seed).unwrap();
        let report = HealthReport {
            status: HealthStatus::from_u8(health_sel).unwrap(),
            reasons: if health_sel == 3 {
                vec![]
            } else {
                vec![HealthReason::Silent, HealthReason::SequenceAnomaly]
            },
            window_beats,
            window_rate_bps: if window_beats.is_multiple_of(2) {
                None
            } else {
                Some(f64::from(window_beats) / 3.0)
            },
            jitter_cv: if window_beats.is_multiple_of(3) {
                Some(f64::from(window_beats % 1000) / 999.0)
            } else {
                None
            },
            missing: window_beats / 7,
            duplicated: window_beats / 11,
            reordered: window_beats / 13,
            silent_ns,
        };
        let frames = vec![
            Frame::Bye,
            Frame::HistoryReq { app: app.clone(), limit },
            Frame::History(HistoryChunk {
                app: app.clone(),
                known,
                total,
                samples: sample_seeds.iter().map(|&s| sample_from(s)).collect(),
            }),
            Frame::HealthReq { app: app.clone() },
            Frame::Health(HealthFrame { app: app.clone(), known, report }),
            Frame::HelloAck { max_version },
            Frame::SubAck { sub_id, status: SubStatus::from_u8(status_byte).unwrap() },
            Frame::Unsubscribe { sub_id },
        ];
        for frame in frames {
            let bytes = frame.encode();
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(decoded, frame);
        }
    }
}
