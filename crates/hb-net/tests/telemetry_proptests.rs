//! Randomized property tests for the telemetry histogram: the bucket
//! layout is a total, monotone partition of `u64`, recording conserves
//! counts and sums, and snapshot merging is associative and commutative —
//! the property that makes per-shard histograms summable without locks.

use proptest::prelude::*;

use hb_net::telemetry::{HistoSnapshot, LatencyHisto, HISTO_BUCKETS};

/// Builds a snapshot holding exactly the given observations.
fn snapshot_of(values: &[u64]) -> HistoSnapshot {
    let histo = LatencyHisto::new();
    for &v in values {
        histo.record(v);
    }
    histo.snapshot()
}

#[test]
fn merged_sums_saturate_instead_of_wrapping() {
    let big = snapshot_of(&[u64::MAX - 10]);
    let mut merged = big.clone();
    merged.merge(&big);
    assert_eq!(merged.sum_ns, u64::MAX, "saturate, never wrap");
    assert_eq!(merged.count, 2);
}

#[test]
fn bucket_upper_bounds_are_strictly_monotone() {
    for index in 1..HISTO_BUCKETS {
        assert!(
            LatencyHisto::bucket_upper_ns(index) > LatencyHisto::bucket_upper_ns(index - 1),
            "bound must grow at index {index}"
        );
    }
    assert_eq!(LatencyHisto::bucket_upper_ns(HISTO_BUCKETS - 1), u64::MAX);
}

proptest! {
    /// Every u64 lands in exactly one bucket: within its bound, above the
    /// previous bucket's bound.
    #[test]
    fn every_value_lands_in_exactly_one_bucket(value in any::<u64>()) {
        let index = LatencyHisto::bucket_index(value);
        prop_assert!(index < HISTO_BUCKETS);
        prop_assert!(value <= LatencyHisto::bucket_upper_ns(index));
        if index > 0 {
            prop_assert!(value > LatencyHisto::bucket_upper_ns(index - 1));
        }
    }

    /// Recording conserves observations: the bucket total, the count, and
    /// the (wrapping) sum all match the inputs exactly.
    #[test]
    fn recording_conserves_count_and_sum(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        let sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snap.sum_ns, sum);
    }

    /// Merge order never matters: (a+b)+c == a+(b+c) and a+b == b+a.
    /// Values are bounded so no sum crosses `u64::MAX` — at the overflow
    /// boundary recording wraps while merging saturates (pinned in
    /// `merged_sums_saturate_instead_of_wrapping`), and ~584 years of
    /// recorded nanoseconds are out of scope for a latency histogram.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..(u64::MAX >> 8), 0..50),
        b in prop::collection::vec(0u64..(u64::MAX >> 8), 0..50),
        c in prop::collection::vec(0u64..(u64::MAX >> 8), 0..50),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);

        // Merging is the same as recording everything into one histogram.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, snapshot_of(&all));
    }
}
