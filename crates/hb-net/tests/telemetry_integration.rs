//! Live-load telemetry: 64 producers stream beat batches at a real
//! collector while an observer scrapes `/metrics` over the query port.
//! Pins the tentpole end-to-end properties: the ingest histogram's
//! `_count` equals the number of batches actually sent, per-reactor-thread
//! gauges appear, and `HEATMAP` / `TRACE` answer on the same socket.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
use hb_net::{BeatBatch, Collector, Frame, Hello, WireBeat};

const PRODUCERS: u32 = 64;
const BATCHES_PER_PRODUCER: u64 = 8;
const BEATS_PER_BATCH: u64 = 16;

fn beats_frame(batch_index: u64) -> Frame {
    let base = batch_index * BEATS_PER_BATCH;
    Frame::Beats(BeatBatch {
        dropped_total: 0,
        beats: (0..BEATS_PER_BATCH)
            .map(|i| WireBeat {
                record: HeartbeatRecord::new(
                    base + i,
                    (base + i) * 10_000_000, // 10 ms cadence => 100 beats/s
                    Tag::NONE,
                    BeatThreadId(0),
                ),
                scope: BeatScope::Global,
            })
            .collect(),
    })
}

/// Sends one query line and reads the reply through its `END` terminator.
fn query(reader: &mut BufReader<TcpStream>, line: &str) -> String {
    reader.get_mut().write_all(line.as_bytes()).unwrap();
    reader.get_mut().write_all(b"\n").unwrap();
    let mut reply = String::new();
    loop {
        let mut row = String::new();
        assert!(
            reader.read_line(&mut row).unwrap() > 0,
            "query port closed mid-reply to {line}; got so far:\n{reply}"
        );
        let done = row.trim_end() == "END";
        reply.push_str(&row);
        if done {
            return reply;
        }
    }
}

#[test]
fn metrics_heatmap_and_trace_under_64_producer_load() {
    let mut collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").unwrap();
    let ingest = collector.ingest_addr();
    let state = collector.state();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(ingest).unwrap();
                stream
                    .write_all(
                        &Frame::Hello(Hello {
                            app: format!("prod-{i:02}"),
                            pid: i,
                            default_window: 20,
                        })
                        .encode(),
                    )
                    .unwrap();
                for batch in 0..BATCHES_PER_PRODUCER {
                    stream.write_all(&beats_frame(batch).encode()).unwrap();
                }
                // A clean goodbye, then drain until the collector closes:
                // closing with the HelloAck unread would turn the close
                // into an RST that can discard frames still in flight.
                stream.write_all(&Frame::Bye.encode()).unwrap();
                let mut sink = [0u8; 256];
                while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            })
        })
        .collect();
    for producer in producers {
        producer.join().unwrap();
    }

    // Writes have all been accepted by the kernel; wait for the reactor to
    // drain them. Every producer contributed hello + batches + bye frames.
    let expected_batches = u64::from(PRODUCERS) * BATCHES_PER_PRODUCER;
    let expected_frames = u64::from(PRODUCERS) * (BATCHES_PER_PRODUCER + 2);
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.frames_total() < expected_frames {
        assert!(
            Instant::now() < deadline,
            "collector ingested {} of {expected_frames} frames",
            state.frames_total()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut reader = BufReader::new(TcpStream::connect(collector.query_addr()).unwrap());

    // The scrape itself: batch-exact histogram accounting over the wire.
    let metrics = query(&mut reader, "METRICS");
    let ingest_count: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hb_collector_ingest_latency_seconds_count "))
        .expect("ingest histogram _count series")
        .parse()
        .unwrap();
    assert_eq!(
        ingest_count, expected_batches,
        "one ingest histogram sample per absorbed batch"
    );
    let decode_count: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hb_collector_decode_latency_seconds_count "))
        .expect("decode histogram _count series")
        .parse()
        .unwrap();
    assert_eq!(
        decode_count, expected_frames,
        "one decode histogram sample per yielded frame"
    );
    let histogram_series = metrics
        .lines()
        .filter(|l| l.starts_with("# TYPE ") && l.ends_with(" histogram"))
        .count();
    assert!(
        histogram_series >= 4,
        "expected at least 4 histogram series, found {histogram_series}"
    );
    assert!(metrics.contains("hb_reactor_thread_busy_seconds_total{thread=\"0\"}"));
    assert!(metrics.contains("hb_reactor_thread_utilization{thread=\"0\"}"));
    assert!(metrics.contains("hb_collector_protocol_errors_total 0"));

    // HEATMAP: one row per application, bucket count as requested.
    let heatmap = query(&mut reader, "HEATMAP 4 500");
    let header = heatmap.lines().next().unwrap();
    assert_eq!(
        header,
        format!("HEATMAP apps={PRODUCERS} buckets=4 width_ms=500")
    );
    let rows: Vec<&str> = heatmap
        .lines()
        .filter(|l| l.starts_with("R app=prod-"))
        .collect();
    assert_eq!(rows.len(), PRODUCERS as usize);
    for row in rows {
        let rates = row.split("rates=").nth(1).unwrap();
        assert_eq!(rates.split(',').count(), 4, "bad row: {row}");
    }

    // TRACE: the journal replays this load's lifecycle over the same port.
    let trace = query(&mut reader, "TRACE 2000");
    assert!(trace.starts_with("TRACE count="), "got: {trace}");
    assert!(
        trace.contains("hello app=prod-"),
        "journal must hold the producers' hello entries"
    );

    collector.shutdown();
}
