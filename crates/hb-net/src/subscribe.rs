//! Collector-side push subscriptions: the registry that fans ingested
//! telemetry out to subscribed observers.
//!
//! A subscriber (one observer connection, or an in-process
//! [`LocalSubscription`]) owns a bounded [`SubscriberQueue`] of encoded
//! [`Frame::Event`]s. Subscriptions ([`SubEntry`]) pair that queue with an
//! application glob, an interest mask and a minimum update interval. The
//! ingest path asks the registry for the entries matching an application
//! (one atomic load answers "nobody is subscribed", keeping the
//! zero-subscriber hot path free), builds the due events under the shard
//! lock, and enqueues them after it; the reactor's pump pass then drains
//! each connection's queue into its outbound buffer, from which the normal
//! `EPOLLOUT` path ships them.
//!
//! Backpressure is **drop-oldest with accounting**: a queue at capacity
//! sheds its oldest event and bumps the subscriber's and the collector's
//! `events_dropped` counters (exported via `STATS` and Prometheus) — a slow
//! observer loses history, never stalls the collector.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::health::HealthStatus;
use crate::reactor::OutBuf;
use crate::telemetry::{self, LatencyHisto, Level};
use crate::wire::{self, EventFrame, EventPayload, Frame, SubscribeReq, SubStatus};

/// Most subscriptions one connection may hold; beyond this a subscribe is
/// answered [`SubStatus::TooManySubscriptions`].
pub const MAX_SUBS_PER_CONNECTION: usize = 64;

/// One queued event: `(sub_id, encoded frame, delivery cursor, enqueue
/// instant)` — the instant feeds the collector-side delivery-lag histogram
/// at drain. Frames are shared `Arc<[u8]>`s: a fan-out encodes each event
/// once and every matching queue references the same bytes; the cursor
/// rides alongside (not inside) the shared bytes because each cursored
/// subscription numbers its own stream. `0` = un-numbered (plain observer
/// subscriptions).
type QueuedEvent = (u32, Arc<[u8]>, u64, Instant);

/// One subscription's resume buffer: `(cursor, encoded frame)` pairs
/// retained after draining, oldest first.
type ReplayRing = VecDeque<(u64, Arc<[u8]>)>;

/// A bounded queue of encoded events owned by one subscriber (an observer
/// connection or a [`LocalSubscription`]).
#[derive(Debug)]
pub struct SubscriberQueue {
    inner: Mutex<VecDeque<QueuedEvent>>,
    capacity: usize,
    dropped: AtomicU64,
    /// Subscriptions currently registered against this queue (drives the
    /// observer connection's idle-eviction exemption).
    active: AtomicUsize,
    /// Enqueue-to-drain latency sink, when the owning collector records
    /// delivery lag.
    lag: Option<Arc<LatencyHisto>>,
    /// Retained cursored events, per sub_id, after they drained — the
    /// resume buffer a reconnecting federation parent replays from.
    /// Bounded per subscription at the queue capacity, drop-oldest with
    /// exact accounting (`replay_dropped`).
    replay: Mutex<HashMap<u32, ReplayRing>>,
    /// Cursored events evicted from a replay ring before anyone resumed
    /// over them — each one is a potential gap a reconnecting parent can
    /// no longer be spared.
    replay_dropped: AtomicU64,
}

impl SubscriberQueue {
    /// Creates a queue bounded at `capacity` events (clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        SubscriberQueue::with_telemetry(capacity, None)
    }

    /// Creates a bounded queue that records enqueue-to-drain delivery lag
    /// into `lag` as events leave toward the subscriber's socket buffer.
    pub fn with_telemetry(capacity: usize, lag: Option<Arc<LatencyHisto>>) -> Self {
        SubscriberQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            lag,
            replay: Mutex::new(HashMap::new()),
            replay_dropped: AtomicU64::new(0),
        }
    }

    /// Events shed from this queue because the subscriber was slow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// Cursored events evicted from a replay ring before a resume could
    /// use them (bounded-buffer accounting, like the rollup tap).
    pub fn replay_dropped(&self) -> u64 {
        self.replay_dropped.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// The retained cursored events of `sub_id` with cursor `>= from`, in
    /// cursor order — what a resuming subscription can still be re-sent.
    pub fn replay_events(&self, sub_id: u32, from: u64) -> Vec<(u64, Arc<[u8]>)> {
        let replay = self.replay.lock().unwrap_or_else(|e| e.into_inner());
        replay
            .get(&sub_id)
            .map(|ring| {
                ring.iter()
                    .filter(|(cursor, _)| *cursor >= from)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Subscriptions currently registered against this queue.
    pub fn active_subs(&self) -> usize {
        self.active.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Moves queued event frames into `out` as shared segments — the
    /// outbound buffer references the same encoded bytes every other
    /// subscriber received, no copy — at most `max_bytes` worth (always at
    /// least one event if any is queued, so huge events still drain).
    /// Returns the number of events moved.
    pub fn drain_into(&self, out: &mut OutBuf, max_bytes: usize) -> usize {
        self.drain_events(max_bytes, |bytes, _| out.push_shared(bytes))
    }

    /// Like [`drain_into`](Self::drain_into) but copies into a plain byte
    /// vector — the in-process [`LocalSubscription`] path.
    pub fn drain_to_vec(&self, out: &mut Vec<u8>, max_bytes: usize) -> usize {
        self.drain_events(max_bytes, |bytes, _| out.extend_from_slice(&bytes))
    }

    /// The general drain: hands each departing event (shared bytes plus
    /// its delivery cursor, `0` when un-numbered) to `push`, at most
    /// `max_bytes` worth per pass (always at least one event if any is
    /// queued, so huge events still drain). Cursored events are retained
    /// in the per-subscription replay ring on the way out. Returns the
    /// number of events moved.
    pub fn drain_events(
        &self,
        max_bytes: usize,
        mut push: impl FnMut(Arc<[u8]>, u64),
    ) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut moved = 0;
        let mut budget = max_bytes;
        // One clock read covers every event drained this pass.
        let now = self
            .lag
            .as_ref()
            .filter(|_| !inner.is_empty())
            .map(|_| Instant::now());
        while let Some((_, bytes, _, _)) = inner.front() {
            if moved > 0 && bytes.len() > budget {
                break;
            }
            budget = budget.saturating_sub(bytes.len());
            let (sub_id, bytes, cursor, queued_at) = inner.pop_front().expect("front checked");
            if let (Some(lag), Some(now)) = (&self.lag, now) {
                lag.record_duration(now.saturating_duration_since(queued_at));
            }
            if cursor != 0 {
                self.retain_for_replay(sub_id, cursor, Arc::clone(&bytes));
            }
            push(bytes, cursor);
            moved += 1;
        }
        moved
    }

    /// Keeps one drained cursored event in `sub_id`'s replay ring, bounded
    /// at the queue capacity with drop-oldest accounting.
    fn retain_for_replay(&self, sub_id: u32, cursor: u64, bytes: Arc<[u8]>) {
        let mut replay = self.replay.lock().unwrap_or_else(|e| e.into_inner());
        let ring = replay.entry(sub_id).or_default();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.replay_dropped.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
        }
        ring.push_back((cursor, bytes));
    }

    /// Removes every queued event belonging to `sub_id` — and its replay
    /// ring (an unsubscribed stream must deliver nothing after its ack,
    /// and a later subscription reusing the id must not resurrect the old
    /// stream's retained events through a resume).
    fn purge(&self, sub_id: u32) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.retain(|(id, _, _, _)| *id != sub_id);
        drop(inner);
        let mut replay = self.replay.lock().unwrap_or_else(|e| e.into_inner());
        replay.remove(&sub_id);
    }
}

/// Per-application delivery state of one subscription.
#[derive(Debug)]
struct AppWatch {
    /// When a snapshot event was last emitted (rate limiting).
    last_snapshot: Option<Instant>,
    /// When health was last assessed (rate limiting).
    last_assessed: Option<Instant>,
    /// The last health classification delivered, so only transitions emit.
    last_health: Option<HealthStatus>,
}

impl AppWatch {
    fn new() -> Self {
        AppWatch {
            last_snapshot: None,
            last_assessed: None,
            last_health: None,
        }
    }
}

/// One registered subscription: a filter over the application namespace
/// bound to a subscriber queue.
#[derive(Debug)]
pub struct SubEntry {
    sub_id: u32,
    pattern: String,
    interests: u8,
    min_interval: Duration,
    queue: Arc<SubscriberQueue>,
    /// Cleared on unsubscribe, under the queue lock, so no event can be
    /// enqueued after the unsubscribe ack.
    active: AtomicBool,
    watches: Mutex<HashMap<String, AppWatch>>,
    /// When this entry last swept for stalls (rate limiting the
    /// no-ingest-traffic health path).
    swept: Mutex<Option<Instant>>,
    /// True for federation-propagated subscriptions: every enqueued event
    /// gets the next monotone delivery cursor (assigned under the queue
    /// lock, so cursors follow queue order exactly) and drained events are
    /// retained for resume.
    cursored: bool,
    /// The last delivery cursor assigned (`0` = none yet). A resumed
    /// registration starts this at `resume_from - 1` so the continued
    /// stream picks up exactly where the parent left off.
    next_cursor: AtomicU64,
}

impl SubEntry {
    /// The subscription id chosen by the subscriber.
    pub fn sub_id(&self) -> u32 {
        self.sub_id
    }

    /// The application glob this subscription matches.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True if this subscription wants `interest` (one of the
    /// [`heartbeats::observe::Interest`] bits).
    pub fn wants(&self, interest: u8) -> bool {
        self.interests & interest != 0
    }

    /// True if `app` matches this subscription's pattern.
    pub fn matches(&self, app: &str) -> bool {
        wire::glob_match(&self.pattern, app)
    }

    /// The raw interest bitmask this subscription was registered with
    /// (federation re-issues it verbatim when propagating down the tree).
    pub fn interests(&self) -> u8 {
        self.interests
    }

    /// The subscription's minimum update interval.
    pub fn min_interval(&self) -> Duration {
        self.min_interval
    }

    /// True while the subscription is registered.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// True if this subscription numbers its event stream (federation
    /// resume support).
    pub fn is_cursored(&self) -> bool {
        self.cursored
    }

    /// The last delivery cursor assigned to this subscription's stream
    /// (`0` = nothing delivered yet).
    pub fn last_cursor(&self) -> u64 {
        self.next_cursor.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// True if a snapshot event is due for `app` (and records the emission
    /// time when it is).
    pub(crate) fn snapshot_due(&self, app: &str, now: Instant) -> bool {
        let mut watches = self.watches.lock().unwrap_or_else(|e| e.into_inner());
        let watch = watches
            .entry(app.to_string())
            .or_insert_with(AppWatch::new);
        let due = watch
            .last_snapshot
            .map(|at| now.duration_since(at) >= self.min_interval)
            .unwrap_or(true);
        if due {
            watch.last_snapshot = Some(now);
        }
        due
    }

    /// True if a health (re-)assessment is due for `app` (and records the
    /// assessment time when it is).
    pub(crate) fn assess_due(&self, app: &str, now: Instant) -> bool {
        let mut watches = self.watches.lock().unwrap_or_else(|e| e.into_inner());
        let watch = watches
            .entry(app.to_string())
            .or_insert_with(AppWatch::new);
        let due = watch
            .last_assessed
            .map(|at| now.duration_since(at) >= self.min_interval)
            .unwrap_or(true);
        if due {
            watch.last_assessed = Some(now);
        }
        due
    }

    /// Records `status` as the latest delivered classification for `app`,
    /// returning the previous one if this is a transition (`None` if the
    /// classification is unchanged — nothing to emit). The very first
    /// assessment reports a transition from [`HealthStatus::NoSignal`], so
    /// a fresh subscriber immediately learns the current state.
    pub(crate) fn health_transition(&self, app: &str, status: HealthStatus) -> Option<HealthStatus> {
        let mut watches = self.watches.lock().unwrap_or_else(|e| e.into_inner());
        let watch = watches
            .entry(app.to_string())
            .or_insert_with(AppWatch::new);
        match watch.last_health {
            None => {
                watch.last_health = Some(status);
                // A first report of NoSignal is not news.
                (status != HealthStatus::NoSignal).then_some(HealthStatus::NoSignal)
            }
            Some(previous) if previous != status => {
                watch.last_health = Some(status);
                Some(previous)
            }
            Some(_) => None,
        }
    }

    /// True if a stall sweep is due for this entry as a whole (and records
    /// the sweep time when it is).
    pub(crate) fn sweep_due(&self, now: Instant) -> bool {
        let mut swept = self.swept.lock().unwrap_or_else(|e| e.into_inner());
        let due = swept
            .map(|at| now.duration_since(at) >= self.min_interval.max(Duration::from_millis(10)))
            .unwrap_or(true);
        if due {
            *swept = Some(now);
        }
        due
    }
}

/// The collector's subscription registry: every live [`SubEntry`] across
/// every subscriber, plus the collector-wide event counters.
#[derive(Debug, Default)]
pub struct SubscriptionRegistry {
    entries: Mutex<Vec<Arc<SubEntry>>>,
    /// Mirror of `entries.len()`, so the ingest hot path answers "nobody is
    /// subscribed" with one atomic load and no lock.
    count: AtomicUsize,
    events_enqueued: AtomicU64,
    events_dropped: AtomicU64,
}

impl SubscriptionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SubscriptionRegistry::default()
    }

    /// Registers a subscription for `queue`. Validates the pattern and
    /// interest mask and enforces [`MAX_SUBS_PER_CONNECTION`]; a `sub_id`
    /// already registered for this queue is replaced (the wire protocol
    /// scopes ids to the connection).
    pub fn register(
        &self,
        queue: &Arc<SubscriberQueue>,
        req: &SubscribeReq,
    ) -> Result<Arc<SubEntry>, SubStatus> {
        self.register_with(queue, req, false)
    }

    /// [`register`](Self::register) for a **cursored** subscription (the
    /// federation-propagated kind): enqueued events are numbered with
    /// monotone delivery cursors, drained events are retained for resume,
    /// and `req.resume_from` (when non-zero) continues an interrupted
    /// stream's numbering instead of restarting at 1.
    pub fn register_cursored(
        &self,
        queue: &Arc<SubscriberQueue>,
        req: &SubscribeReq,
    ) -> Result<Arc<SubEntry>, SubStatus> {
        self.register_with(queue, req, true)
    }

    fn register_with(
        &self,
        queue: &Arc<SubscriberQueue>,
        req: &SubscribeReq,
        cursored: bool,
    ) -> Result<Arc<SubEntry>, SubStatus> {
        let valid_interests = heartbeats::observe::Interest::from_bits(req.interests)
            .is_some_and(|mask| !mask.is_empty());
        if !wire::valid_subscribe_pattern(&req.pattern) || !valid_interests {
            return Err(SubStatus::InvalidFilter);
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let own = entries
            .iter()
            .filter(|e| Arc::ptr_eq(&e.queue, queue) && e.is_active())
            .count();
        let replacing = entries
            .iter()
            .any(|e| Arc::ptr_eq(&e.queue, queue) && e.sub_id == req.sub_id && e.is_active());
        if own >= MAX_SUBS_PER_CONNECTION && !replacing {
            return Err(SubStatus::TooManySubscriptions);
        }
        if replacing {
            self.remove_locked(&mut entries, queue, req.sub_id);
        }
        let entry = Arc::new(SubEntry {
            sub_id: req.sub_id,
            pattern: req.pattern.clone(),
            interests: req.interests,
            min_interval: Duration::from_nanos(req.min_interval_ns),
            queue: Arc::clone(queue),
            active: AtomicBool::new(true),
            watches: Mutex::new(HashMap::new()),
            swept: Mutex::new(None),
            cursored,
            // A resumed stream continues its numbering: the next assigned
            // cursor is exactly `resume_from`, so the parent sees no gap
            // where the reconnect happened.
            next_cursor: AtomicU64::new(if cursored {
                req.resume_from.saturating_sub(1)
            } else {
                0
            }),
        });
        entries.push(Arc::clone(&entry));
        self.count.store(entries.len(), Ordering::Release); // ordering: publishes the rebuilt entry table size; pairs with the Acquire count loads on the fan-out path
        queue.active.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
        Ok(entry)
    }

    /// Cancels one subscription of `queue`, purging its queued events so
    /// nothing for it is delivered after the unsubscribe ack. Returns
    /// `true` if the subscription existed.
    pub fn unregister(&self, queue: &Arc<SubscriberQueue>, sub_id: u32) -> bool {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let removed = self.remove_locked(&mut entries, queue, sub_id);
        self.count.store(entries.len(), Ordering::Release); // ordering: publishes the rebuilt entry table size; pairs with the Acquire count loads on the fan-out path
        removed
    }

    fn remove_locked(
        &self,
        entries: &mut Vec<Arc<SubEntry>>,
        queue: &Arc<SubscriberQueue>,
        sub_id: u32,
    ) -> bool {
        let mut removed = false;
        entries.retain(|entry| {
            let hit = Arc::ptr_eq(&entry.queue, queue) && entry.sub_id == sub_id;
            if hit {
                // Deactivate under the queue lock so a concurrent deliver()
                // (which re-checks under the same lock) cannot enqueue after
                // the purge.
                let inner = queue.inner.lock().unwrap_or_else(|e| e.into_inner());
                entry.active.store(false, Ordering::Release); // ordering: marks the entry dead before the table shrinks; pairs with the fan-out's Acquire
                drop(inner);
                queue.purge(sub_id);
                queue.active.fetch_sub(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
                removed = true;
            }
            !hit
        });
        removed
    }

    /// Drops every subscription of `queue` (its connection closed).
    pub fn drop_queue(&self, queue: &Arc<SubscriberQueue>) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.retain(|entry| {
            let hit = Arc::ptr_eq(&entry.queue, queue);
            if hit {
                entry.active.store(false, Ordering::Release); // ordering: marks the entry dead before the table shrinks; pairs with the fan-out's Acquire
                queue.active.fetch_sub(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
            }
            !hit
        });
        self.count.store(entries.len(), Ordering::Release); // ordering: publishes the rebuilt entry table size; pairs with the Acquire count loads on the fan-out path
    }

    /// The subscriptions whose patterns match `app`. The zero-subscriber
    /// fast path — the common case on a collector nobody subscribed to —
    /// is one atomic load and an unallocated empty `Vec`.
    pub fn matching(&self, app: &str) -> Vec<Arc<SubEntry>> {
        if self.count.load(Ordering::Acquire) == 0 { // ordering: pairs with the Release store of the rebuilt table; zero short-circuits the fan-out
            return Vec::new();
        }
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .filter(|entry| entry.is_active() && entry.matches(app))
            .cloned()
            .collect()
    }

    /// The active subscriptions registered against `queue`.
    pub fn entries_for(&self, queue: &Arc<SubscriberQueue>) -> Vec<Arc<SubEntry>> {
        if self.count.load(Ordering::Acquire) == 0 { // ordering: pairs with the Release store of the rebuilt table; zero short-circuits the fan-out
            return Vec::new();
        }
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .filter(|entry| entry.is_active() && Arc::ptr_eq(&entry.queue, queue))
            .cloned()
            .collect()
    }

    /// Subscriptions currently registered.
    pub fn active(&self) -> usize {
        self.count.load(Ordering::Acquire) // ordering: pairs with the Release store of the rebuilt table
    }

    /// Every currently active subscription, regardless of queue. Federation
    /// replays these down a freshly (re)connected child link.
    pub fn all_active(&self) -> Vec<Arc<SubEntry>> {
        if self.count.load(Ordering::Acquire) == 0 { // ordering: pairs with the Release store of the rebuilt table; zero short-circuits the fan-out
            return Vec::new();
        }
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .filter(|entry| entry.is_active())
            .cloned()
            .collect()
    }

    /// Events enqueued toward subscribers since start.
    pub fn events_enqueued(&self) -> u64 {
        self.events_enqueued.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// Events shed because a subscriber queue was full.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// One consistent `(enqueued, dropped)` reading: `dropped` is loaded
    /// first with acquire, pairing with the releasing drop increment in
    /// [`deliver`](Self::deliver), so the pair can never show more drops
    /// than enqueues — even when the scrape races a delivery.
    pub fn event_counters(&self) -> (u64, u64) {
        let dropped = self.events_dropped.load(Ordering::Acquire); // ordering: pairs with the Release drop increment so dropped <= enqueued holds in snapshots
        let enqueued = self.events_enqueued.load(Ordering::Relaxed).max(dropped); // ordering: relaxed is fine; max(dropped) repairs any straggling read
        (enqueued, dropped)
    }

    /// Encodes `payload` as one or more [`Frame::Event`]s for `entry` and
    /// enqueues them (beat payloads beyond [`wire::MAX_EVENT_BEATS`] are
    /// split). Skips silently if the subscription lapsed concurrently.
    pub fn deliver(&self, entry: &SubEntry, app: &str, payload: EventPayload) {
        if !entry.is_active() {
            return;
        }
        match payload {
            EventPayload::Beats {
                dropped_total,
                beats,
            } if beats.len() > wire::MAX_EVENT_BEATS => {
                for chunk in beats.chunks(wire::MAX_EVENT_BEATS) {
                    self.deliver_one(
                        entry,
                        app,
                        EventPayload::Beats {
                            dropped_total,
                            beats: chunk.to_vec(),
                        },
                    );
                }
            }
            payload => self.deliver_one(entry, app, payload),
        }
    }

    /// Fans one batch of beats out to every entry in `watchers`, encoding
    /// the `Event` frame **once per distinct `sub_id`** into a shared
    /// `Arc<[u8]>` that every matching subscriber queue then references —
    /// no per-subscriber re-serialization, no per-subscriber beat clone.
    /// Batches beyond [`wire::MAX_EVENT_BEATS`] are chunked like
    /// [`deliver`](Self::deliver). Returns how many frames were actually
    /// encoded (tests pin this to the distinct-id count).
    pub fn deliver_beats(
        &self,
        watchers: &[Arc<SubEntry>],
        app: &str,
        dropped_total: u64,
        beats: &[wire::WireBeat],
    ) -> usize {
        let mut encodes = 0;
        let sent_at_ns = telemetry::wall_clock_ns();
        let chunks = beats.chunks(wire::MAX_EVENT_BEATS).chain(
            // An empty batch still emits one (empty) event per watcher, as
            // the per-entry `deliver` path always did.
            std::iter::once(beats).filter(|_| beats.is_empty()),
        );
        for chunk in chunks {
            // Tiny linear cache: a fan-out sees a handful of distinct ids,
            // and commonly just one (every reader using the same sub_id).
            let mut encoded: Vec<(u32, Arc<[u8]>)> = Vec::new();
            for entry in watchers {
                if !entry.is_active() {
                    continue;
                }
                let bytes = match encoded.iter().find(|(id, _)| *id == entry.sub_id) {
                    Some((_, bytes)) => Arc::clone(bytes),
                    None => {
                        let frame = Frame::Event(EventFrame {
                            sub_id: entry.sub_id,
                            sent_at_ns,
                            // The wire cursor is a placeholder here: real
                            // cursors are assigned per-subscriber under the
                            // queue lock (enqueue_encoded) and spliced into
                            // the bytes at uplink-send time, because these
                            // encode-once bytes are shared across every
                            // same-sub_id subscriber.
                            cursor: 0,
                            app: app.to_string(),
                            payload: EventPayload::Beats {
                                dropped_total,
                                beats: chunk.to_vec(),
                            },
                        });
                        let bytes: Arc<[u8]> = Arc::from(frame.encode());
                        encodes += 1;
                        encoded.push((entry.sub_id, Arc::clone(&bytes)));
                        bytes
                    }
                };
                self.enqueue_encoded(entry, app, bytes);
            }
        }
        encodes
    }

    fn deliver_one(&self, entry: &SubEntry, app: &str, payload: EventPayload) {
        let frame = Frame::Event(EventFrame {
            sub_id: entry.sub_id,
            sent_at_ns: telemetry::wall_clock_ns(),
            cursor: 0,
            app: app.to_string(),
            payload,
        });
        self.enqueue_encoded(entry, app, Arc::from(frame.encode()));
    }

    fn enqueue_encoded(&self, entry: &SubEntry, app: &str, bytes: Arc<[u8]>) {
        // Re-check activity under the queue lock (see remove_locked): an
        // unsubscribed stream must stay silent after its purge.
        let mut inner = entry.queue.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !entry.is_active() {
            return;
        }
        // Cursors are assigned here, under the queue mutex, so they are
        // monotone in queue order regardless of which delivery path (or
        // shard) produced the event. Non-cursored subscriptions ride with
        // cursor 0 — the wire encoding already carries that placeholder.
        let cursor = if entry.cursored {
            entry.next_cursor.fetch_add(1, Ordering::Relaxed) + 1 // ordering: cursor allocation; the atomic increment alone gives per-entry uniqueness
        } else {
            0
        };
        let mut dropped = false;
        if inner.len() >= entry.queue.capacity {
            inner.pop_front();
            entry.queue.dropped.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
            dropped = true;
        }
        inner.push_back((entry.sub_id, bytes, cursor, Instant::now()));
        // Counter order pins the exported invariant dropped <= enqueued:
        // the enqueue increment precedes the drop's releasing increment, and
        // snapshot readers load `dropped` first with acquire — whatever drop
        // count a scrape observes, the matching enqueues are visible too.
        // (The queue lock serializes writers, so the pair never interleaves.)
        self.events_enqueued.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
        if dropped {
            self.events_dropped.fetch_add(1, Ordering::Release); // ordering: pairs with the Acquire load in stats so dropped never exceeds enqueued there
        }
        drop(inner);
        if dropped {
            crate::log!(
                Level::Trace,
                "subscriber queue full: dropped oldest event sub={} app={app}",
                entry.sub_id
            );
        }
    }
}

/// An in-process subscription over an embedded
/// [`CollectorState`](crate::CollectorState) — the same fan-out machinery
/// the network observers use, without a socket. Used by embedders, tests
/// and the fan-out benchmarks.
#[derive(Debug)]
pub struct LocalSubscription {
    queue: Arc<SubscriberQueue>,
    registry: Arc<SubscriptionRegistry>,
    sub_id: u32,
}

impl LocalSubscription {
    pub(crate) fn new(
        queue: Arc<SubscriberQueue>,
        registry: Arc<SubscriptionRegistry>,
        sub_id: u32,
    ) -> Self {
        LocalSubscription {
            queue,
            registry,
            sub_id,
        }
    }

    /// Drains every queued event, decoded.
    pub fn drain(&self) -> Vec<EventFrame> {
        let mut bytes = Vec::new();
        while self.queue.drain_to_vec(&mut bytes, usize::MAX) > 0 {}
        let mut events = Vec::new();
        let mut at = 0;
        while at < bytes.len() {
            match Frame::decode(&bytes[at..]) {
                Ok((Frame::Event(event), used)) => {
                    events.push(event);
                    at += used;
                }
                Ok((_, used)) => at += used,
                Err(_) => break,
            }
        }
        events
    }

    /// Events shed from this subscriber's queue because it was slow.
    pub fn dropped(&self) -> u64 {
        self.queue.dropped()
    }

    /// The underlying subscriber queue (for
    /// [`CollectorState::sweep_local`](crate::CollectorState::sweep_local)).
    pub(crate) fn queue(&self) -> &Arc<SubscriberQueue> {
        &self.queue
    }

    /// Events currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The subscription id this handle was registered under.
    pub(crate) fn sub_id(&self) -> u32 {
        self.sub_id
    }
}

impl Drop for LocalSubscription {
    fn drop(&mut self) {
        self.registry.unregister(&self.queue, self.sub_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(sub_id: u32, pattern: &str, interests: u8) -> SubscribeReq {
        SubscribeReq {
            sub_id,
            pattern: pattern.into(),
            interests,
            min_interval_ns: 0,
            resume_from: 0,
        }
    }

    fn snapshot_payload(total: u64) -> EventPayload {
        EventPayload::Snapshot {
            total_beats: total,
            producer_dropped: 0,
            rate_bps: None,
            target: None,
            alive: true,
        }
    }

    #[test]
    fn register_match_deliver_drain() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(16));
        assert!(registry.matching("cam7").is_empty(), "fast path before subs");

        let entry = registry.register(&queue, &req(1, "cam*", 0b001)).unwrap();
        assert_eq!(registry.active(), 1);
        assert_eq!(queue.active_subs(), 1);
        assert!(entry.matches("cam7"));
        assert!(!entry.matches("dam7"));
        assert_eq!(registry.matching("cam7").len(), 1);
        assert!(registry.matching("other").is_empty());

        registry.deliver(&entry, "cam7", snapshot_payload(5));
        assert_eq!(registry.events_enqueued(), 1);
        let mut out = Vec::new();
        assert_eq!(queue.drain_to_vec(&mut out, usize::MAX), 1);
        let (frame, _) = Frame::decode(&out).unwrap();
        match frame {
            Frame::Event(event) => {
                assert_eq!(event.sub_id, 1);
                assert_eq!(event.app, "cam7");
                assert_eq!(event.payload, snapshot_payload(5));
            }
            other => panic!("expected event, got {other:?}"),
        }
    }

    #[test]
    fn invalid_filters_are_rejected() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(4));
        assert!(matches!(
            registry.register(&queue, &req(1, "bad pattern", 0b001)),
            Err(SubStatus::InvalidFilter)
        ));
        assert!(matches!(
            registry.register(&queue, &req(1, "ok", 0)),
            Err(SubStatus::InvalidFilter)
        ));
        assert!(matches!(
            registry.register(&queue, &req(1, "ok", 0b1000)),
            Err(SubStatus::InvalidFilter)
        ));
        assert_eq!(registry.active(), 0);
    }

    #[test]
    fn per_connection_subscription_bound() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(4));
        for i in 0..MAX_SUBS_PER_CONNECTION as u32 {
            registry.register(&queue, &req(i, "*", 0b001)).unwrap();
        }
        assert!(matches!(
            registry.register(&queue, &req(9999, "*", 0b001)),
            Err(SubStatus::TooManySubscriptions)
        ));
        // Replacing an existing id is always allowed.
        assert!(registry.register(&queue, &req(0, "narrow*", 0b001)).is_ok());
        assert_eq!(registry.active(), MAX_SUBS_PER_CONNECTION);
        // A second connection is unaffected by the first's bound.
        let other = Arc::new(SubscriberQueue::new(4));
        assert!(registry.register(&other, &req(0, "*", 0b001)).is_ok());
    }

    #[test]
    fn unregister_purges_pending_events() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(16));
        let keep = registry.register(&queue, &req(1, "*", 0b001)).unwrap();
        let gone = registry.register(&queue, &req(2, "*", 0b001)).unwrap();
        registry.deliver(&keep, "a", snapshot_payload(1));
        registry.deliver(&gone, "a", snapshot_payload(2));
        registry.deliver(&keep, "a", snapshot_payload(3));
        assert!(registry.unregister(&queue, 2));
        assert!(!registry.unregister(&queue, 2), "already gone");
        // Deliveries against the lapsed entry are silently skipped.
        registry.deliver(&gone, "a", snapshot_payload(4));
        let events = {
            let mut out = Vec::new();
            queue.drain_to_vec(&mut out, usize::MAX);
            let mut events = Vec::new();
            let mut at = 0;
            while at < out.len() {
                let (frame, used) = Frame::decode(&out[at..]).unwrap();
                if let Frame::Event(event) = frame {
                    events.push(event);
                }
                at += used;
            }
            events
        };
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.sub_id == 1), "sub 2 fully purged");
    }

    #[test]
    fn slow_subscriber_drops_oldest_with_accounting() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(4));
        let entry = registry.register(&queue, &req(1, "*", 0b001)).unwrap();
        for i in 0..10 {
            registry.deliver(&entry, "a", snapshot_payload(i));
        }
        assert_eq!(queue.len(), 4, "bounded at capacity");
        assert_eq!(queue.dropped(), 6, "oldest six shed");
        assert_eq!(registry.events_dropped(), 6);
        assert_eq!(registry.events_enqueued(), 10);
        // The retained events are the newest four.
        let mut out = Vec::new();
        queue.drain_to_vec(&mut out, usize::MAX);
        let (first, _) = Frame::decode(&out).unwrap();
        match first {
            Frame::Event(EventFrame {
                payload: EventPayload::Snapshot { total_beats, .. },
                ..
            }) => assert_eq!(total_beats, 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn event_counters_never_show_more_drops_than_enqueues() {
        let registry = Arc::new(SubscriptionRegistry::new());
        // Capacity 1 makes nearly every delivery also a drop — the tightest
        // race between the two counters.
        let queue = Arc::new(SubscriberQueue::new(1));
        let entry = registry.register(&queue, &req(1, "*", 0b001)).unwrap();
        let writer = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for i in 0..20_000 {
                    registry.deliver(&entry, "a", snapshot_payload(i));
                }
            })
        };
        while !writer.is_finished() {
            let (enqueued, dropped) = registry.event_counters();
            assert!(
                dropped <= enqueued,
                "scrape raced ahead: dropped={dropped} enqueued={enqueued}"
            );
        }
        writer.join().unwrap();
        let (enqueued, dropped) = registry.event_counters();
        assert_eq!(enqueued, 20_000);
        assert_eq!(dropped, 19_999, "capacity-1 queue keeps only the newest");
    }

    #[test]
    fn delivery_lag_histogram_fills_at_drain() {
        let registry = SubscriptionRegistry::new();
        let lag = Arc::new(LatencyHisto::new());
        let queue = Arc::new(SubscriberQueue::with_telemetry(16, Some(Arc::clone(&lag))));
        let entry = registry.register(&queue, &req(1, "*", 0b001)).unwrap();
        for i in 0..3 {
            registry.deliver(&entry, "a", snapshot_payload(i));
        }
        assert_eq!(lag.count(), 0, "lag is measured at drain, not enqueue");
        let mut out = Vec::new();
        queue.drain_to_vec(&mut out, usize::MAX);
        assert_eq!(lag.count(), 3);
        // Events also carry the collector's wall-clock send timestamp.
        let (frame, _) = Frame::decode(&out).unwrap();
        match frame {
            Frame::Event(event) => assert!(event.sent_at_ns > 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_beat_events_are_chunked() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(64));
        let entry = registry.register(&queue, &req(1, "*", 0b100)).unwrap();
        let beats: Vec<wire::WireBeat> = (0..wire::MAX_EVENT_BEATS as u64 + 10)
            .map(|i| wire::WireBeat {
                record: heartbeats::HeartbeatRecord::new(
                    i,
                    i * 1_000,
                    heartbeats::Tag::NONE,
                    heartbeats::BeatThreadId(0),
                ),
                scope: heartbeats::BeatScope::Global,
            })
            .collect();
        registry.deliver(
            &entry,
            "big",
            EventPayload::Beats {
                dropped_total: 0,
                beats,
            },
        );
        assert_eq!(queue.len(), 2, "split into two events");
        let mut out = Vec::new();
        queue.drain_to_vec(&mut out, usize::MAX);
        let (first, used) = Frame::decode(&out).unwrap();
        let (second, _) = Frame::decode(&out[used..]).unwrap();
        let count = |frame: &Frame| match frame {
            Frame::Event(EventFrame {
                payload: EventPayload::Beats { beats, .. },
                ..
            }) => beats.len(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(count(&first), wire::MAX_EVENT_BEATS);
        assert_eq!(count(&second), 10);
    }

    #[test]
    fn health_transition_bookkeeping() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(4));
        let entry = registry.register(&queue, &req(1, "*", 0b010)).unwrap();
        // First assessment transitions from NoSignal, even to NoSignal? No:
        // the first Healthy report transitions from NoSignal...
        assert_eq!(
            entry.health_transition("a", HealthStatus::Healthy),
            Some(HealthStatus::NoSignal)
        );
        // ...repeats are silent...
        assert_eq!(entry.health_transition("a", HealthStatus::Healthy), None);
        // ...and changes report the previous state.
        assert_eq!(
            entry.health_transition("a", HealthStatus::Stalled),
            Some(HealthStatus::Healthy)
        );
    }

    #[test]
    fn deliver_beats_encodes_once_per_distinct_sub_id() {
        let registry = SubscriptionRegistry::new();
        // Three subscribers on separate connections; two share sub_id 1.
        let queues: Vec<Arc<SubscriberQueue>> =
            (0..3).map(|_| Arc::new(SubscriberQueue::new(8))).collect();
        let entries: Vec<Arc<SubEntry>> = [(0, 1u32), (1, 1u32), (2, 7u32)]
            .iter()
            .map(|&(q, id)| registry.register(&queues[q], &req(id, "*", 0b100)).unwrap())
            .collect();
        let beats: Vec<wire::WireBeat> = (0..4)
            .map(|i| wire::WireBeat {
                record: heartbeats::HeartbeatRecord::new(
                    i,
                    i * 1_000_000,
                    heartbeats::Tag::NONE,
                    heartbeats::BeatThreadId(0),
                ),
                scope: heartbeats::BeatScope::Global,
            })
            .collect();
        let encodes = registry.deliver_beats(&entries, "shared", 3, &beats);
        assert_eq!(encodes, 2, "one encode per distinct sub_id, not per subscriber");
        assert_eq!(registry.events_enqueued(), 3, "every subscriber still enqueued");
        for (queue, want_id) in queues.iter().zip([1u32, 1, 7]) {
            let mut out = Vec::new();
            assert_eq!(queue.drain_to_vec(&mut out, usize::MAX), 1);
            match Frame::decode(&out).unwrap().0 {
                Frame::Event(event) => {
                    assert_eq!(event.sub_id, want_id);
                    assert_eq!(event.app, "shared");
                    match event.payload {
                        EventPayload::Beats {
                            dropped_total,
                            beats,
                        } => {
                            assert_eq!(dropped_total, 3);
                            assert_eq!(beats.len(), 4);
                        }
                        other => panic!("unexpected payload {other:?}"),
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn deliver_beats_shares_bytes_into_outbound_buffers() {
        let registry = SubscriptionRegistry::new();
        let queues: Vec<Arc<SubscriberQueue>> =
            (0..4).map(|_| Arc::new(SubscriberQueue::new(8))).collect();
        let entries: Vec<Arc<SubEntry>> = queues
            .iter()
            .map(|q| registry.register(q, &req(1, "*", 0b100)).unwrap())
            .collect();
        let beats = vec![wire::WireBeat {
            record: heartbeats::HeartbeatRecord::new(
                0,
                1_000,
                heartbeats::Tag::NONE,
                heartbeats::BeatThreadId(0),
            ),
            scope: heartbeats::BeatScope::Global,
        }];
        assert_eq!(registry.deliver_beats(&entries, "fan", 0, &beats), 1);
        // Drain every queue into an OutBuf: all four hold the same bytes,
        // and the buffers reference them without copying.
        let mut bufs: Vec<OutBuf> = (0..4).map(|_| OutBuf::new()).collect();
        let mut flattened = Vec::new();
        for (queue, buf) in queues.iter().zip(bufs.iter_mut()) {
            assert_eq!(queue.drain_into(buf, usize::MAX), 1);
            let bytes: Vec<u8> = buf.iter_slices().flatten().copied().collect();
            flattened.push(bytes);
        }
        assert!(flattened.windows(2).all(|w| w[0] == w[1]));
        let (frame, _) = Frame::decode(&flattened[0]).unwrap();
        assert!(matches!(frame, Frame::Event(_)));
    }

    #[test]
    fn drain_respects_byte_budget_but_always_moves_one() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(16));
        let entry = registry.register(&queue, &req(1, "*", 0b001)).unwrap();
        for i in 0..5 {
            registry.deliver(&entry, "a", snapshot_payload(i));
        }
        let mut out = Vec::new();
        assert_eq!(queue.drain_to_vec(&mut out, 1), 1, "budget floor is one event");
        let before = out.len();
        assert_eq!(queue.drain_to_vec(&mut out, usize::MAX), 4);
        assert!(out.len() > before);
    }

    #[test]
    fn cursored_subscription_numbers_events_monotonically() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(16));
        let entry = registry
            .register_cursored(&queue, &req(1, "*", 0b001))
            .unwrap();
        assert!(entry.is_cursored());
        assert_eq!(entry.last_cursor(), 0);
        for i in 0..5 {
            registry.deliver(&entry, "a", snapshot_payload(i));
        }
        assert_eq!(entry.last_cursor(), 5);
        let mut cursors = Vec::new();
        queue.drain_events(usize::MAX, |_, cursor| cursors.push(cursor));
        assert_eq!(cursors, vec![1, 2, 3, 4, 5]);
        // Drained cursored events land in the replay ring, ready for resume.
        let replay = queue.replay_events(1, 3);
        assert_eq!(
            replay.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn resumed_registration_continues_cursor_numbering() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(16));
        let mut resume = req(7, "*", 0b001);
        resume.resume_from = 42;
        let entry = registry.register_cursored(&queue, &resume).unwrap();
        registry.deliver(&entry, "a", snapshot_payload(0));
        assert_eq!(entry.last_cursor(), 42, "first cursor is resume_from");
        // Non-cursored registrations ignore resume_from entirely.
        let plain_queue = Arc::new(SubscriberQueue::new(16));
        let plain = registry.register(&plain_queue, &resume).unwrap();
        registry.deliver(&plain, "a", snapshot_payload(0));
        assert!(!plain.is_cursored());
        assert_eq!(plain.last_cursor(), 0);
        let mut cursors = Vec::new();
        plain_queue.drain_events(usize::MAX, |_, cursor| cursors.push(cursor));
        assert_eq!(cursors, vec![0]);
    }

    #[test]
    fn purge_discards_replay_ring_so_reused_sub_id_cannot_resurrect() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(16));
        let entry = registry
            .register_cursored(&queue, &req(3, "*", 0b001))
            .unwrap();
        for i in 0..4 {
            registry.deliver(&entry, "a", snapshot_payload(i));
        }
        queue.drain_events(usize::MAX, |_, _| {});
        assert_eq!(queue.replay_events(3, 1).len(), 4);
        // Unsubscribe purges pending events AND the replay ring.
        assert!(registry.unregister(&queue, 3));
        assert!(
            queue.replay_events(3, 1).is_empty(),
            "stale replay ring must not survive the purge"
        );
        // A fresh subscription reusing sub_id 3 starts a clean stream.
        let reused = registry
            .register_cursored(&queue, &req(3, "*", 0b001))
            .unwrap();
        registry.deliver(&reused, "a", snapshot_payload(9));
        queue.drain_events(usize::MAX, |_, _| {});
        let replay = queue.replay_events(3, 1);
        assert_eq!(replay.len(), 1, "only the new stream's events replay");
        assert_eq!(replay[0].0, 1, "numbering restarted at 1");
    }

    #[test]
    fn replay_ring_is_bounded_with_exact_accounting() {
        let registry = SubscriptionRegistry::new();
        let queue = Arc::new(SubscriberQueue::new(4));
        let entry = registry
            .register_cursored(&queue, &req(1, "*", 0b001))
            .unwrap();
        // Ten events through a capacity-4 queue: drain in lockstep so none
        // are shed from the live queue, then the replay ring itself must
        // bound at capacity, dropping oldest with accounting.
        for i in 0..10 {
            registry.deliver(&entry, "a", snapshot_payload(i));
            queue.drain_events(usize::MAX, |_, _| {});
        }
        let replay = queue.replay_events(1, 1);
        assert_eq!(replay.len(), 4, "ring bounded at queue capacity");
        assert_eq!(
            replay.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "newest retained, oldest shed"
        );
        assert_eq!(queue.replay_dropped(), 6, "every shed entry accounted");
    }
}
