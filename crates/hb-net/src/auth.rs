//! Uplink authentication primitives: SHA-256 and HMAC-SHA256.
//!
//! The federation handshake ([`crate::upstream`]) authenticates a child
//! collector to its parent with a keyed-MAC challenge/response over a
//! shared cluster secret (`--cluster-secret`): the parent sends a fresh
//! 32-byte nonce in a `NodeChallenge` frame, the child answers with
//! `HMAC-SHA256(secret, nonce || node_name)` in a `NodeAuth` frame, and
//! the parent verifies before opening the link. Binding the node name
//! into the MAC means a valid response for one node cannot be replayed
//! to claim another.
//!
//! The container builds offline, so the primitives live here rather than
//! behind a dependency: a straightforward FIPS 180-4 SHA-256 and the
//! RFC 2104 HMAC construction, pinned by the standard published test
//! vectors below. This is a message-authentication path, not a
//! general-purpose crypto library — nothing here does key derivation,
//! encryption, or signature schemes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Digest length in bytes — also the nonce and MAC length on the wire.
pub const DIGEST_LEN: usize = 32;

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4).
struct Sha256 {
    state: [u32; 8],
    /// Bytes fed so far (for the length suffix in the padding block).
    len: u64,
    block: [u8; 64],
    fill: usize,
}

impl Sha256 {
    fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            len: 0,
            block: [0; 64],
            fill: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.fill > 0 {
            let take = data.len().min(64 - self.fill);
            self.block[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            data = &data[take..];
            if self.fill < 64 {
                // The whole input fit in the partial block; the tail below
                // must not run, or it would reset `fill` and lose it.
                return;
            }
            let block = self.block;
            self.compress(&block);
            self.fill = 0;
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        self.block[..data.len()].copy_from_slice(data);
        self.fill = data.len();
    }

    fn finish(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0]);
        }
        // Manual tail: update() would re-count these 8 length bytes.
        self.block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// SHA-256 of `data` (FIPS 180-4).
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// HMAC-SHA256 over `msg` with `key` (RFC 2104).
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let mut pad = [0u8; 64];
    for (p, k) in pad.iter_mut().zip(key_block) {
        *p = k ^ 0x36;
    }
    inner.update(&pad);
    inner.update(msg);
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    for (p, k) in pad.iter_mut().zip(key_block) {
        *p = k ^ 0x5c;
    }
    outer.update(&pad);
    outer.update(&inner_digest);
    outer.finish()
}

/// The uplink handshake MAC: `HMAC-SHA256(secret, nonce || node)`. The
/// node name is bound in so a response captured for one node cannot
/// authenticate a different one against the same parent.
pub fn uplink_mac(secret: &str, nonce: &[u8; DIGEST_LEN], node: &str) -> [u8; DIGEST_LEN] {
    let mut msg = Vec::with_capacity(DIGEST_LEN + node.len());
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(node.as_bytes());
    hmac_sha256(secret.as_bytes(), &msg)
}

/// Constant-time 32-byte comparison: every byte participates regardless
/// of where the first mismatch sits, so verification latency leaks
/// nothing about the expected MAC.
pub fn mac_eq(a: &[u8; DIGEST_LEN], b: &[u8; DIGEST_LEN]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Process-unique challenge nonces: wall clock, a monotone counter, and
/// the parent's address of the moment mixed through SplitMix64. Nonces
/// need uniqueness per handshake, not unpredictability of the secret —
/// the MAC covers integrity.
pub fn fresh_nonce() -> [u8; DIGEST_LEN] {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut state = now ^ COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e3779b97f4a7c15); // ordering: uniqueness only; the counter feeds a nonce mix, nothing synchronizes on it
    let mut out = [0u8; DIGEST_LEN];
    for chunk in out.chunks_exact_mut(8) {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_fips_vectors() {
        // FIPS 180-4 / NIST CAVP published vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: short key ("Jefe").
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 6: key longer than one block (131 bytes of 0xaa).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn uplink_mac_binds_node_name() {
        let nonce = [7u8; DIGEST_LEN];
        let a = uplink_mac("secret", &nonce, "leaf-a");
        let b = uplink_mac("secret", &nonce, "leaf-b");
        let c = uplink_mac("other", &nonce, "leaf-a");
        assert_ne!(a, b, "node name must be bound into the MAC");
        assert_ne!(a, c, "secret must be bound into the MAC");
        assert!(mac_eq(&a, &uplink_mac("secret", &nonce, "leaf-a")));
        assert!(!mac_eq(&a, &b));
    }

    #[test]
    fn nonces_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            assert!(seen.insert(fresh_nonce()), "nonce repeated");
        }
    }
}
