//! The heartbeat wire protocol: a compact, versioned binary framing for
//! shipping heartbeat telemetry between processes and machines.
//!
//! ## Frame layout
//!
//! Every frame is self-delimiting (little-endian throughout):
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0x48425754 ("HBWT")
//! 4       1     version      currently 1
//! 5       1     kind         frame type discriminant
//! 6       4     payload_len  bytes following the header (<= MAX_PAYLOAD)
//! 10      4     crc32        IEEE CRC-32 of the payload bytes
//! 14      n     payload
//! ```
//!
//! The magic and version let a receiver reject foreign or future streams
//! immediately; the length prefix makes framing O(1); the CRC rejects
//! corruption and desynchronization deterministically. Version-2 beat
//! records use a fixed 29-byte encoding decodable with plain offset
//! arithmetic; version-3 **compact** beat records delta/varint-encode the
//! monotone fields (LEB128 sequence deltas, zigzag timestamp deltas, tag
//! elided when [`Tag::NONE`], scope packed into a per-record flag byte) so
//! a steady heartbeat stream costs ~5 bytes per beat instead of 29. Both
//! encodings decode without per-record allocation through the borrowing
//! [`BeatsView`] iterator.
//!
//! ## Versioning
//!
//! Each frame carries the **lowest** protocol version that defines its kind
//! ([`wire_version`]): the original producer frames (kinds 1–4) encode as
//! version 1, the health query frames (kinds 5–8) as version 2, and the
//! compact-framing extension (kinds 9–10) as version 3. A decoder accepts
//! any version in `MIN_VERSION..=VERSION` and rejects a kind its claimed
//! version does not define, so a version-1-only peer keeps interoperating
//! with everything it understands while newer frames fail fast instead of
//! being misparsed. Compact framing is *negotiated per connection*: the
//! collector answers every [`Frame::Hello`] with a [`Frame::HelloAck`]
//! advertising its maximum version, and a producer only switches to compact
//! beats after seeing `max_version >= 3` — against an old collector (which
//! never writes on the ingest socket) the ack never arrives and the
//! producer stays on the version-2 encoding. See `docs/WIRE.md` for the
//! byte-level specification with worked examples.
//!
//! ## Frame kinds
//!
//! Producer → collector (version 1):
//!
//! * [`Frame::Hello`] — sent once per connection: application identity plus
//!   its default rate window, so the collector can size its server-side
//!   [`MovingRate`](heartbeats::MovingRate).
//! * [`Frame::Beats`] — a batch of heartbeat records plus the producer-side
//!   drop counter (beats shed under backpressure), so observers can
//!   distinguish "slow app" from "slow network".
//! * [`Frame::Target`] — the application changed its declared heart-rate
//!   goal (`HB_set_target_rate`).
//! * [`Frame::Bye`] — orderly goodbye; the collector marks the app
//!   disconnected rather than waiting for staleness.
//!
//! Observer ⇄ collector, on the query port (version 2):
//!
//! * [`Frame::HistoryReq`] / [`Frame::History`] — ask for / return the
//!   collector's bounded history ring for one application
//!   ([`HistorySample`] records).
//! * [`Frame::HealthReq`] / [`Frame::Health`] — ask for / return the
//!   windowed anomaly classification ([`HealthReport`]).
//!
//! Compact framing (version 3):
//!
//! * [`Frame::HelloAck`] — collector → producer, in response to a hello:
//!   advertises the collector's maximum protocol version so the producer
//!   can switch to compact beats.
//! * Compact beats (kind 10) — the delta/varint encoding of a beat batch;
//!   decodes to the same [`Frame::Beats`] as the fixed-width kind, and is
//!   produced by [`BatchEncoder::begin_compact`].
//!
//! Push subscriptions, on the query port (version 3):
//!
//! * [`Frame::Subscribe`] / [`Frame::SubAck`] — open a push subscription
//!   (application glob, interest mask, minimum update interval) /
//!   acknowledge it.
//! * [`Frame::Event`] — one pushed observation event (snapshot update,
//!   health transition, or raw beats), varint/delta encoded with the same
//!   machinery as compact beat records.
//! * [`Frame::Unsubscribe`] — cancel a subscription; acknowledged with a
//!   [`Frame::SubAck`], after which no events for it follow.

use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};

use crate::crc::crc32;
use crate::error::{NetError, Result};
use crate::health::{HealthReason, HealthReport, HealthStatus, HistorySample};

/// Frame magic: `HBWT` interpreted as a little-endian u32.
pub const MAGIC: u32 = 0x5457_4248;

/// Current protocol version (compact beat framing + hello acknowledgment).
pub const VERSION: u8 = 3;

/// Oldest protocol version still accepted (the original producer frames).
pub const MIN_VERSION: u8 = 1;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 14;

/// Upper bound on a frame payload; anything larger is a protocol violation.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Encoded size of one beat record inside a version-2 [`Frame::Beats`]
/// payload.
pub const BEAT_LEN: usize = 29;

/// Fixed prefix of a version-2 [`Frame::Beats`] payload (`dropped_total` +
/// count).
pub const BATCH_PREFIX_LEN: usize = 12;

/// Most beat records a single version-2 [`Frame::Beats`] can carry within
/// [`MAX_PAYLOAD`].
pub const MAX_BATCH_BEATS: usize = (MAX_PAYLOAD - BATCH_PREFIX_LEN) / BEAT_LEN;

/// Worst-case encoded size of one compact (version-3) beat record: flag
/// byte + 10-byte seq varint + 10-byte timestamp varint + 10-byte tag
/// varint + 5-byte thread varint. Typical records are 4–7 bytes; the bound
/// only gates [`BatchEncoder`] capacity checks.
pub const MAX_COMPACT_BEAT_LEN: usize = 1 + 10 + 10 + 10 + 5;

/// Maximum application-name length accepted in a hello frame.
pub const MAX_NAME_LEN: usize = 256;

/// Maximum federation node (origin) name length accepted in a
/// [`Frame::NodeHello`]. Node names become `node/` prefixes on every
/// re-exported application name, so they are bounded much tighter than
/// [`MAX_NAME_LEN`] to leave room for the application part.
pub const MAX_NODE_LEN: usize = 64;

/// Encoded size of one [`HistorySample`] inside a [`Frame::History`]
/// payload.
pub const SAMPLE_LEN: usize = 40;

/// Most history samples a single [`Frame::History`] can carry within
/// [`MAX_PAYLOAD`] (the fixed prefix plus a maximal name leave room for the
/// rest).
pub const MAX_HISTORY_SAMPLES: usize = (MAX_PAYLOAD - 15 - MAX_NAME_LEN) / SAMPLE_LEN;

const KIND_HELLO: u8 = 1;
const KIND_BEATS: u8 = 2;
const KIND_TARGET: u8 = 3;
const KIND_BYE: u8 = 4;
const KIND_HISTORY_REQ: u8 = 5;
const KIND_HISTORY: u8 = 6;
const KIND_HEALTH_REQ: u8 = 7;
const KIND_HEALTH: u8 = 8;
const KIND_HELLO_ACK: u8 = 9;
const KIND_BEATS_COMPACT: u8 = 10;
const KIND_SUBSCRIBE: u8 = 11;
const KIND_SUB_ACK: u8 = 12;
const KIND_EVENT: u8 = 13;
const KIND_UNSUBSCRIBE: u8 = 14;
const KIND_NODE_HELLO: u8 = 15;
const KIND_RELAY_EVENT: u8 = 16;
const KIND_RELAY_ACK: u8 = 17;
const KIND_NODE_CHALLENGE: u8 = 18;
const KIND_NODE_AUTH: u8 = 19;

/// Most ancestry entries a [`Frame::NodeHello`] path vector may carry —
/// bounds the announced subtree, and therefore the federation tree depth ×
/// fan-in a single hello can describe. Far beyond any deployment this
/// codebase targets; the bound exists so a hostile hello cannot make the
/// parent buffer an unbounded name list.
pub const MAX_PATH_NODES: usize = 64;

/// Nonce and MAC length in the [`Frame::NodeChallenge`] /
/// [`Frame::NodeAuth`] handshake (the SHA-256 digest width).
pub const AUTH_LEN: usize = 32;

/// The lowest protocol version that defines `kind`, which is also the
/// version stamped into the header when the frame is encoded. `None` if no
/// supported version defines it.
pub fn wire_version(kind: u8) -> Option<u8> {
    match kind {
        KIND_HELLO..=KIND_BYE => Some(1),
        KIND_HISTORY_REQ..=KIND_HEALTH => Some(2),
        KIND_HELLO_ACK..=KIND_NODE_AUTH => Some(3),
        _ => None,
    }
}

/// True if `kind` is one of the beat-batch frame kinds (fixed-width
/// version-2 or compact version-3) — the frames [`BeatsView`] can walk.
pub fn is_beats_kind(kind: u8) -> bool {
    kind == KIND_BEATS || kind == KIND_BEATS_COMPACT
}

/// True if `name` is acceptable as an application name on the wire:
/// non-empty, within [`MAX_NAME_LEN`] bytes, and free of whitespace,
/// control characters and quotes (which would corrupt the collector's
/// line-based query protocol and Prometheus labels).
pub fn valid_app_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .chars()
            .all(|c| !c.is_whitespace() && !c.is_control() && c != '"' && c != '\\')
}

/// True if `pattern` is acceptable as a subscription application pattern:
/// the same rules as [`valid_app_name`], except that `*` wildcards are also
/// allowed (each matches any — possibly empty — run of characters).
pub fn valid_subscribe_pattern(pattern: &str) -> bool {
    !pattern.is_empty()
        && pattern.len() <= MAX_NAME_LEN
        && pattern
            .chars()
            .all(|c| c == '*' || (!c.is_whitespace() && !c.is_control() && c != '"' && c != '\\'))
}

/// Matches an application name against a subscription pattern: literal
/// characters match themselves, `*` matches any (possibly empty) run.
/// Byte-wise (safe for UTF-8: `*` is ASCII and multi-byte sequences only
/// match themselves).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p = pattern.as_bytes();
    let n = name.as_bytes();
    let (mut pi, mut ni) = (0usize, 0usize);
    // Backtracking point: the most recent `*` and the name position its
    // match currently extends to.
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && p[pi] == b'*' { // hb-lint: allow(index): pi < p.len() guards on this line
            star = pi;
            mark = ni;
            pi += 1;
        } else if pi < p.len() && p[pi] == n[ni] { // hb-lint: allow(index): pi/ni bounded by the matcher loop conditions
            pi += 1;
            ni += 1;
        } else if star != usize::MAX {
            // Extend the last star's match by one byte and retry.
            pi = star + 1;
            mark += 1;
            ni = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' { // hb-lint: allow(index): pi < p.len() guards on this line
        pi += 1;
    }
    pi == p.len()
}

/// True if `name` is acceptable as a federation node (origin) name:
/// everything [`valid_app_name`] demands, within [`MAX_NODE_LEN`] bytes,
/// and additionally free of `/` (the namespace separator) and `*` (the
/// subscription wildcard) — so `node/app` parses unambiguously and node
/// prefixes never alias glob patterns.
pub fn valid_node_name(name: &str) -> bool {
    valid_app_name(name) && name.len() <= MAX_NODE_LEN && !name.contains('/') && !name.contains('*')
}

/// True if some application name starting with `prefix` could match
/// `pattern` — i.e. the glob can consume all of `prefix` and still have a
/// viable (possibly empty) remainder. Used by federation to decide whether
/// a subscription at a parent must be propagated to the child behind a
/// `node/` prefix. May report `true` for patterns no concrete child name
/// ends up matching (the parent re-filters on delivery); it never reports
/// `false` for a pattern that could match.
pub fn glob_overlaps_prefix(pattern: &str, prefix: &str) -> bool {
    let p = pattern.as_bytes();
    let n = prefix.as_bytes();
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && p[pi] == b'*' { // hb-lint: allow(index): pi < p.len() guards on this line
            star = pi;
            mark = ni;
            pi += 1;
        } else if pi < p.len() && p[pi] == n[ni] { // hb-lint: allow(index): pi/ni bounded by the matcher loop conditions
            pi += 1;
            ni += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ni = mark;
        } else {
            return false;
        }
    }
    // The prefix is consumed. Any remaining pattern tail can always be
    // satisfied by some suffix (literals match themselves, `*` matches
    // anything), so consuming the prefix is sufficient.
    true
}

/// Rewrites an arbitrary string into a valid wire application name:
/// offending characters become `-` and the result is truncated to
/// [`MAX_NAME_LEN`] bytes (empty input becomes `"unnamed"`).
pub fn sanitize_app_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len().min(MAX_NAME_LEN));
    for c in name.chars() {
        if out.len() + c.len_utf8() > MAX_NAME_LEN {
            break;
        }
        if c.is_whitespace() || c.is_control() || c == '"' || c == '\\' {
            out.push('-');
        } else {
            out.push(c);
        }
    }
    if out.is_empty() {
        out.push_str("unnamed");
    }
    out
}

/// Connection preamble: who is producing, and how it measures itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Application name (registry key on the collector).
    pub app: String,
    /// Producer process id, for operator diagnostics.
    pub pid: u32,
    /// The window (in beats) the application registered at
    /// `HB_initialize`; the collector sizes its server-side window to match
    /// so local and remote rate estimates agree.
    pub default_window: u32,
}

/// One heartbeat record with its scope, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireBeat {
    /// The heartbeat record (sequence, timestamp, tag, thread).
    pub record: HeartbeatRecord,
    /// Global (application-wide) or local (per-thread) stream.
    pub scope: BeatScope,
}

/// A batch of beats plus the producer's cumulative drop counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BeatBatch {
    /// Total beats the producer has shed so far under backpressure.
    pub dropped_total: u64,
    /// The records in this batch, in production order.
    pub beats: Vec<WireBeat>,
}

/// A slice of one application's collector-side history ring, as returned by
/// a [`Frame::HistoryReq`] query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryChunk {
    /// The application the history belongs to.
    pub app: String,
    /// False when the collector has never seen the application (the chunk
    /// is then empty but well-formed).
    pub known: bool,
    /// Samples ever pushed into the ring, including those already
    /// overwritten — `total - samples.len()` is the number lost to the
    /// ring's bound.
    pub total: u64,
    /// The retained samples, chronological.
    pub samples: Vec<HistorySample>,
}

/// A health classification for one application, as returned by a
/// [`Frame::HealthReq`] query.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthFrame {
    /// The application the report describes.
    pub app: String,
    /// False when the collector has never seen the application (the report
    /// is then [`HealthReport::no_signal`]).
    pub known: bool,
    /// The windowed anomaly detector's verdict.
    pub report: HealthReport,
}

/// A push-subscription request, as carried by [`Frame::Subscribe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscribeReq {
    /// Client-chosen subscription id, echoed in the [`Frame::SubAck`] and
    /// stamped on every [`Frame::Event`] the subscription produces. Scoped
    /// to the connection.
    pub sub_id: u32,
    /// Application pattern (`*` wildcards; see [`glob_match`]).
    pub pattern: String,
    /// Interest mask — the stable bit layout of
    /// [`heartbeats::observe::Interest`] (`1` snapshots, `2` health
    /// transitions, `4` raw beats).
    pub interests: u8,
    /// Minimum spacing between snapshot events and health re-assessments
    /// per application, in nanoseconds. Raw-beat events are not throttled
    /// (they are bounded by the subscriber queue instead).
    pub min_interval_ns: u64,
    /// First event cursor the subscriber wants (`0` = no resume: start
    /// fresh). A federation parent re-issuing a propagated subscription
    /// after a link drop sets this to one past its last-delivered cursor;
    /// the child replays what its bounded replay ring still holds and
    /// continues the cursor sequence without a gap. Encoded as a trailing
    /// varint; absent on the wire (frames from older peers) decodes as `0`.
    pub resume_from: u64,
}

/// Outcome of a [`Frame::Subscribe`] / [`Frame::Unsubscribe`] request, as
/// carried by [`Frame::SubAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SubStatus {
    /// The subscription was registered (or removed).
    Ok = 0,
    /// The pattern violates [`valid_subscribe_pattern`] or the interest
    /// mask has no (or unknown) bits.
    InvalidFilter = 1,
    /// The connection reached the collector's per-connection subscription
    /// bound.
    TooManySubscriptions = 2,
}

impl SubStatus {
    /// The stable wire encoding.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes the stable wire encoding.
    pub fn from_u8(value: u8) -> Option<SubStatus> {
        match value {
            0 => Some(SubStatus::Ok),
            1 => Some(SubStatus::InvalidFilter),
            2 => Some(SubStatus::TooManySubscriptions),
            _ => None,
        }
    }
}

/// One pushed observation event, as carried by [`Frame::Event`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventFrame {
    /// The subscription that produced the event.
    pub sub_id: u32,
    /// When the collector enqueued the event: wall-clock nanoseconds since
    /// the UNIX epoch (collector clock), or `0` when unknown. Observers
    /// subtract their own wall clock to estimate delivery lag
    /// ([`Subscription::delivery_lag`](crate::Subscription::delivery_lag)).
    pub sent_at_ns: u64,
    /// Per-subscription delivery cursor: monotone from 1 in queue order,
    /// or `0` when the emitter does not number this stream (local
    /// deliveries and plain observer connections). Federation uplinks
    /// stamp the real cursor when forwarding
    /// ([`splice_event_cursor`]), and the parent uses it to deduplicate
    /// replays and detect gaps across reconnects.
    pub cursor: u64,
    /// The application the event describes.
    pub app: String,
    /// What happened.
    pub payload: EventPayload,
}

/// The body of an [`EventFrame`]. Numeric fields are varint/delta encoded
/// with the same machinery as compact (version-3) beat records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload {
    /// A periodic application snapshot (interest bit `1`).
    Snapshot {
        /// Global beats received so far.
        total_beats: u64,
        /// Beats the producer shed before they reached the collector.
        producer_dropped: u64,
        /// The collector's windowed rate estimate, if measurable.
        rate_bps: Option<f64>,
        /// The application's declared target range, if any.
        target: Option<(f64, f64)>,
        /// False once the stream is stale by the collector's threshold.
        alive: bool,
    },
    /// The windowed health classification changed (interest bit `2`).
    HealthTransition {
        /// Classification before the transition.
        from: HealthStatus,
        /// Classification after the transition.
        to: HealthStatus,
        /// Machine-readable reasons for the new classification.
        reasons: Vec<HealthReason>,
        /// Beats inside the assessed window.
        window_beats: u32,
    },
    /// Raw beats as they arrived at the collector (interest bit `4`),
    /// compact-encoded. Batches larger than [`MAX_EVENT_BEATS`] are split
    /// across several events by the emitter.
    Beats {
        /// The producer's cumulative drop counter at this batch.
        dropped_total: u64,
        /// The records, in arrival order.
        beats: Vec<WireBeat>,
    },
}

/// Most beat records one [`EventPayload::Beats`] may carry; emitters chunk
/// larger batches so every event fits a frame with room to spare
/// (worst-case compact records are [`MAX_COMPACT_BEAT_LEN`] bytes).
pub const MAX_EVENT_BEATS: usize = 8192;

const EVENT_SNAPSHOT: u8 = 1;
const EVENT_HEALTH: u8 = 2;
const EVENT_BEATS: u8 = 3;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection preamble.
    Hello(Hello),
    /// A batch of heartbeat records. [`encode`](Frame::encode) always emits
    /// the fixed-width version-2 kind (the universally accepted fallback);
    /// compact version-3 frames are produced by
    /// [`BatchEncoder::begin_compact`] and decode to this same variant.
    Beats(BeatBatch),
    /// A target heart-rate declaration.
    Target {
        /// Minimum desired rate in beats/s.
        min_bps: f64,
        /// Maximum desired rate in beats/s.
        max_bps: f64,
    },
    /// Orderly end of stream.
    Bye,
    /// Query: the history ring of one application (`limit == 0` = all
    /// retained samples, otherwise the most recent `limit`).
    HistoryReq {
        /// Application name.
        app: String,
        /// Most recent samples wanted; `0` means all retained.
        limit: u32,
    },
    /// Response to [`Frame::HistoryReq`].
    History(HistoryChunk),
    /// Query: the windowed health classification of one application.
    HealthReq {
        /// Application name.
        app: String,
    },
    /// Response to [`Frame::HealthReq`].
    Health(HealthFrame),
    /// Collector → producer, answering a [`Frame::Hello`]: advertises the
    /// collector's maximum supported protocol version so the producer can
    /// switch to compact (version-3) beat framing. Old collectors never
    /// write on the ingest socket, so a producer that sees no ack keeps the
    /// version-2 encoding.
    HelloAck {
        /// Highest protocol version the collector accepts.
        max_version: u8,
    },
    /// Observer → collector, on the query port: open a push subscription.
    /// Answered with a [`Frame::SubAck`]; matching [`Frame::Event`]s follow
    /// on the same connection, interleaved with any query replies.
    Subscribe(SubscribeReq),
    /// Collector → observer: outcome of a [`Frame::Subscribe`] or
    /// [`Frame::Unsubscribe`].
    SubAck {
        /// The request's subscription id, echoed back.
        sub_id: u32,
        /// Whether the request was applied.
        status: SubStatus,
    },
    /// Collector → observer: one pushed observation event.
    Event(EventFrame),
    /// Observer → collector: cancel a subscription. Answered with a
    /// [`Frame::SubAck`]; no events for the subscription follow the ack.
    Unsubscribe {
        /// The subscription to cancel.
        sub_id: u32,
    },
    /// Child collector → parent, first frame on a federation uplink (in
    /// place of [`Frame::Hello`] on the ingest port): identifies the child
    /// as a relaying collector node rather than a single producer. The
    /// parent prefixes every re-exported application with `node/` and
    /// answers with a [`Frame::RelayAck`] carrying the highest link
    /// sequence it has already applied, so the child can resume without
    /// re-sending acknowledged batches.
    NodeHello {
        /// Federation node (origin) name; must satisfy [`valid_node_name`].
        node: String,
        /// The child collector's process id, for diagnostics.
        pid: u32,
        /// Every node name in the subtree the child is announcing: its own
        /// name plus the announced paths of its currently-connected
        /// children (at most [`MAX_PATH_NODES`] entries). The parent
        /// refuses the uplink if its *own* node name appears here — that
        /// is a relay cycle, and accepting it would loop beats forever.
        /// Absent on the wire (older peers) decodes as empty.
        path: Vec<String>,
    },
    /// Parent → child, answering a [`Frame::NodeHello`] when the parent
    /// runs with a cluster secret: a fresh nonce the child must MAC before
    /// the link opens. A parent without a secret skips this and answers
    /// with [`Frame::RelayAck`] directly.
    NodeChallenge {
        /// Fresh per-handshake nonce.
        nonce: [u8; AUTH_LEN],
    },
    /// Child → parent, answering a [`Frame::NodeChallenge`]:
    /// `HMAC-SHA256(secret, nonce || node)` (see [`crate::auth`]). A valid
    /// MAC is answered with the resume [`Frame::RelayAck`]; anything else
    /// closes the connection and counts toward
    /// `hb_collector_uplink_rejected_total{reason="auth"}`.
    NodeAuth {
        /// The keyed MAC over the challenge nonce and the node name.
        mac: [u8; AUTH_LEN],
    },
    /// Child collector → parent: one rollup event, tagged with a link
    /// sequence number for exactly-once application across reconnects. The
    /// parent applies the event only if `seq` is greater than the highest
    /// it has applied for this node, and acknowledges with
    /// [`Frame::RelayAck`].
    RelayEvent {
        /// Link-scoped sequence number, monotone from 1 per node.
        seq: u64,
        /// The event, named in the child's (un-prefixed) namespace.
        event: EventFrame,
    },
    /// Parent → child: cumulative acknowledgment of [`Frame::RelayEvent`]s.
    /// Also sent in answer to a [`Frame::NodeHello`] as the resume point.
    RelayAck {
        /// Highest link sequence applied so far (`0` = none).
        last_applied: u64,
    },
}

/// A borrowed, validated view of one beat-batch payload (fixed-width
/// version-2 or compact version-3), iterable without materializing a
/// `Vec<WireBeat>`.
///
/// [`parse`](BeatsView::parse) validates the *entire* payload up front —
/// record framing, varint bounds, flag bits, scope bytes, exact payload
/// consumption — so iteration afterwards is infallible and allocation-free.
/// This is the collector reactor's ingest path: frames decode in place in
/// the receive buffer and stream straight into the registry.
///
/// ```
/// use hb_net::wire::{BatchEncoder, BeatsView, Frame, WireBeat, HEADER_LEN};
/// use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
///
/// let mut encoder = BatchEncoder::new();
/// encoder.begin_compact(2);
/// encoder.push(&WireBeat {
///     record: HeartbeatRecord::new(7, 1_000, Tag::NONE, BeatThreadId(0)),
///     scope: BeatScope::Global,
/// });
/// let bytes = encoder.finish();
/// let (kind, payload_len, _crc) = Frame::decode_header(bytes).unwrap();
/// let view = BeatsView::parse(kind, &bytes[HEADER_LEN..HEADER_LEN + payload_len]).unwrap();
/// assert_eq!(view.dropped_total(), 2);
/// assert_eq!(view.len(), 1);
/// assert_eq!(view.iter().next().unwrap().record.seq, 7);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BeatsView<'a> {
    dropped_total: u64,
    /// The record region of the payload (prefix already consumed).
    records: &'a [u8],
    count: usize,
    compact: bool,
}

impl<'a> BeatsView<'a> {
    /// Validates a beats payload of the given frame `kind` (as returned by
    /// [`Frame::decode_header`]) and returns the view. Fails on non-beats
    /// kinds and on any malformed record, so the returned view iterates
    /// infallibly.
    pub fn parse(kind: u8, payload: &'a [u8]) -> Result<BeatsView<'a>> {
        match kind {
            KIND_BEATS => {
                if payload.len() < BATCH_PREFIX_LEN {
                    return Err(NetError::Protocol("beat batch payload truncated".into()));
                }
                let dropped_total = read_u64(payload, 0)?;
                let count = read_u32(payload, 8)? as usize;
                let records = &payload[BATCH_PREFIX_LEN..]; // hb-lint: allow(index): payload.len() >= BATCH_PREFIX_LEN checked above
                if records.len() != count * BEAT_LEN {
                    return Err(NetError::Protocol(format!(
                        "beat batch of {count} records should be {} bytes, got {}",
                        BATCH_PREFIX_LEN + count * BEAT_LEN,
                        payload.len()
                    )));
                }
                // Validate every scope byte now so iteration cannot fail.
                for i in 0..count {
                    let scope = records[i * BEAT_LEN + BEAT_LEN - 1]; // hb-lint: allow(index): records.len() == count * BEAT_LEN checked above
                    if scope > 1 {
                        return Err(NetError::Protocol(format!(
                            "invalid beat scope byte {scope}"
                        )));
                    }
                }
                Ok(BeatsView {
                    dropped_total,
                    records,
                    count,
                    compact: false,
                })
            }
            KIND_BEATS_COMPACT => {
                let (dropped_total, prefix) = get_varint(payload, 0)?;
                let records = &payload[prefix..]; // hb-lint: allow(index): payload.len() >= prefix checked above
                // Walk every record once: the count is implicit (the
                // payload length delimits the batch) and the walk rejects
                // malformed varints, unknown flags and trailing garbage.
                let mut state = DeltaState::default();
                let mut at = 0;
                let mut count = 0;
                while at < records.len() {
                    let (_, next) = decode_compact_beat(records, at, &mut state)?;
                    at = next;
                    count += 1;
                }
                Ok(BeatsView {
                    dropped_total,
                    records,
                    count,
                    compact: true,
                })
            }
            other => Err(NetError::Protocol(format!(
                "frame kind {other} is not a beat batch"
            ))),
        }
    }

    /// The producer's cumulative drop counter carried by the batch.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the batch carries no records (legal: it still refreshes the
    /// drop counter).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True if the payload uses the compact (version-3) encoding.
    pub fn is_compact(&self) -> bool {
        self.compact
    }

    /// Iterates the records in place. Infallible: the payload was fully
    /// validated by [`parse`](BeatsView::parse).
    pub fn iter(&self) -> BeatsIter<'a> {
        BeatsIter {
            records: self.records,
            at: 0,
            remaining: self.count,
            compact: self.compact,
            state: DeltaState::default(),
        }
    }
}

impl<'a> IntoIterator for &BeatsView<'a> {
    type Item = WireBeat;
    type IntoIter = BeatsIter<'a>;

    fn into_iter(self) -> BeatsIter<'a> {
        self.iter()
    }
}

/// Borrowing record iterator over a validated [`BeatsView`] payload.
#[derive(Debug, Clone)]
pub struct BeatsIter<'a> {
    records: &'a [u8],
    at: usize,
    remaining: usize,
    compact: bool,
    state: DeltaState,
}

// hb-lint: hot-path — per-record decode; runs once per beat on every ingest.
impl Iterator for BeatsIter<'_> {
    type Item = WireBeat;

    fn next(&mut self) -> Option<WireBeat> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.compact {
            // Validated by BeatsView::parse; a decode error here would be a
            // logic bug, surfaced by ending the iteration early (the
            // ExactSizeIterator contract is checked in tests).
            let (beat, next) = decode_compact_beat(self.records, self.at, &mut self.state).ok()?;
            self.at = next;
            Some(beat)
        } else {
            let bytes = self.records.get(self.at..self.at + BEAT_LEN)?;
            self.at += BEAT_LEN;
            Some(WireBeat {
                record: HeartbeatRecord::new(
                    get_u64(bytes, 0)?,
                    get_u64(bytes, 8)?,
                    Tag::new(get_u64(bytes, 16)?),
                    BeatThreadId(get_u32(bytes, 24)?),
                ),
                scope: if *bytes.get(28)? == 1 {
                    BeatScope::Local
                } else {
                    BeatScope::Global
                },
            })
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BeatsIter<'_> {}
// hb-lint: end-hot-path

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian u16 at `at`; `None` when out of bounds.
fn get_u16(bytes: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_le_bytes(bytes.get(at..at + 2)?.try_into().ok()?))
}

/// Reads a little-endian u32 at `at`; `None` when out of bounds.
fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

/// Reads a little-endian u64 at `at`; `None` when out of bounds.
fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

/// [`get_u16`] with a truncated-payload protocol error for decode paths.
fn read_u16(bytes: &[u8], at: usize) -> Result<u16> {
    get_u16(bytes, at).ok_or_else(|| NetError::Protocol(format!("u16 field at {at} truncated")))
}

/// [`get_u32`] with a truncated-payload protocol error for decode paths.
fn read_u32(bytes: &[u8], at: usize) -> Result<u32> {
    get_u32(bytes, at).ok_or_else(|| NetError::Protocol(format!("u32 field at {at} truncated")))
}

/// [`get_u64`] with a truncated-payload protocol error for decode paths.
fn read_u64(bytes: &[u8], at: usize) -> Result<u64> {
    get_u64(bytes, at).ok_or_else(|| NetError::Protocol(format!("u64 field at {at} truncated")))
}

/// Appends `v` as an LEB128 varint (7 value bits per byte, high bit =
/// continuation; at most 10 bytes for a u64).
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decodes an LEB128 varint at `at`, returning the value and the offset
/// just past it. Truncated or over-long (>10 byte / overflowing) varints
/// are protocol errors.
fn get_varint(bytes: &[u8], at: usize) -> Result<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut i = at;
    loop {
        let Some(&byte) = bytes.get(i) else {
            return Err(NetError::Protocol("varint truncated".into()));
        };
        i += 1;
        let bits = (byte & 0x7F) as u64;
        if shift == 63 && bits > 1 {
            return Err(NetError::Protocol("varint overflows u64".into()));
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i));
        }
        shift += 7;
        if shift > 63 {
            return Err(NetError::Protocol("varint longer than 10 bytes".into()));
        }
    }
}

/// Zigzag-maps a signed delta onto the unsigned varint space so small
/// magnitudes of either sign stay small on the wire (`0 → 0, -1 → 1,
/// 1 → 2, -2 → 3, …`).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Per-record flag bits of the compact (version-3) beat encoding.
const FLAG_LOCAL: u8 = 0b01;
const FLAG_TAGGED: u8 = 0b10;
const FLAG_KNOWN: u8 = FLAG_LOCAL | FLAG_TAGGED;

/// Running delta state threaded through a compact batch: sequences and
/// timestamps are encoded relative to the previous record (both start
/// at 0), with wrapping arithmetic so *any* u64 pair round-trips — a
/// monotone stream costs 1-byte seq deltas and small zigzag timestamp
/// deltas, while a backwards clock merely costs a wider varint.
#[derive(Debug, Clone, Copy, Default)]
struct DeltaState {
    prev_seq: u64,
    prev_ts: u64,
}

/// Appends one compact record and advances the delta state.
fn encode_compact_beat(buf: &mut Vec<u8>, state: &mut DeltaState, beat: &WireBeat) {
    let mut flags = 0u8;
    if beat.scope == BeatScope::Local {
        flags |= FLAG_LOCAL;
    }
    let tag = beat.record.tag.value();
    if tag != Tag::NONE.value() {
        flags |= FLAG_TAGGED;
    }
    buf.push(flags);
    put_varint(buf, beat.record.seq.wrapping_sub(state.prev_seq));
    let ts_delta = beat.record.timestamp_ns.wrapping_sub(state.prev_ts) as i64;
    put_varint(buf, zigzag(ts_delta));
    if flags & FLAG_TAGGED != 0 {
        put_varint(buf, tag);
    }
    put_varint(buf, beat.record.thread.index() as u64);
    state.prev_seq = beat.record.seq;
    state.prev_ts = beat.record.timestamp_ns;
}

/// Decodes one compact record at `at`, advancing the delta state and
/// returning the record plus the offset just past it.
fn decode_compact_beat(
    bytes: &[u8],
    at: usize,
    state: &mut DeltaState,
) -> Result<(WireBeat, usize)> {
    let Some(&flags) = bytes.get(at) else {
        return Err(NetError::Protocol("compact record truncated".into()));
    };
    if flags & !FLAG_KNOWN != 0 {
        return Err(NetError::Protocol(format!(
            "unknown compact record flags {flags:#04x}"
        )));
    }
    let (seq_delta, at) = get_varint(bytes, at + 1)?;
    let (ts_zigzag, at) = get_varint(bytes, at)?;
    let (tag, at) = if flags & FLAG_TAGGED != 0 {
        let (tag, at) = get_varint(bytes, at)?;
        if tag == Tag::NONE.value() {
            return Err(NetError::Protocol(
                "compact record carries an explicit NONE tag".into(),
            ));
        }
        (tag, at)
    } else {
        (Tag::NONE.value(), at)
    };
    let (thread, at) = get_varint(bytes, at)?;
    if thread > u32::MAX as u64 {
        return Err(NetError::Protocol(format!(
            "compact record thread id {thread} exceeds u32"
        )));
    }
    let seq = state.prev_seq.wrapping_add(seq_delta);
    let ts = state.prev_ts.wrapping_add(unzigzag(ts_zigzag) as u64);
    state.prev_seq = seq;
    state.prev_ts = ts;
    Ok((
        WireBeat {
            record: HeartbeatRecord::new(seq, ts, Tag::new(tag), BeatThreadId(thread as u32)),
            scope: if flags & FLAG_LOCAL != 0 {
                BeatScope::Local
            } else {
                BeatScope::Global
            },
        },
        at,
    ))
}

fn encode_beat(buf: &mut Vec<u8>, beat: &WireBeat) {
    put_u64(buf, beat.record.seq);
    put_u64(buf, beat.record.timestamp_ns);
    put_u64(buf, beat.record.tag.value());
    put_u32(buf, beat.record.thread.index());
    buf.push(match beat.scope {
        BeatScope::Global => 0,
        BeatScope::Local => 1,
    });
}

/// Appends a length-prefixed application name (u16 length + bytes). Names
/// beyond [`MAX_NAME_LEN`] cannot decode (every caller pre-validates; the
/// header's own length prefix means even a bogus name only yields a
/// rejected frame, never a desynchronized stream).
fn put_name(buf: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    debug_assert!(bytes.len() <= MAX_NAME_LEN, "unvalidated name on the wire");
    put_u16(buf, bytes.len() as u16);
    buf.extend_from_slice(bytes);
}

/// Decodes a length-prefixed application name at `at`, returning the name
/// and the offset just past it.
fn get_name(payload: &[u8], at: usize) -> Result<(String, usize)> {
    if payload.len() < at + 2 {
        return Err(NetError::Protocol("name length truncated".into()));
    }
    let len = read_u16(payload, at)? as usize;
    if len > MAX_NAME_LEN {
        return Err(NetError::Protocol(format!(
            "application name of {len} bytes exceeds the {MAX_NAME_LEN}-byte limit"
        )));
    }
    let end = at + 2 + len;
    if payload.len() < end {
        return Err(NetError::Protocol("name truncated".into()));
    }
    let name = std::str::from_utf8(&payload[at + 2..end]) // hb-lint: allow(index): end <= payload.len() checked just above
        .map_err(|_| NetError::Protocol("application name is not UTF-8".into()))?
        .to_string();
    if !valid_app_name(&name) {
        return Err(NetError::Protocol(format!(
            "invalid application name {name:?} (empty, too long, or contains \
             whitespace/control/quote characters)"
        )));
    }
    Ok((name, end))
}

/// Decodes a length-prefixed subscription pattern at `at` (the [`get_name`]
/// layout, validated with [`valid_subscribe_pattern`] instead).
fn get_pattern(payload: &[u8], at: usize) -> Result<(String, usize)> {
    if payload.len() < at + 2 {
        return Err(NetError::Protocol("pattern length truncated".into()));
    }
    let len = read_u16(payload, at)? as usize;
    if len > MAX_NAME_LEN {
        return Err(NetError::Protocol(format!(
            "pattern of {len} bytes exceeds the {MAX_NAME_LEN}-byte limit"
        )));
    }
    let end = at + 2 + len;
    if payload.len() < end {
        return Err(NetError::Protocol("pattern truncated".into()));
    }
    let pattern = std::str::from_utf8(&payload[at + 2..end]) // hb-lint: allow(index): end <= payload.len() checked just above
        .map_err(|_| NetError::Protocol("pattern is not UTF-8".into()))?
        .to_string();
    if !valid_subscribe_pattern(&pattern) {
        return Err(NetError::Protocol(format!(
            "invalid subscription pattern {pattern:?}"
        )));
    }
    Ok((pattern, end))
}

/// Encodes an optional finite f64 as its bit pattern, with NaN as the
/// `None` sentinel.
fn put_opt_f64(buf: &mut Vec<u8>, value: Option<f64>) {
    put_u64(buf, value.unwrap_or(f64::NAN).to_bits());
}

/// Decodes the optional-f64 convention: NaN means `None`; any other
/// non-finite value is a protocol violation.
fn get_opt_f64(bytes: &[u8], at: usize) -> Result<Option<f64>> {
    let value = f64::from_bits(read_u64(bytes, at)?);
    if value.is_nan() {
        Ok(None)
    } else if value.is_finite() {
        Ok(Some(value))
    } else {
        Err(NetError::Protocol("non-finite wire value".into()))
    }
}

fn encode_sample(buf: &mut Vec<u8>, sample: &HistorySample) {
    put_u64(buf, sample.seq);
    put_u64(buf, sample.timestamp_ns);
    put_u64(buf, sample.tag);
    put_u64(buf, sample.interval_ns);
    put_opt_f64(buf, sample.rate_bps);
}

fn decode_sample(bytes: &[u8]) -> Result<HistorySample> {
    debug_assert_eq!(bytes.len(), SAMPLE_LEN);
    Ok(HistorySample {
        seq: read_u64(bytes, 0)?,
        timestamp_ns: read_u64(bytes, 8)?,
        tag: read_u64(bytes, 16)?,
        interval_ns: read_u64(bytes, 24)?,
        rate_bps: get_opt_f64(bytes, 32)?,
    })
}

/// Appends a complete [`Frame::Event`] payload body to `buf`. Shared by
/// the [`KIND_EVENT`] encoder and [`Frame::RelayEvent`], which embeds the
/// same body after its link sequence number — so federation relays can
/// splice child event bytes without re-encoding.
fn encode_event_payload(buf: &mut Vec<u8>, event: &EventFrame) {
    put_varint(buf, event.sub_id as u64);
    match &event.payload {
        EventPayload::Snapshot { .. } => buf.push(EVENT_SNAPSHOT),
        EventPayload::HealthTransition { .. } => buf.push(EVENT_HEALTH),
        EventPayload::Beats { .. } => buf.push(EVENT_BEATS),
    }
    put_name(buf, &event.app);
    put_varint(buf, event.sent_at_ns);
    put_varint(buf, event.cursor);
    match &event.payload {
        EventPayload::Snapshot {
            total_beats,
            producer_dropped,
            rate_bps,
            target,
            alive,
        } => {
            put_varint(buf, *total_beats);
            put_varint(buf, *producer_dropped);
            put_opt_f64(buf, *rate_bps);
            put_opt_f64(buf, target.map(|(min, _)| min));
            put_opt_f64(buf, target.map(|(_, max)| max));
            buf.push(u8::from(*alive));
        }
        EventPayload::HealthTransition {
            from,
            to,
            reasons,
            window_beats,
        } => {
            buf.push(from.as_u8());
            buf.push(to.as_u8());
            put_u16(buf, HealthReason::pack(reasons));
            put_u32(buf, *window_beats);
        }
        EventPayload::Beats {
            dropped_total,
            beats,
        } => {
            debug_assert!(beats.len() <= MAX_EVENT_BEATS, "unchunked beats event");
            put_varint(buf, *dropped_total);
            let mut state = DeltaState::default();
            for beat in beats {
                encode_compact_beat(buf, &mut state, beat);
            }
        }
    }
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello(_) => KIND_HELLO,
            Frame::Beats(_) => KIND_BEATS,
            Frame::Target { .. } => KIND_TARGET,
            Frame::Bye => KIND_BYE,
            Frame::HistoryReq { .. } => KIND_HISTORY_REQ,
            Frame::History(_) => KIND_HISTORY,
            Frame::HealthReq { .. } => KIND_HEALTH_REQ,
            Frame::Health(_) => KIND_HEALTH,
            Frame::HelloAck { .. } => KIND_HELLO_ACK,
            Frame::Subscribe(_) => KIND_SUBSCRIBE,
            Frame::SubAck { .. } => KIND_SUB_ACK,
            Frame::Event(_) => KIND_EVENT,
            Frame::Unsubscribe { .. } => KIND_UNSUBSCRIBE,
            Frame::NodeHello { .. } => KIND_NODE_HELLO,
            Frame::RelayEvent { .. } => KIND_RELAY_EVENT,
            Frame::RelayAck { .. } => KIND_RELAY_ACK,
            Frame::NodeChallenge { .. } => KIND_NODE_CHALLENGE,
            Frame::NodeAuth { .. } => KIND_NODE_AUTH,
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello(hello) => {
                put_u32(buf, hello.pid);
                put_u32(buf, hello.default_window);
                let name = hello.app.as_bytes();
                put_u16(buf, name.len() as u16);
                buf.extend_from_slice(name);
            }
            Frame::Beats(batch) => {
                put_u64(buf, batch.dropped_total);
                put_u32(buf, batch.beats.len() as u32);
                for beat in &batch.beats {
                    encode_beat(buf, beat);
                }
            }
            Frame::Target { min_bps, max_bps } => {
                put_u64(buf, min_bps.to_bits());
                put_u64(buf, max_bps.to_bits());
            }
            Frame::Bye => {}
            Frame::HistoryReq { app, limit } => {
                put_u32(buf, *limit);
                put_name(buf, app);
            }
            Frame::History(chunk) => {
                buf.push(u8::from(chunk.known));
                put_u32(buf, chunk.samples.len() as u32);
                put_u64(buf, chunk.total);
                put_name(buf, &chunk.app);
                for sample in &chunk.samples {
                    encode_sample(buf, sample);
                }
            }
            Frame::HealthReq { app } => {
                put_name(buf, app);
            }
            Frame::Health(health) => {
                let report = &health.report;
                buf.push(u8::from(health.known));
                buf.push(report.status.as_u8());
                put_u16(buf, HealthReason::pack(&report.reasons));
                put_u32(buf, report.window_beats);
                put_u32(buf, report.missing);
                put_u32(buf, report.duplicated);
                put_u32(buf, report.reordered);
                put_u64(buf, report.silent_ns);
                put_opt_f64(buf, report.window_rate_bps);
                put_opt_f64(buf, report.jitter_cv);
                put_name(buf, &health.app);
            }
            Frame::HelloAck { max_version } => {
                buf.push(*max_version);
            }
            Frame::Subscribe(req) => {
                put_u32(buf, req.sub_id);
                buf.push(req.interests);
                put_u64(buf, req.min_interval_ns);
                put_name(buf, &req.pattern);
                put_varint(buf, req.resume_from);
            }
            Frame::SubAck { sub_id, status } => {
                put_u32(buf, *sub_id);
                buf.push(status.as_u8());
            }
            Frame::Event(event) => {
                encode_event_payload(buf, event);
            }
            Frame::Unsubscribe { sub_id } => {
                put_u32(buf, *sub_id);
            }
            Frame::NodeHello { node, pid, path } => {
                put_u32(buf, *pid);
                let name = node.as_bytes();
                put_u16(buf, name.len() as u16);
                buf.extend_from_slice(name);
                debug_assert!(path.len() <= MAX_PATH_NODES, "oversize node path");
                buf.push(path.len() as u8);
                for entry in path {
                    debug_assert!(entry.len() <= MAX_NODE_LEN, "oversize path entry");
                    buf.push(entry.len() as u8);
                    buf.extend_from_slice(entry.as_bytes());
                }
            }
            Frame::RelayEvent { seq, event } => {
                put_varint(buf, *seq);
                encode_event_payload(buf, event);
            }
            Frame::RelayAck { last_applied } => {
                put_varint(buf, *last_applied);
            }
            Frame::NodeChallenge { nonce } => {
                buf.extend_from_slice(nonce);
            }
            Frame::NodeAuth { mac } => {
                buf.extend_from_slice(mac);
            }
        }
    }

    /// Appends the full encoded frame (header + payload) to `buf`.
    ///
    /// Reusing one buffer across calls amortizes allocation on the producer
    /// hot path; the buffer is never shrunk.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let header_at = buf.len();
        put_u32(buf, MAGIC);
        // Stamp the lowest version that defines the kind, so version-1
        // peers keep accepting every frame they understand.
        // Every variant's kind is in the version table; fall back to the
        // current version rather than panic if a new kind misses a row
        // (hb-lint's wire-kind check catches the table gap itself).
        buf.push(wire_version(self.kind()).unwrap_or(VERSION));
        buf.push(self.kind());
        put_u32(buf, 0); // payload_len, patched below
        put_u32(buf, 0); // crc, patched below
        let payload_at = buf.len();
        self.encode_payload(buf);
        let payload_len = (buf.len() - payload_at) as u32;
        let crc = crc32(&buf[payload_at..]); // hb-lint: allow(index): payload_at <= buf.len(): the payload was appended above
        buf[header_at + 6..header_at + 10].copy_from_slice(&payload_len.to_le_bytes()); // hb-lint: allow(index): patches the header this function wrote at header_at
        buf[header_at + 10..header_at + 14].copy_from_slice(&crc.to_le_bytes()); // hb-lint: allow(index): patches the header this function wrote at header_at
    }

    /// Encodes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + 64);
        self.encode_into(&mut buf);
        buf
    }

    /// Parses and validates a frame header, returning `(kind, payload_len,
    /// crc)`. `bytes` must hold at least [`HEADER_LEN`] bytes.
    pub fn decode_header(bytes: &[u8]) -> Result<(u8, usize, u32)> {
        if bytes.len() < HEADER_LEN {
            return Err(NetError::Protocol(format!(
                "header truncated: {} of {HEADER_LEN} bytes",
                bytes.len()
            )));
        }
        let magic = read_u32(bytes, 0)?;
        if magic != MAGIC {
            return Err(NetError::Protocol(format!("bad magic {magic:#010x}")));
        }
        let version = bytes[4]; // hb-lint: allow(index): bytes.len() >= HEADER_LEN checked at entry
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(NetError::Protocol(format!(
                "unsupported protocol version {version}"
            )));
        }
        let kind = bytes[5]; // hb-lint: allow(index): bytes.len() >= HEADER_LEN checked at entry
        match wire_version(kind) {
            None => return Err(NetError::Protocol(format!("unknown frame kind {kind}"))),
            Some(required) if version < required => {
                return Err(NetError::Protocol(format!(
                    "frame kind {kind} requires protocol version {required}, header claims {version}"
                )));
            }
            Some(_) => {}
        }
        let payload_len = read_u32(bytes, 6)? as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(NetError::Protocol(format!(
                "payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
            )));
        }
        Ok((kind, payload_len, read_u32(bytes, 10)?))
    }

    /// Decodes a validated payload into a frame.
    pub fn decode_payload(kind: u8, payload: &[u8], crc: u32) -> Result<Frame> {
        if crc32(payload) != crc {
            return Err(NetError::Protocol("payload CRC mismatch".into()));
        }
        Self::decode_payload_body(kind, payload)
    }

    /// Decodes a payload whose CRC has already been verified (the
    /// incremental decoder checks it once and then dispatches between this
    /// and the zero-copy [`BeatsView`] path).
    pub(crate) fn decode_payload_body(kind: u8, payload: &[u8]) -> Result<Frame> {
        match kind {
            KIND_HELLO => {
                if payload.len() < 10 {
                    return Err(NetError::Protocol("hello payload truncated".into()));
                }
                let pid = read_u32(payload, 0)?;
                let default_window = read_u32(payload, 4)?;
                let name_len = read_u16(payload, 8)? as usize;
                if name_len > MAX_NAME_LEN {
                    return Err(NetError::Protocol(format!(
                        "application name of {name_len} bytes exceeds the {MAX_NAME_LEN}-byte limit"
                    )));
                }
                if payload.len() != 10 + name_len {
                    return Err(NetError::Protocol(format!(
                        "hello payload is {} bytes, expected {}",
                        payload.len(),
                        10 + name_len
                    )));
                }
                let app = std::str::from_utf8(&payload[10..]) // hb-lint: allow(index): payload.len() == 10 + name_len checked just above
                    .map_err(|_| NetError::Protocol("application name is not UTF-8".into()))?
                    .to_string();
                if !valid_app_name(&app) {
                    return Err(NetError::Protocol(format!(
                        "invalid application name {app:?} (empty, too long, or contains \
                         whitespace/control/quote characters)"
                    )));
                }
                // `/` is the federation namespace separator: `node/app`
                // names are minted exclusively by a parent collector when
                // it prefixes a child's re-exports, so a producer claiming
                // one at hello could impersonate (or double-count against)
                // a federated application.
                if app.contains('/') {
                    return Err(NetError::Protocol(format!(
                        "invalid application name {app:?}: '/' is reserved for \
                         federation origin namespacing"
                    )));
                }
                Ok(Frame::Hello(Hello {
                    app,
                    pid,
                    default_window,
                }))
            }
            KIND_BEATS | KIND_BEATS_COMPACT => {
                // Both beat encodings share the validated zero-copy walker;
                // materialization here is for the blocking FrameReader path
                // (the reactor iterates the view directly, never this Vec).
                let view = BeatsView::parse(kind, payload)?;
                Ok(Frame::Beats(BeatBatch {
                    dropped_total: view.dropped_total(),
                    beats: view.iter().collect(),
                }))
            }
            KIND_TARGET => {
                if payload.len() != 16 {
                    return Err(NetError::Protocol(format!(
                        "target payload is {} bytes, expected 16",
                        payload.len()
                    )));
                }
                let min_bps = f64::from_bits(read_u64(payload, 0)?);
                let max_bps = f64::from_bits(read_u64(payload, 8)?);
                if !min_bps.is_finite() || !max_bps.is_finite() {
                    return Err(NetError::Protocol("non-finite target rate".into()));
                }
                Ok(Frame::Target { min_bps, max_bps })
            }
            KIND_BYE => {
                if !payload.is_empty() {
                    return Err(NetError::Protocol("bye frame carries a payload".into()));
                }
                Ok(Frame::Bye)
            }
            KIND_HISTORY_REQ => {
                if payload.len() < 6 {
                    return Err(NetError::Protocol("history request truncated".into()));
                }
                let limit = read_u32(payload, 0)?;
                let (app, end) = get_name(payload, 4)?;
                if end != payload.len() {
                    return Err(NetError::Protocol("history request trailing bytes".into()));
                }
                Ok(Frame::HistoryReq { app, limit })
            }
            KIND_HISTORY => {
                if payload.len() < 15 {
                    return Err(NetError::Protocol("history payload truncated".into()));
                }
                let known = payload[0] != 0; // hb-lint: allow(index): payload.len() >= 15 checked at the top of the arm
                let count = read_u32(payload, 1)? as usize;
                let total = read_u64(payload, 5)?;
                let (app, samples_at) = get_name(payload, 13)?;
                if payload.len() != samples_at + count * SAMPLE_LEN {
                    return Err(NetError::Protocol(format!(
                        "history of {count} samples should be {} bytes, got {}",
                        samples_at + count * SAMPLE_LEN,
                        payload.len()
                    )));
                }
                let mut samples = Vec::with_capacity(count);
                for i in 0..count {
                    let at = samples_at + i * SAMPLE_LEN;
                    samples.push(decode_sample(&payload[at..at + SAMPLE_LEN])?); // hb-lint: allow(index): at + SAMPLE_LEN <= payload.len(): exact length checked above
                }
                Ok(Frame::History(HistoryChunk {
                    app,
                    known,
                    total,
                    samples,
                }))
            }
            KIND_HEALTH_REQ => {
                let (app, end) = get_name(payload, 0)?;
                if end != payload.len() {
                    return Err(NetError::Protocol("health request trailing bytes".into()));
                }
                Ok(Frame::HealthReq { app })
            }
            KIND_HEALTH => {
                const FIXED: usize = 44;
                if payload.len() < FIXED + 2 {
                    return Err(NetError::Protocol("health payload truncated".into()));
                }
                let known = payload[0] != 0; // hb-lint: allow(index): payload.len() checked at the top of the arm
                let status = HealthStatus::from_u8(payload[1]).ok_or_else(|| { // hb-lint: allow(index): payload.len() checked at the top of the arm
                    NetError::Protocol(format!("invalid health status byte {}", payload[1])) // hb-lint: allow(index): payload.len() checked at the top of the arm
                })?;
                let reasons = HealthReason::unpack(read_u16(payload, 2)?);
                let (app, end) = get_name(payload, FIXED)?;
                if end != payload.len() {
                    return Err(NetError::Protocol("health payload trailing bytes".into()));
                }
                Ok(Frame::Health(HealthFrame {
                    app,
                    known,
                    report: HealthReport {
                        status,
                        reasons,
                        window_beats: read_u32(payload, 4)?,
                        missing: read_u32(payload, 8)?,
                        duplicated: read_u32(payload, 12)?,
                        reordered: read_u32(payload, 16)?,
                        silent_ns: read_u64(payload, 20)?,
                        window_rate_bps: get_opt_f64(payload, 28)?,
                        jitter_cv: get_opt_f64(payload, 36)?,
                    },
                }))
            }
            KIND_HELLO_ACK => {
                if payload.len() != 1 {
                    return Err(NetError::Protocol(format!(
                        "hello-ack payload is {} bytes, expected 1",
                        payload.len()
                    )));
                }
                let max_version = payload[0]; // hb-lint: allow(index): payload length checked at the top of the arm
                if max_version < MIN_VERSION {
                    return Err(NetError::Protocol(format!(
                        "hello-ack advertises impossible version {max_version}"
                    )));
                }
                Ok(Frame::HelloAck { max_version })
            }
            KIND_SUBSCRIBE => {
                if payload.len() < 15 {
                    return Err(NetError::Protocol("subscribe payload truncated".into()));
                }
                let sub_id = read_u32(payload, 0)?;
                let interests = payload[4]; // hb-lint: allow(index): payload length checked at the top of the arm
                // One source of truth for the bit layout: the shared
                // Interest mask.
                let valid = heartbeats::observe::Interest::from_bits(interests)
                    .is_some_and(|mask| !mask.is_empty());
                if !valid {
                    return Err(NetError::Protocol(format!(
                        "invalid subscription interest mask {interests:#04x}"
                    )));
                }
                let min_interval_ns = read_u64(payload, 5)?;
                let (pattern, end) = get_pattern(payload, 13)?;
                // The resume cursor is a trailing varint; its absence (the
                // pre-resume encoding) means "start fresh".
                let resume_from = if end == payload.len() {
                    0
                } else {
                    let (resume_from, end) = get_varint(payload, end)?;
                    if end != payload.len() {
                        return Err(NetError::Protocol("subscribe trailing bytes".into()));
                    }
                    resume_from
                };
                Ok(Frame::Subscribe(SubscribeReq {
                    sub_id,
                    pattern,
                    interests,
                    min_interval_ns,
                    resume_from,
                }))
            }
            KIND_SUB_ACK => {
                if payload.len() != 5 {
                    return Err(NetError::Protocol(format!(
                        "sub-ack payload is {} bytes, expected 5",
                        payload.len()
                    )));
                }
                let sub_id = read_u32(payload, 0)?;
                let status = SubStatus::from_u8(payload[4]).ok_or_else(|| { // hb-lint: allow(index): payload length checked at the top of the arm
                    NetError::Protocol(format!("invalid sub-ack status byte {}", payload[4])) // hb-lint: allow(index): payload length checked at the top of the arm
                })?;
                Ok(Frame::SubAck { sub_id, status })
            }
            KIND_EVENT => Ok(Frame::Event(decode_event_payload(payload, 0)?)),
            KIND_UNSUBSCRIBE => {
                if payload.len() != 4 {
                    return Err(NetError::Protocol(format!(
                        "unsubscribe payload is {} bytes, expected 4",
                        payload.len()
                    )));
                }
                Ok(Frame::Unsubscribe {
                    sub_id: read_u32(payload, 0)?,
                })
            }
            KIND_NODE_HELLO => {
                if payload.len() < 6 {
                    return Err(NetError::Protocol("node hello truncated".into()));
                }
                let pid = read_u32(payload, 0)?;
                let name_len = read_u16(payload, 4)? as usize;
                if name_len > MAX_NODE_LEN {
                    return Err(NetError::Protocol(format!(
                        "node name of {name_len} bytes exceeds the {MAX_NODE_LEN}-byte limit"
                    )));
                }
                let name_end = 6 + name_len;
                if payload.len() < name_end {
                    return Err(NetError::Protocol(format!(
                        "node hello payload is {} bytes, expected at least {name_end}",
                        payload.len(),
                    )));
                }
                let node = std::str::from_utf8(&payload[6..name_end]) // hb-lint: allow(index): name_end <= payload.len() checked just above
                    .map_err(|_| NetError::Protocol("node name is not UTF-8".into()))?
                    .to_string();
                if !valid_node_name(&node) {
                    return Err(NetError::Protocol(format!(
                        "invalid node name {node:?} (empty, too long, or contains \
                         whitespace/control/quote/'/'/'*' characters)"
                    )));
                }
                // The path vector is a trailing count-prefixed list; its
                // absence (the pre-loop-detection encoding) means "no
                // ancestry announced".
                let mut path = Vec::new();
                if payload.len() > name_end {
                    let count = payload[name_end] as usize; // hb-lint: allow(index): name_end < payload.len(): count byte checked above
                    if count > MAX_PATH_NODES {
                        return Err(NetError::Protocol(format!(
                            "node path of {count} entries exceeds the {MAX_PATH_NODES}-entry limit"
                        )));
                    }
                    let mut at = name_end + 1;
                    for _ in 0..count {
                        let Some(&len) = payload.get(at) else {
                            return Err(NetError::Protocol("node path truncated".into()));
                        };
                        let len = len as usize;
                        if len > MAX_NODE_LEN {
                            return Err(NetError::Protocol(format!(
                                "node path entry of {len} bytes exceeds the \
                                 {MAX_NODE_LEN}-byte limit"
                            )));
                        }
                        let end = at + 1 + len;
                        if payload.len() < end {
                            return Err(NetError::Protocol("node path truncated".into()));
                        }
                        let entry = std::str::from_utf8(&payload[at + 1..end]) // hb-lint: allow(index): end <= payload.len() checked just above
                            .map_err(|_| {
                                NetError::Protocol("node path entry is not UTF-8".into())
                            })?
                            .to_string();
                        if !valid_node_name(&entry) {
                            return Err(NetError::Protocol(format!(
                                "invalid node path entry {entry:?}"
                            )));
                        }
                        path.push(entry);
                        at = end;
                    }
                    if at != payload.len() {
                        return Err(NetError::Protocol("node hello trailing bytes".into()));
                    }
                }
                Ok(Frame::NodeHello { node, pid, path })
            }
            KIND_RELAY_EVENT => {
                let (seq, at) = get_varint(payload, 0)?;
                if seq == 0 {
                    return Err(NetError::Protocol(
                        "relay event sequence 0 is reserved".into(),
                    ));
                }
                let event = decode_event_payload(payload, at)?;
                Ok(Frame::RelayEvent { seq, event })
            }
            KIND_RELAY_ACK => {
                let (last_applied, end) = get_varint(payload, 0)?;
                if end != payload.len() {
                    return Err(NetError::Protocol("relay ack trailing bytes".into()));
                }
                Ok(Frame::RelayAck { last_applied })
            }
            KIND_NODE_CHALLENGE => {
                let nonce: [u8; AUTH_LEN] = payload.try_into().map_err(|_| {
                    NetError::Protocol(format!(
                        "node challenge payload is {} bytes, expected {AUTH_LEN}",
                        payload.len()
                    ))
                })?;
                Ok(Frame::NodeChallenge { nonce })
            }
            KIND_NODE_AUTH => {
                let mac: [u8; AUTH_LEN] = payload.try_into().map_err(|_| {
                    NetError::Protocol(format!(
                        "node auth payload is {} bytes, expected {AUTH_LEN}",
                        payload.len()
                    ))
                })?;
                Ok(Frame::NodeAuth { mac })
            }
            // decode_header validates the kind, but decode_payload is a
            // public entry point — treat an unknown kind as the protocol
            // error it is instead of trusting the caller.
            _ => Err(NetError::Protocol(format!("unknown frame kind {kind}"))),
        }
    }

    /// Decodes one frame from the front of `bytes`, returning the frame and
    /// the number of bytes consumed.
    ///
    /// See [`BatchEncoder`] for the allocation-free producer-side encoding
    /// of beat batches.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize)> {
        let (kind, payload_len, crc) = Self::decode_header(bytes)?;
        let total = HEADER_LEN + payload_len;
        if bytes.len() < total {
            return Err(NetError::Protocol(format!(
                "frame truncated: have {} of {total} bytes",
                bytes.len()
            )));
        }
        let frame = Self::decode_payload(kind, &bytes[HEADER_LEN..total], crc)?; // hb-lint: allow(index): bytes.len() >= total checked just above
        Ok((frame, total))
    }
}

/// Decodes a [`Frame::Event`] payload body beginning at offset `at` and
/// extending to the end of `payload`. Shared by the [`KIND_EVENT`] decoder
/// (`at == 0`) and [`Frame::RelayEvent`], which prefixes the same body
/// with a link sequence varint.
fn decode_event_payload(payload: &[u8], at: usize) -> Result<EventFrame> {
    let (sub_id, at) = get_varint(payload, at)?;
    if sub_id > u32::MAX as u64 {
        return Err(NetError::Protocol(format!(
            "event subscription id {sub_id} exceeds u32"
        )));
    }
    let Some(&event_kind) = payload.get(at) else {
        return Err(NetError::Protocol("event kind truncated".into()));
    };
    let (app, at) = get_name(payload, at + 1)?;
    let (sent_at_ns, at) = get_varint(payload, at)?;
    let (cursor, at) = get_varint(payload, at)?;
    let payload_body = match event_kind {
        EVENT_SNAPSHOT => {
            let (total_beats, at) = get_varint(payload, at)?;
            let (producer_dropped, at) = get_varint(payload, at)?;
            if payload.len() != at + 25 {
                return Err(NetError::Protocol("snapshot event length mismatch".into()));
            }
            let rate_bps = get_opt_f64(payload, at)?;
            let target = match (get_opt_f64(payload, at + 8)?, get_opt_f64(payload, at + 16)?) {
                (Some(min), Some(max)) => Some((min, max)),
                (None, None) => None,
                _ => return Err(NetError::Protocol("half-set snapshot event target".into())),
            };
            let alive = match payload[at + 24] { // hb-lint: allow(index): payload.len() == at + 25 checked above
                0 => false,
                1 => true,
                other => {
                    return Err(NetError::Protocol(format!(
                        "invalid snapshot event alive byte {other}"
                    )))
                }
            };
            EventPayload::Snapshot {
                total_beats,
                producer_dropped,
                rate_bps,
                target,
                alive,
            }
        }
        EVENT_HEALTH => {
            if payload.len() != at + 8 {
                return Err(NetError::Protocol("health event length mismatch".into()));
            }
            let from = HealthStatus::from_u8(payload[at]).ok_or_else(|| { // hb-lint: allow(index): payload.len() == at + 8 checked above
                NetError::Protocol(format!("invalid health status byte {}", payload[at])) // hb-lint: allow(index): payload.len() == at + 8 checked above
            })?;
            let to = HealthStatus::from_u8(payload[at + 1]).ok_or_else(|| { // hb-lint: allow(index): payload.len() == at + 8 checked above
                NetError::Protocol(format!("invalid health status byte {}", payload[at + 1])) // hb-lint: allow(index): payload.len() == at + 8 checked above
            })?;
            EventPayload::HealthTransition {
                from,
                to,
                reasons: HealthReason::unpack(read_u16(payload, at + 2)?),
                window_beats: read_u32(payload, at + 4)?,
            }
        }
        EVENT_BEATS => {
            let (dropped_total, mut at) = get_varint(payload, at)?;
            let mut beats = Vec::new();
            let mut state = DeltaState::default();
            while at < payload.len() {
                let (beat, next) = decode_compact_beat(payload, at, &mut state)?;
                beats.push(beat);
                at = next;
            }
            EventPayload::Beats {
                dropped_total,
                beats,
            }
        }
        other => return Err(NetError::Protocol(format!("unknown event kind {other}"))),
    };
    Ok(EventFrame {
        sub_id: sub_id as u32,
        sent_at_ns,
        cursor,
        app,
        payload: payload_body,
    })
}

/// Rewrites the delivery-cursor varint inside an already-encoded
/// [`Frame::Event`] that occupies `buf[frame_at..]`, re-patching the
/// header's payload length and CRC. Subscription events are encoded once
/// and fanned out as shared bytes with `cursor == 0`; the federation
/// uplink copies those bytes into its outbox and stamps each
/// subscription's real monotone cursor here — a splice on the freshly
/// appended tail instead of a full re-encode.
pub fn splice_event_cursor(buf: &mut Vec<u8>, frame_at: usize, cursor: u64) -> Result<()> {
    let (kind, payload_len, _crc) = Frame::decode_header(&buf[frame_at..])?; // hb-lint: allow(index): decode_header re-validates the slice it is given
    if kind != KIND_EVENT {
        return Err(NetError::Protocol("cursor splice on a non-event frame".into()));
    }
    let payload_at = frame_at + HEADER_LEN;
    let payload_end = payload_at + payload_len;
    if buf.len() < payload_end {
        return Err(NetError::Protocol("cursor splice on a truncated frame".into()));
    }
    // Walk to the cursor field: sub_id varint, event-kind byte, name,
    // sent_at varint — the same prefix decode_event_payload consumes.
    let payload = &buf[payload_at..payload_end]; // hb-lint: allow(index): payload_end <= buf.len() checked just above
    let (_sub_id, at) = get_varint(payload, 0)?;
    let at = at + 1; // event kind
    if payload.len() < at + 2 {
        return Err(NetError::Protocol("cursor splice: name truncated".into()));
    }
    let at = at + 2 + read_u16(payload, at)? as usize;
    let (_sent_at, at) = get_varint(payload, at)?;
    let (_old, after) = get_varint(payload, at)?;
    let mut scratch = Vec::with_capacity(10);
    put_varint(&mut scratch, cursor);
    buf.splice(payload_at + at..payload_at + after, scratch.iter().copied());
    let new_len = payload_len - (after - at) + scratch.len();
    let crc = crc32(&buf[payload_at..payload_at + new_len]); // hb-lint: allow(index): splice_at stays inside the validated payload
    buf[frame_at + 6..frame_at + 10].copy_from_slice(&(new_len as u32).to_le_bytes()); // hb-lint: allow(index): patches the header at frame_at validated by decode_header
    buf[frame_at + 10..frame_at + 14].copy_from_slice(&crc.to_le_bytes()); // hb-lint: allow(index): patches the header at frame_at validated by decode_header
    Ok(())
}

/// Streaming encoder for one [`Frame::Beats`] batch, in either wire
/// encoding: [`begin`](Self::begin) starts a fixed-width version-2 frame,
/// [`begin_compact`](Self::begin_compact) a delta/varint version-3 frame
/// (used after a [`Frame::HelloAck`] negotiated version ≥ 3).
///
/// The flusher in [`TcpBackend`](crate::TcpBackend) drains its queue once
/// per flush; materializing a [`BeatBatch`] (a `Vec<WireBeat>`) just to
/// encode it would copy every record twice. `BatchEncoder` instead appends
/// beats straight into the frame's wire encoding and patches the header
/// (count, payload length, CRC) when the batch is sealed — one frame per
/// flush, zero intermediate structures. The internal buffer is reused across
/// batches, so steady-state flushing does not allocate.
///
/// ```
/// use hb_net::wire::{BatchEncoder, Frame, WireBeat};
/// use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
///
/// let mut encoder = BatchEncoder::new();
/// encoder.begin(3); // 3 beats shed so far
/// encoder.push(&WireBeat {
///     record: HeartbeatRecord::new(0, 1_000, Tag::NONE, BeatThreadId(0)),
///     scope: BeatScope::Global,
/// });
/// let bytes = encoder.finish();
/// let (frame, used) = Frame::decode(bytes).unwrap();
/// assert_eq!(used, bytes.len());
/// assert!(matches!(frame, Frame::Beats(batch) if batch.beats.len() == 1));
/// ```
#[derive(Debug, Default)]
pub struct BatchEncoder {
    buf: Vec<u8>,
    count: u32,
    open: bool,
    compact: bool,
    state: DeltaState,
}

impl BatchEncoder {
    /// Creates an encoder with an empty reusable buffer.
    pub fn new() -> Self {
        BatchEncoder::default()
    }

    /// Starts a new fixed-width (version-2) batch carrying the producer's
    /// cumulative drop counter. Any previous unfinished batch is discarded.
    pub fn begin(&mut self, dropped_total: u64) {
        self.begin_frame(KIND_BEATS, false);
        put_u64(&mut self.buf, dropped_total);
        put_u32(&mut self.buf, 0); // count, patched by finish()
    }

    /// Starts a new compact (version-3, delta/varint) batch. Only use after
    /// the peer acknowledged protocol version ≥ 3 via [`Frame::HelloAck`];
    /// older collectors reject the frame kind.
    pub fn begin_compact(&mut self, dropped_total: u64) {
        self.begin_frame(KIND_BEATS_COMPACT, true);
        put_varint(&mut self.buf, dropped_total);
    }

    fn begin_frame(&mut self, kind: u8, compact: bool) {
        self.buf.clear();
        self.count = 0;
        self.open = true;
        self.compact = compact;
        self.state = DeltaState::default();
        put_u32(&mut self.buf, MAGIC);
        // Both beat kinds are in the version table; see encode_into.
        self.buf.push(wire_version(kind).unwrap_or(VERSION));
        self.buf.push(kind);
        put_u32(&mut self.buf, 0); // payload_len, patched by finish()
        put_u32(&mut self.buf, 0); // crc, patched by finish()
    }

    /// Appends one beat. Returns `false` (leaving the batch unchanged) once
    /// the frame is full ([`MAX_BATCH_BEATS`] records for the fixed-width
    /// encoding, the [`MAX_PAYLOAD`] byte budget for the compact one); seal
    /// it with [`finish`](Self::finish) and `begin` a new one.
    pub fn push(&mut self, beat: &WireBeat) -> bool {
        debug_assert!(self.open, "push called before begin");
        if self.compact {
            if self.buf.len() + MAX_COMPACT_BEAT_LEN > HEADER_LEN + MAX_PAYLOAD {
                return false;
            }
            encode_compact_beat(&mut self.buf, &mut self.state, beat);
        } else {
            if self.count as usize >= MAX_BATCH_BEATS {
                return false;
            }
            encode_beat(&mut self.buf, beat);
        }
        self.count += 1;
        true
    }

    /// Beats appended to the current batch so far.
    pub fn beats(&self) -> usize {
        self.count as usize
    }

    /// True if no beats have been appended since `begin`.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True if the current batch uses the compact (version-3) encoding.
    pub fn is_compact(&self) -> bool {
        self.compact
    }

    /// Seals the batch — patches the record count (fixed-width encoding
    /// only; the compact encoding's count is implicit in the payload
    /// length), payload length and CRC — and returns the complete encoded
    /// frame.
    pub fn finish(&mut self) -> &[u8] {
        debug_assert!(self.open, "finish called before begin");
        self.open = false;
        if !self.compact {
            let count_at = HEADER_LEN + 8;
            self.buf[count_at..count_at + 4].copy_from_slice(&self.count.to_le_bytes()); // hb-lint: allow(index): finish() patches the header begin() wrote into self.buf
        }
        let payload_len = (self.buf.len() - HEADER_LEN) as u32;
        let crc = crc32(&self.buf[HEADER_LEN..]); // hb-lint: allow(index): finish() patches the header begin() wrote into self.buf
        self.buf[6..10].copy_from_slice(&payload_len.to_le_bytes()); // hb-lint: allow(index): finish() patches the header begin() wrote into self.buf
        self.buf[10..14].copy_from_slice(&crc.to_le_bytes()); // hb-lint: allow(index): finish() patches the header begin() wrote into self.buf
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(seq: u64, scope: BeatScope) -> WireBeat {
        WireBeat {
            record: HeartbeatRecord::new(
                seq,
                seq.wrapping_mul(1_000).wrapping_add(7),
                Tag::new(seq.wrapping_mul(3)),
                BeatThreadId(2),
            ),
            scope,
        }
    }

    #[test]
    fn hello_roundtrip() {
        let frame = Frame::Hello(Hello {
            app: "x264".into(),
            pid: 1234,
            default_window: 20,
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn beats_roundtrip_preserves_records_and_scopes() {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 99,
            beats: vec![
                beat(0, BeatScope::Global),
                beat(1, BeatScope::Local),
                beat(u64::MAX / 2, BeatScope::Global),
            ],
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let frame = Frame::Beats(BeatBatch::default());
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn target_and_bye_roundtrip() {
        for frame in [
            Frame::Target {
                min_bps: 29.97,
                max_bps: 35.5,
            },
            Frame::Bye,
        ] {
            let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut buf = Vec::new();
        Frame::Bye.encode_into(&mut buf);
        Frame::Target {
            min_bps: 1.0,
            max_bps: 2.0,
        }
        .encode_into(&mut buf);
        let (first, used) = Frame::decode(&buf).unwrap();
        assert_eq!(first, Frame::Bye);
        let (second, used2) = Frame::decode(&buf[used..]).unwrap();
        assert!(matches!(second, Frame::Target { .. }));
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes[4] = VERSION + 1;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes[5] = 200;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("kind")
        ));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let frame = Frame::Hello(Hello {
            app: "bodytrack".into(),
            pid: 1,
            default_window: 10,
        });
        let mut bytes = frame.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("CRC")
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_before_reading() {
        let mut bytes = Frame::Bye.encode();
        bytes[6..10].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("limit")
        ));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let bytes = Frame::Hello(Hello {
            app: "ferret".into(),
            pid: 2,
            default_window: 30,
        })
        .encode();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            assert!(Frame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn invalid_scope_byte_is_rejected() {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 0,
            beats: vec![beat(5, BeatScope::Global)],
        });
        let mut bytes = frame.encode();
        // The scope is the final byte of the only record.
        let last = bytes.len() - 1;
        bytes[last] = 7;
        // Recompute the CRC so scope validation (not the checksum) trips.
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("scope")
        ));
    }

    #[test]
    fn count_length_mismatch_is_rejected() {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 0,
            beats: vec![beat(1, BeatScope::Global)],
        });
        let mut bytes = frame.encode();
        // Claim two records while carrying one.
        bytes[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&2u32.to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn non_finite_target_is_rejected() {
        let mut bytes = Frame::Target {
            min_bps: 1.0,
            max_bps: 2.0,
        }
        .encode();
        bytes[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn whitespace_and_quote_names_are_rejected_on_decode() {
        for bad in ["two words", "line\nbreak", "tab\there", "quo\"te", "back\\slash"] {
            let bytes = Frame::Hello(Hello {
                app: bad.into(),
                pid: 1,
                default_window: 20,
            })
            .encode();
            assert!(
                matches!(Frame::decode(&bytes), Err(NetError::Protocol(_))),
                "name {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn sanitize_app_name_produces_valid_names() {
        assert_eq!(sanitize_app_name("my app"), "my-app");
        assert_eq!(sanitize_app_name("ok-name"), "ok-name");
        assert_eq!(sanitize_app_name(""), "unnamed");
        let long = "x".repeat(MAX_NAME_LEN * 2);
        assert_eq!(sanitize_app_name(&long).len(), MAX_NAME_LEN);
        for weird in ["a\nb", "c\"d", "e\\f", "  ", "\u{7}bell"] {
            assert!(
                valid_app_name(&sanitize_app_name(weird)),
                "sanitized {weird:?} must be valid"
            );
        }
    }

    #[test]
    fn batch_encoder_matches_frame_encoding() {
        let beats: Vec<WireBeat> = (0..100)
            .map(|i| beat(i, if i % 3 == 0 { BeatScope::Local } else { BeatScope::Global }))
            .collect();
        let via_frame = Frame::Beats(BeatBatch {
            dropped_total: 7,
            beats: beats.clone(),
        })
        .encode();
        let mut encoder = BatchEncoder::new();
        encoder.begin(7);
        for b in &beats {
            assert!(encoder.push(b));
        }
        assert_eq!(encoder.beats(), 100);
        assert_eq!(encoder.finish(), via_frame.as_slice(), "byte-identical encodings");
    }

    #[test]
    fn batch_encoder_is_reusable_across_batches() {
        let mut encoder = BatchEncoder::new();
        encoder.begin(0);
        encoder.push(&beat(1, BeatScope::Global));
        let first = encoder.finish().to_vec();

        encoder.begin(5);
        encoder.push(&beat(2, BeatScope::Global));
        encoder.push(&beat(3, BeatScope::Local));
        let (frame, _) = Frame::decode(encoder.finish()).unwrap();
        match frame {
            Frame::Beats(batch) => {
                assert_eq!(batch.dropped_total, 5);
                assert_eq!(batch.beats.len(), 2);
                assert_eq!(batch.beats[1].scope, BeatScope::Local);
            }
            other => panic!("expected beats frame, got {other:?}"),
        }
        // The earlier batch was independent and valid too.
        assert!(matches!(Frame::decode(&first), Ok((Frame::Beats(_), _))));
    }

    #[test]
    fn batch_encoder_empty_batch_is_valid() {
        let mut encoder = BatchEncoder::new();
        encoder.begin(42);
        assert!(encoder.is_empty());
        let (frame, _) = Frame::decode(encoder.finish()).unwrap();
        assert_eq!(
            frame,
            Frame::Beats(BeatBatch {
                dropped_total: 42,
                beats: vec![],
            })
        );
    }

    #[test]
    fn batch_encoder_refuses_overflow() {
        let mut encoder = BatchEncoder::new();
        encoder.begin(0);
        let sample = beat(0, BeatScope::Global);
        for _ in 0..MAX_BATCH_BEATS {
            assert!(encoder.push(&sample));
        }
        assert!(!encoder.push(&sample), "frame at capacity rejects more beats");
        assert_eq!(encoder.beats(), MAX_BATCH_BEATS);
        // Still decodable at the payload ceiling.
        assert!(Frame::decode(encoder.finish()).is_ok());
    }

    #[test]
    fn history_and_health_frames_roundtrip() {
        use crate::health::{HealthReason, HealthReport, HealthStatus, HistorySample};
        let frames = [
            Frame::HistoryReq {
                app: "x264".into(),
                limit: 128,
            },
            Frame::History(HistoryChunk {
                app: "x264".into(),
                known: true,
                total: 5_000,
                samples: vec![
                    HistorySample {
                        seq: 1,
                        timestamp_ns: 1_000,
                        tag: 7,
                        interval_ns: 0,
                        rate_bps: None,
                    },
                    HistorySample {
                        seq: 2,
                        timestamp_ns: 2_000,
                        tag: 8,
                        interval_ns: 1_000,
                        rate_bps: Some(29.97),
                    },
                ],
            }),
            Frame::History(HistoryChunk {
                app: "ghost".into(),
                known: false,
                total: 0,
                samples: vec![],
            }),
            Frame::HealthReq { app: "dedup".into() },
            Frame::Health(HealthFrame {
                app: "dedup".into(),
                known: true,
                report: HealthReport {
                    status: HealthStatus::Degraded,
                    reasons: vec![HealthReason::RateBelowTarget, HealthReason::JitterSpike],
                    window_beats: 42,
                    window_rate_bps: Some(12.5),
                    jitter_cv: Some(1.75),
                    missing: 3,
                    duplicated: 0,
                    reordered: 1,
                    silent_ns: 250_000_000,
                },
            }),
            Frame::Health(HealthFrame {
                app: "ghost".into(),
                known: false,
                report: HealthReport::no_signal(),
            }),
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(bytes[4], 2, "health query frames are version 2");
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn v1_frames_still_encode_as_version_1() {
        // A version-1-only peer must keep accepting producer frames.
        for frame in [
            Frame::Hello(Hello {
                app: "legacy".into(),
                pid: 1,
                default_window: 20,
            }),
            Frame::Beats(BeatBatch::default()),
            Frame::Target {
                min_bps: 1.0,
                max_bps: 2.0,
            },
            Frame::Bye,
        ] {
            assert_eq!(frame.encode()[4], 1, "{frame:?}");
        }
    }

    #[test]
    fn v2_kind_in_v1_header_is_rejected() {
        let mut bytes = Frame::HealthReq { app: "app".into() }.encode();
        bytes[4] = 1; // claim version 1 for a version-2 kind
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("requires protocol version 2")
        ));
    }

    #[test]
    fn v2_header_accepts_v1_kinds() {
        // Version upgrades are backward compatible: a v2 header on an old
        // kind still decodes.
        let mut bytes = Frame::Bye.encode();
        bytes[4] = 2;
        assert_eq!(Frame::decode(&bytes).unwrap().0, Frame::Bye);
    }

    #[test]
    fn infinite_rate_in_sample_is_rejected() {
        let frame = Frame::History(HistoryChunk {
            app: "x".into(),
            known: true,
            total: 1,
            samples: vec![HistorySample {
                seq: 0,
                timestamp_ns: 0,
                tag: 0,
                interval_ns: 0,
                rate_bps: Some(1.0),
            }],
        });
        let mut bytes = frame.encode();
        // The rate is the final 8 bytes of the only sample.
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("non-finite")
        ));
    }

    #[test]
    fn invalid_health_status_byte_is_rejected() {
        let frame = Frame::Health(HealthFrame {
            app: "x".into(),
            known: true,
            report: HealthReport::no_signal(),
        });
        let mut bytes = frame.encode();
        bytes[HEADER_LEN + 1] = 200; // status byte
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("status")
        ));
    }

    #[test]
    fn history_count_mismatch_is_rejected() {
        let frame = Frame::History(HistoryChunk {
            app: "x".into(),
            known: true,
            total: 1,
            samples: vec![],
        });
        let mut bytes = frame.encode();
        // Claim one sample while carrying none.
        bytes[HEADER_LEN + 1..HEADER_LEN + 5].copy_from_slice(&1u32.to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn max_history_samples_fit_one_frame() {
        let chunk = HistoryChunk {
            app: "n".repeat(MAX_NAME_LEN),
            known: true,
            total: u64::MAX,
            samples: vec![
                HistorySample {
                    seq: 0,
                    timestamp_ns: 0,
                    tag: 0,
                    interval_ns: 0,
                    rate_bps: None,
                };
                MAX_HISTORY_SAMPLES
            ],
        };
        let bytes = Frame::History(chunk).encode();
        assert!(bytes.len() - HEADER_LEN <= MAX_PAYLOAD);
        assert!(Frame::decode(&bytes).is_ok());
    }

    /// Pins the worked hex examples in `docs/WIRE.md` byte for byte, so the
    /// documentation cannot rot silently.
    #[test]
    fn worked_examples_match_wire_md() {
        fn hex(bytes: &[u8]) -> String {
            bytes
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
        assert_eq!(
            hex(&Frame::Bye.encode()),
            "48 42 57 54 01 04 00 00 00 00 00 00 00 00"
        );
        assert_eq!(
            hex(
                &Frame::Hello(Hello {
                    app: "cam".into(),
                    pid: 7,
                    default_window: 20,
                })
                .encode()
            ),
            "48 42 57 54 01 01 0d 00 00 00 0d 1b ff c1 \
             07 00 00 00 14 00 00 00 03 00 63 61 6d"
        );
        assert_eq!(
            hex(&Frame::HealthReq { app: "cam".into() }.encode()),
            "48 42 57 54 02 07 05 00 00 00 b7 bf f6 84 03 00 63 61 6d"
        );
        assert_eq!(
            hex(
                &Frame::HistoryReq {
                    app: "cam".into(),
                    limit: 2,
                }
                .encode()
            ),
            "48 42 57 54 02 05 09 00 00 00 82 74 2b 8a \
             02 00 00 00 03 00 63 61 6d"
        );
    }

    #[test]
    fn encode_into_reuses_buffer_without_clearing() {
        let mut buf = vec![0xAB];
        Frame::Bye.encode_into(&mut buf);
        assert_eq!(buf[0], 0xAB);
        let (frame, used) = Frame::decode(&buf[1..]).unwrap();
        assert_eq!(frame, Frame::Bye);
        assert_eq!(used, buf.len() - 1);
    }

    // ------------------------------------------------------------------
    // Version-3 compact framing
    // ------------------------------------------------------------------

    /// Encodes `batch` with the compact (version-3) encoder.
    fn encode_compact(batch: &BeatBatch) -> Vec<u8> {
        let mut encoder = BatchEncoder::new();
        encoder.begin_compact(batch.dropped_total);
        for beat in &batch.beats {
            assert!(encoder.push(beat), "batch must fit one compact frame");
        }
        encoder.finish().to_vec()
    }

    /// Wraps a raw compact-beats payload in a valid frame (header + CRC),
    /// for malformed-payload tests that must get past the checksum.
    fn compact_frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAGIC);
        bytes.push(3);
        bytes.push(KIND_BEATS_COMPACT);
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crate::crc::crc32(payload));
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let (decoded, used) = get_varint(&buf, 0).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
        // Truncated and over-long varints are rejected.
        assert!(get_varint(&[0x80], 0).is_err());
        assert!(get_varint(&[0x80; 11], 0).is_err());
        // A 10th byte carrying more than the top bit overflows u64.
        let mut overflow = vec![0xFF; 9];
        overflow.push(0x02);
        assert!(get_varint(&overflow, 0).is_err());
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1_000_000, -1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn hello_ack_roundtrip() {
        let frame = Frame::HelloAck { max_version: VERSION };
        let bytes = frame.encode();
        assert_eq!(bytes[4], 3, "hello-ack is a version-3 frame");
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
        // A zero version is impossible.
        let mut bad = Frame::HelloAck { max_version: 0 }.encode();
        // encode() wrote version 0 into the payload; fix nothing — the
        // decoder must reject it (the CRC is already consistent).
        assert!(matches!(
            Frame::decode(&bad),
            Err(NetError::Protocol(msg)) if msg.contains("impossible version")
        ));
        // Oversized payloads are rejected too.
        bad = Frame::HelloAck { max_version: 3 }.encode();
        bad[6..10].copy_from_slice(&2u32.to_le_bytes());
        bad.push(0);
        assert!(Frame::decode(&bad).is_err());
    }

    #[test]
    fn compact_batch_roundtrips_exactly() {
        let batch = BeatBatch {
            dropped_total: 12345,
            beats: vec![
                beat(0, BeatScope::Global),
                beat(1, BeatScope::Local),
                beat(2, BeatScope::Global),
                WireBeat {
                    record: HeartbeatRecord::new(100, 50, Tag::NONE, BeatThreadId(9)),
                    scope: BeatScope::Global,
                },
            ],
        };
        let bytes = encode_compact(&batch);
        assert_eq!(bytes[4], 3, "compact beats are version-3 frames");
        assert_eq!(bytes[5], KIND_BEATS_COMPACT);
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, Frame::Beats(batch));
    }

    #[test]
    fn compact_empty_batch_roundtrips() {
        let batch = BeatBatch {
            dropped_total: 7,
            beats: vec![],
        };
        let bytes = encode_compact(&batch);
        let (decoded, _) = Frame::decode(&bytes).unwrap();
        assert_eq!(decoded, Frame::Beats(batch));
    }

    #[test]
    fn compact_survives_backwards_clocks_and_max_jumps() {
        // Non-monotone timestamps, maximal seq/tag jumps, huge thread ids:
        // every u64 pair round-trips through the wrapping delta arithmetic.
        let batch = BeatBatch {
            dropped_total: u64::MAX,
            beats: vec![
                WireBeat {
                    record: HeartbeatRecord::new(
                        u64::MAX,
                        u64::MAX,
                        Tag::new(u64::MAX),
                        BeatThreadId(u32::MAX),
                    ),
                    scope: BeatScope::Local,
                },
                WireBeat {
                    record: HeartbeatRecord::new(0, 0, Tag::NONE, BeatThreadId(0)),
                    scope: BeatScope::Global,
                },
                WireBeat {
                    record: HeartbeatRecord::new(5, 2, Tag::new(1), BeatThreadId(1)),
                    scope: BeatScope::Global,
                },
                WireBeat {
                    // Clock went backwards between beats.
                    record: HeartbeatRecord::new(6, 1, Tag::NONE, BeatThreadId(1)),
                    scope: BeatScope::Global,
                },
            ],
        };
        let bytes = encode_compact(&batch);
        let (decoded, _) = Frame::decode(&bytes).unwrap();
        assert_eq!(decoded, Frame::Beats(batch));
    }

    /// The acceptance pin: a realistic 64-beat batch — sequence deltas of
    /// 1, ~1 ms timestamp jitter, untagged, single-threaded — must encode
    /// in v3 to at most 40% of its v2 byte size. (In practice it lands
    /// near 20%.)
    #[test]
    fn compact_batch_is_at_most_40_percent_of_v2() {
        let mut ts = 1_700_000_000_000_000_000u64; // a realistic epoch-ns clock
        let mut lcg = 0x2545_F491_4F6C_DD1Du64;
        let beats: Vec<WireBeat> = (0..64u64)
            .map(|i| {
                // 1 ms nominal period, ±128 µs deterministic jitter.
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ts += 1_000_000 - 128_000 + (lcg >> 40) % 256_000;
                WireBeat {
                    record: HeartbeatRecord::new(i, ts, Tag::NONE, BeatThreadId(0)),
                    scope: BeatScope::Global,
                }
            })
            .collect();
        let batch = BeatBatch {
            dropped_total: 0,
            beats,
        };
        let v2 = Frame::Beats(batch.clone()).encode();
        let v3 = encode_compact(&batch);
        assert_eq!(v2.len(), HEADER_LEN + BATCH_PREFIX_LEN + 64 * BEAT_LEN);
        assert!(
            v3.len() * 100 <= v2.len() * 40,
            "v3 batch is {} bytes, v2 is {} — compact must be <= 40%",
            v3.len(),
            v2.len()
        );
        // And it still decodes to the identical batch.
        let (decoded, _) = Frame::decode(&v3).unwrap();
        assert_eq!(decoded, Frame::Beats(batch));
    }

    #[test]
    fn beats_view_matches_materialized_decode_for_both_kinds() {
        let batch = BeatBatch {
            dropped_total: 3,
            beats: (0..50)
                .map(|i| beat(i, if i % 2 == 0 { BeatScope::Global } else { BeatScope::Local }))
                .collect(),
        };
        for bytes in [Frame::Beats(batch.clone()).encode(), encode_compact(&batch)] {
            let (kind, payload_len, _) = Frame::decode_header(&bytes).unwrap();
            let view =
                BeatsView::parse(kind, &bytes[HEADER_LEN..HEADER_LEN + payload_len]).unwrap();
            assert_eq!(view.dropped_total(), 3);
            assert_eq!(view.len(), 50);
            let iter = view.iter();
            assert_eq!(iter.len(), 50, "ExactSizeIterator agrees with the view");
            let collected: Vec<WireBeat> = iter.collect();
            assert_eq!(collected, batch.beats, "view iteration == materialized decode");
        }
    }

    #[test]
    fn beats_view_rejects_non_beats_kinds() {
        assert!(BeatsView::parse(KIND_HELLO, &[]).is_err());
        assert!(BeatsView::parse(KIND_HEALTH, &[]).is_err());
    }

    #[test]
    fn malformed_compact_payloads_are_rejected() {
        // Unknown flag bit set on the only record.
        let bad_flags = compact_frame(&[0x00, 0x04, 0x01, 0x00, 0x00]);
        assert!(matches!(
            Frame::decode(&bad_flags),
            Err(NetError::Protocol(msg)) if msg.contains("flags")
        ));
        // Record cut off mid-varint (timestamp continuation never ends).
        let truncated = compact_frame(&[0x00, 0x00, 0x01, 0x80]);
        assert!(matches!(
            Frame::decode(&truncated),
            Err(NetError::Protocol(msg)) if msg.contains("truncated")
        ));
        // Explicitly encoded NONE tag (non-canonical: must be elided).
        let none_tag = compact_frame(&[0x00, 0x02, 0x01, 0x02, 0x00, 0x00]);
        assert!(matches!(
            Frame::decode(&none_tag),
            Err(NetError::Protocol(msg)) if msg.contains("NONE")
        ));
        // Thread id beyond u32 (varint of 2^32).
        let big_thread = compact_frame(&[0x00, 0x00, 0x01, 0x02, 0x80, 0x80, 0x80, 0x80, 0x10]);
        assert!(matches!(
            Frame::decode(&big_thread),
            Err(NetError::Protocol(msg)) if msg.contains("thread")
        ));
        // Empty payload: even the dropped_total prefix is missing.
        let empty = compact_frame(&[]);
        assert!(Frame::decode(&empty).is_err());
    }

    #[test]
    fn compact_encoder_refuses_overflow_and_stays_decodable() {
        // Worst-case records (huge alternating deltas, max tag and thread)
        // approach MAX_COMPACT_BEAT_LEN each; the encoder must stop before
        // overflowing MAX_PAYLOAD and the sealed frame must still decode.
        let mut encoder = BatchEncoder::new();
        encoder.begin_compact(u64::MAX);
        let mut i = 0u64;
        loop {
            let worst = WireBeat {
                record: HeartbeatRecord::new(
                    if i.is_multiple_of(2) { u64::MAX } else { 0 },
                    if i.is_multiple_of(2) { 0 } else { u64::MAX },
                    Tag::new(u64::MAX),
                    BeatThreadId(u32::MAX),
                ),
                scope: BeatScope::Local,
            };
            if !encoder.push(&worst) {
                break;
            }
            i += 1;
        }
        assert!(encoder.beats() * MAX_COMPACT_BEAT_LEN >= MAX_PAYLOAD - 2 * MAX_COMPACT_BEAT_LEN);
        let bytes = encoder.finish();
        assert!(bytes.len() - HEADER_LEN <= MAX_PAYLOAD);
        let (frame, _) = Frame::decode(bytes).unwrap();
        assert!(matches!(frame, Frame::Beats(b) if b.beats.len() == i as usize));
    }

    #[test]
    fn v3_kind_in_v2_header_is_rejected() {
        let batch = BeatBatch::default();
        let mut bytes = encode_compact(&batch);
        bytes[4] = 2; // claim version 2 for a version-3 kind
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("requires protocol version 3")
        ));
    }

    // ------------------------------------------------------------------
    // Subscription frames (version 3, kinds 11–14)
    // ------------------------------------------------------------------

    #[test]
    fn glob_match_semantics() {
        for (pattern, name, expected) in [
            ("*", "anything", true),
            ("*", "", true),
            ("cam", "cam", true),
            ("cam", "camera", false),
            ("cam*", "camera", true),
            ("cam*", "cam", true),
            ("cam*", "dam", false),
            ("*cam", "webcam", true),
            ("*cam*", "a-camera", true),
            ("a*b*c", "a-bee-c", true),
            ("a*b*c", "a-c", false),
            ("**", "x", true),
            ("shard-*-replica", "shard-7-replica", true),
            ("shard-*-replica", "shard-7-primary", false),
        ] {
            assert_eq!(
                glob_match(pattern, name),
                expected,
                "glob_match({pattern:?}, {name:?})"
            );
        }
    }

    #[test]
    fn subscribe_pattern_validation() {
        assert!(valid_subscribe_pattern("*"));
        assert!(valid_subscribe_pattern("cam*"));
        assert!(valid_subscribe_pattern("exact-name"));
        assert!(!valid_subscribe_pattern(""));
        assert!(!valid_subscribe_pattern("two words"));
        assert!(!valid_subscribe_pattern("quo\"te"));
        assert!(!valid_subscribe_pattern(&"x".repeat(MAX_NAME_LEN + 1)));
    }

    #[test]
    fn subscription_frames_roundtrip() {
        let frames = [
            Frame::Subscribe(SubscribeReq {
                sub_id: 7,
                pattern: "cam*".into(),
                interests: 0b111,
                min_interval_ns: 250_000_000,
                resume_from: 0,
            }),
            Frame::Subscribe(SubscribeReq {
                sub_id: 8,
                pattern: "*".into(),
                interests: 0b100,
                min_interval_ns: 0,
                resume_from: u64::MAX / 5,
            }),
            Frame::SubAck {
                sub_id: 7,
                status: SubStatus::Ok,
            },
            Frame::SubAck {
                sub_id: 9,
                status: SubStatus::TooManySubscriptions,
            },
            Frame::Unsubscribe { sub_id: 7 },
            Frame::Event(EventFrame {
                sub_id: 7,
                sent_at_ns: 1_722_000_000_123_456_789,
                cursor: 42,
                app: "cam3".into(),
                payload: EventPayload::Snapshot {
                    total_beats: 12_345,
                    producer_dropped: 9,
                    rate_bps: Some(29.97),
                    target: Some((30.0, 35.0)),
                    alive: true,
                },
            }),
            Frame::Event(EventFrame {
                sub_id: 7,
                sent_at_ns: 0,
                cursor: 0,
                app: "cam3".into(),
                payload: EventPayload::Snapshot {
                    total_beats: 1,
                    producer_dropped: 0,
                    rate_bps: None,
                    target: None,
                    alive: false,
                },
            }),
            Frame::Event(EventFrame {
                sub_id: u32::MAX,
                sent_at_ns: u64::MAX,
                cursor: u64::MAX,
                app: "cam3".into(),
                payload: EventPayload::HealthTransition {
                    from: crate::health::HealthStatus::Healthy,
                    to: crate::health::HealthStatus::Stalled,
                    reasons: vec![crate::health::HealthReason::Silent],
                    window_beats: 42,
                },
            }),
            Frame::Event(EventFrame {
                sub_id: 0,
                sent_at_ns: 1,
                cursor: 7,
                app: "cam3".into(),
                payload: EventPayload::Beats {
                    dropped_total: 3,
                    beats: vec![
                        beat(5, BeatScope::Global),
                        beat(6, BeatScope::Local),
                        beat(7, BeatScope::Global),
                    ],
                },
            }),
            Frame::Event(EventFrame {
                sub_id: 1,
                sent_at_ns: 128,
                cursor: 128,
                app: "cam3".into(),
                payload: EventPayload::Beats {
                    dropped_total: 0,
                    beats: vec![],
                },
            }),
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(bytes[4], 3, "subscription frames are version 3: {frame:?}");
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn malformed_subscription_frames_are_rejected() {
        // Interest mask with no bits.
        let mut bad = Frame::Subscribe(SubscribeReq {
            sub_id: 1,
            pattern: "x".into(),
            interests: 0b001,
            min_interval_ns: 0,
            resume_from: 0,
        })
        .encode();
        bad[HEADER_LEN + 4] = 0;
        let crc = crate::crc::crc32(&bad[HEADER_LEN..]);
        bad[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(NetError::Protocol(msg)) if msg.contains("interest")
        ));

        // Interest mask with unknown bits.
        bad[HEADER_LEN + 4] = 0b1001;
        let crc = crate::crc::crc32(&bad[HEADER_LEN..]);
        bad[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&bad).is_err());

        // A pattern that violates the pattern rules (whitespace).
        let mut sneaky = Frame::Subscribe(SubscribeReq {
            sub_id: 1,
            pattern: "ab".into(),
            interests: 0b010,
            min_interval_ns: 0,
            resume_from: 0,
        })
        .encode();
        // The pattern's last byte sits just before the trailing
        // resume-cursor varint (one byte for 0).
        let at = sneaky.len() - 3;
        sneaky[at] = b' ';
        let crc = crate::crc::crc32(&sneaky[HEADER_LEN..]);
        sneaky[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&sneaky),
            Err(NetError::Protocol(msg)) if msg.contains("pattern")
        ));

        // Unknown sub-ack status byte.
        let mut ack = Frame::SubAck {
            sub_id: 1,
            status: SubStatus::Ok,
        }
        .encode();
        ack[HEADER_LEN + 4] = 99;
        let crc = crate::crc::crc32(&ack[HEADER_LEN..]);
        ack[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&ack),
            Err(NetError::Protocol(msg)) if msg.contains("status")
        ));

        // Unknown event kind byte (sits right after the 1-byte sub_id
        // varint).
        let mut event = Frame::Event(EventFrame {
            sub_id: 1,
            sent_at_ns: 0,
            cursor: 0,
            app: "x".into(),
            payload: EventPayload::Snapshot {
                total_beats: 0,
                producer_dropped: 0,
                rate_bps: None,
                target: None,
                alive: true,
            },
        })
        .encode();
        event[HEADER_LEN + 1] = 77;
        let crc = crate::crc::crc32(&event[HEADER_LEN..]);
        event[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&event),
            Err(NetError::Protocol(msg)) if msg.contains("event kind")
        ));
    }

    /// Pins the subscription-frame worked hex examples in `docs/WIRE.md`
    /// byte for byte, so the documentation cannot rot silently.
    #[test]
    fn subscription_worked_examples_match_wire_md() {
        fn hex(bytes: &[u8]) -> String {
            bytes
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
        assert_eq!(
            hex(
                &Frame::Subscribe(SubscribeReq {
                    sub_id: 1,
                    pattern: "cam*".into(),
                    interests: 0b010,
                    min_interval_ns: 1_000_000_000,
                    resume_from: 0,
                })
                .encode()
            ),
            "48 42 57 54 03 0b 14 00 00 00 72 1d 45 30 \
             01 00 00 00 02 00 ca 9a 3b 00 00 00 00 04 00 63 61 6d 2a 00"
        );
        assert_eq!(
            hex(
                &Frame::SubAck {
                    sub_id: 1,
                    status: SubStatus::Ok,
                }
                .encode()
            ),
            "48 42 57 54 03 0c 05 00 00 00 ad de 42 fb 01 00 00 00 00"
        );
        assert_eq!(
            hex(
                &Frame::Event(EventFrame {
                    sub_id: 1,
                    sent_at_ns: 0,
                    cursor: 0,
                    app: "cam7".into(),
                    payload: EventPayload::HealthTransition {
                        from: crate::health::HealthStatus::Healthy,
                        to: crate::health::HealthStatus::Stalled,
                        reasons: vec![crate::health::HealthReason::Silent],
                        window_beats: 42,
                    },
                })
                .encode()
            ),
            "48 42 57 54 03 0d 12 00 00 00 ba dd 8e b6 \
             01 02 04 00 63 61 6d 37 00 00 03 01 02 00 2a 00 00 00"
        );
        assert_eq!(
            hex(&Frame::Unsubscribe { sub_id: 1 }.encode()),
            "48 42 57 54 03 0e 04 00 00 00 79 b8 f8 99 01 00 00 00"
        );
    }

    #[test]
    fn sub_status_encoding_is_stable() {
        for (status, value) in [
            (SubStatus::Ok, 0),
            (SubStatus::InvalidFilter, 1),
            (SubStatus::TooManySubscriptions, 2),
        ] {
            assert_eq!(status.as_u8(), value);
            assert_eq!(SubStatus::from_u8(value), Some(status));
        }
        assert_eq!(SubStatus::from_u8(3), None);
    }

    /// Pins the version-3 worked hex examples in `docs/WIRE.md`.
    #[test]
    fn v3_worked_examples_match_wire_md() {
        fn hex(bytes: &[u8]) -> String {
            bytes
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
        assert_eq!(
            hex(&Frame::HelloAck { max_version: 3 }.encode()),
            "48 42 57 54 03 09 01 00 00 00 37 be 0b 4b 03"
        );
        let mut encoder = BatchEncoder::new();
        encoder.begin_compact(0);
        encoder.push(&WireBeat {
            record: HeartbeatRecord::new(1, 1_000_000, Tag::NONE, BeatThreadId(0)),
            scope: BeatScope::Global,
        });
        encoder.push(&WireBeat {
            record: HeartbeatRecord::new(2, 2_000_500, Tag::new(7), BeatThreadId(0)),
            scope: BeatScope::Local,
        });
        assert_eq!(
            hex(encoder.finish()),
            "48 42 57 54 03 0a 0e 00 00 00 74 b4 15 0b \
             00 00 01 80 89 7a 00 03 01 e8 90 7a 07 00"
        );
    }

    /// Pins the federation-hardening worked hex in `docs/WIRE.md`: the
    /// versioned NodeHello path vector, the auth handshake pair (the MAC
    /// cross-checked against an independent HMAC-SHA256 implementation),
    /// and the cursored Subscribe/Event forms.
    #[test]
    fn federation_worked_examples_match_wire_md() {
        fn hex(bytes: &[u8]) -> String {
            bytes
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
        assert_eq!(
            hex(
                &Frame::NodeHello {
                    node: "leaf0".into(),
                    pid: 7,
                    path: vec!["leaf0".into(), "edge".into()],
                }
                .encode()
            ),
            "48 42 57 54 03 0f 17 00 00 00 00 8f 09 06 \
             07 00 00 00 05 00 6c 65 61 66 30 02 05 6c 65 61 66 30 04 65 64 67 65"
        );
        let nonce = [0xa5u8; AUTH_LEN];
        assert_eq!(
            hex(&Frame::NodeChallenge { nonce }.encode()),
            "48 42 57 54 03 12 20 00 00 00 85 2f 5f 77 \
             a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 \
             a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5 a5"
        );
        // The answer for secret "hunter2", node "leaf0": the expected MAC
        // was computed with an independent HMAC-SHA256 implementation.
        let mac = crate::auth::uplink_mac("hunter2", &nonce, "leaf0");
        assert_eq!(
            hex(&Frame::NodeAuth { mac }.encode()),
            "48 42 57 54 03 13 20 00 00 00 50 27 7e 1a \
             aa 9b 67 2d 3b 60 cc 93 49 17 aa 2f da c6 b4 bd \
             1d 6a 35 32 40 54 b3 35 be 6f 1a e8 35 6f 42 6f"
        );
        // Cursored resume forms: Subscribe with resume_from = 43 asks the
        // child to replay from cursor 43; the first replayed Event carries
        // that cursor.
        assert_eq!(
            hex(
                &Frame::Subscribe(SubscribeReq {
                    sub_id: 1,
                    pattern: "cam*".into(),
                    interests: 0b010,
                    min_interval_ns: 1_000_000_000,
                    resume_from: 43,
                })
                .encode()
            ),
            "48 42 57 54 03 0b 14 00 00 00 32 e4 f9 9c \
             01 00 00 00 02 00 ca 9a 3b 00 00 00 00 04 00 63 61 6d 2a 2b"
        );
        assert_eq!(
            hex(
                &Frame::Event(EventFrame {
                    sub_id: 1,
                    sent_at_ns: 0,
                    cursor: 43,
                    app: "cam7".into(),
                    payload: EventPayload::HealthTransition {
                        from: crate::health::HealthStatus::Healthy,
                        to: crate::health::HealthStatus::Stalled,
                        reasons: vec![crate::health::HealthReason::Silent],
                        window_beats: 42,
                    },
                })
                .encode()
            ),
            "48 42 57 54 03 0d 12 00 00 00 c4 c1 2a b6 \
             01 02 04 00 63 61 6d 37 00 2b 03 01 02 00 2a 00 00 00"
        );
    }

    #[test]
    fn hello_rejects_namespaced_names() {
        // `/` passes valid_app_name (queries and events must accept
        // namespaced names) but a *producer* may not claim one at hello.
        assert!(valid_app_name("leaf-1/cam"));
        let frame = Frame::Hello(Hello {
            app: "leaf-1/cam".into(),
            pid: 1,
            default_window: 20,
        });
        assert!(matches!(
            Frame::decode(&frame.encode()),
            Err(NetError::Protocol(msg)) if msg.contains("federation")
        ));
    }

    #[test]
    fn node_name_validation() {
        assert!(valid_node_name("leaf-1"));
        assert!(valid_node_name("rack07.eu"));
        assert!(!valid_node_name(""));
        assert!(!valid_node_name("leaf/1"));
        assert!(!valid_node_name("leaf*"));
        assert!(!valid_node_name("leaf 1"));
        assert!(!valid_node_name("leaf\u{7}"));
        assert!(!valid_node_name(&"n".repeat(MAX_NODE_LEN + 1)));
        assert!(valid_node_name(&"n".repeat(MAX_NODE_LEN)));
    }

    #[test]
    fn node_hello_roundtrip_and_rejections() {
        for path in [
            vec![],
            vec!["leaf-1".to_string()],
            vec!["leaf-1".to_string(), "rack07.eu".to_string(), "x".to_string()],
        ] {
            let frame = Frame::NodeHello {
                node: "leaf-1".into(),
                pid: 4242,
                path,
            };
            let bytes = frame.encode();
            // Federation kinds ride the existing v3 wire.
            assert_eq!(bytes[4], 3);
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
        for bad in ["leaf/1", "leaf*", "has space", ""] {
            let frame = Frame::NodeHello {
                node: bad.into(),
                pid: 1,
                path: vec![],
            };
            assert!(
                matches!(Frame::decode(&frame.encode()), Err(NetError::Protocol(_))),
                "node name {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn node_hello_legacy_body_decodes_with_empty_path() {
        // The pre-loop-detection encoding ends right after the node name;
        // it must keep decoding (path = []) so a mixed-version tree can
        // still link up.
        let mut frame = Frame::NodeHello {
            node: "leaf-1".into(),
            pid: 7,
            path: vec![],
        }
        .encode();
        // Strip the trailing path-count byte and re-stamp length + CRC.
        frame.pop();
        let payload_len = (frame.len() - HEADER_LEN) as u32;
        frame[6..10].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&frame[HEADER_LEN..]);
        frame[10..14].copy_from_slice(&crc.to_le_bytes());
        let (decoded, used) = Frame::decode(&frame).unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(
            decoded,
            Frame::NodeHello {
                node: "leaf-1".into(),
                pid: 7,
                path: vec![],
            }
        );
    }

    #[test]
    fn node_hello_path_rejections() {
        // An invalid name inside the path vector is rejected even though
        // the node name itself is fine.
        let frame = Frame::NodeHello {
            node: "leaf-1".into(),
            pid: 1,
            path: vec!["ok-node".into(), "bad/one".into()],
        };
        assert!(matches!(
            Frame::decode(&frame.encode()),
            Err(NetError::Protocol(msg)) if msg.contains("path entry")
        ));
        // A count byte promising more entries than the payload holds.
        let mut truncated = Frame::NodeHello {
            node: "leaf-1".into(),
            pid: 1,
            path: vec![],
        }
        .encode();
        let at = truncated.len() - 1;
        truncated[at] = 3; // claims 3 entries, provides none
        let crc = crc32(&truncated[HEADER_LEN..]);
        truncated[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&truncated),
            Err(NetError::Protocol(msg)) if msg.contains("path truncated")
        ));
    }

    #[test]
    fn node_challenge_and_auth_roundtrip() {
        let nonce = crate::auth::fresh_nonce();
        let frame = Frame::NodeChallenge { nonce };
        let bytes = frame.encode();
        assert_eq!(bytes[4], 3);
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);

        let mac = crate::auth::uplink_mac("swordfish", &nonce, "leaf-1");
        let frame = Frame::NodeAuth { mac };
        let (decoded, used) = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(used, frame.encode().len());
        assert_eq!(decoded, frame);

        // Wrong payload length is rejected, not padded.
        let mut short = Frame::NodeAuth { mac }.encode();
        short.truncate(short.len() - 1);
        let payload_len = (short.len() - HEADER_LEN) as u32;
        short[6..10].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&short[HEADER_LEN..]);
        short[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&short).is_err());
    }

    #[test]
    fn subscribe_legacy_body_decodes_with_zero_resume() {
        let mut frame = Frame::Subscribe(SubscribeReq {
            sub_id: 3,
            pattern: "cam*".into(),
            interests: 0b100,
            min_interval_ns: 5,
            resume_from: 0,
        })
        .encode();
        // Strip the trailing resume varint (one byte for 0) and re-stamp.
        frame.pop();
        let payload_len = (frame.len() - HEADER_LEN) as u32;
        frame[6..10].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&frame[HEADER_LEN..]);
        frame[10..14].copy_from_slice(&crc.to_le_bytes());
        let (decoded, _) = Frame::decode(&frame).unwrap();
        assert!(matches!(
            decoded,
            Frame::Subscribe(SubscribeReq { resume_from: 0, .. })
        ));
    }

    #[test]
    fn splice_event_cursor_rewrites_in_place() {
        for (cursor, trailing) in [(1u64, false), (300, false), (u64::MAX, true)] {
            let event = Frame::Event(EventFrame {
                sub_id: 9,
                sent_at_ns: 123_456,
                cursor: 0,
                app: "leaf/cam3".into(),
                payload: EventPayload::Beats {
                    dropped_total: 2,
                    beats: vec![beat(5, BeatScope::Global), beat(6, BeatScope::Local)],
                },
            });
            let mut buf = Vec::new();
            let frame_at = if trailing {
                // The spliced frame need not start at offset 0.
                Frame::Bye.encode_into(&mut buf);
                buf.len()
            } else {
                0
            };
            event.encode_into(&mut buf);
            splice_event_cursor(&mut buf, frame_at, cursor).unwrap();
            let (decoded, used) = Frame::decode(&buf[frame_at..]).unwrap();
            assert_eq!(used, buf.len() - frame_at);
            let Frame::Event(decoded) = decoded else {
                panic!("not an event");
            };
            assert_eq!(decoded.cursor, cursor);
            assert_eq!(decoded.app, "leaf/cam3");
            assert!(matches!(
                decoded.payload,
                EventPayload::Beats { dropped_total: 2, ref beats } if beats.len() == 2
            ));
        }
        // Non-event frames are refused.
        let mut buf = Frame::Bye.encode();
        assert!(splice_event_cursor(&mut buf, 0, 1).is_err());
    }

    #[test]
    fn relay_event_roundtrip() {
        for payload in [
            EventPayload::Beats {
                dropped_total: 17,
                beats: vec![beat(1, BeatScope::Global), beat(2, BeatScope::Local)],
            },
            EventPayload::HealthTransition {
                from: HealthStatus::Healthy,
                to: HealthStatus::Stalled,
                reasons: vec![HealthReason::Silent],
                window_beats: 12,
            },
        ] {
            let frame = Frame::RelayEvent {
                seq: u64::MAX / 3,
                event: EventFrame {
                    sub_id: 0,
                    sent_at_ns: 123_456_789,
                    cursor: 0,
                    app: "cam".into(),
                    payload,
                },
            };
            let bytes = frame.encode();
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn relay_event_rejects_seq_zero() {
        let frame = Frame::RelayEvent {
            seq: 1,
            event: EventFrame {
                sub_id: 0,
                sent_at_ns: 0,
                cursor: 0,
                app: "cam".into(),
                payload: EventPayload::Beats {
                    dropped_total: 0,
                    beats: vec![],
                },
            },
        };
        let mut bytes = frame.encode();
        // Rewrite the seq varint (first payload byte) from 1 to 0 and
        // re-stamp the CRC.
        bytes[HEADER_LEN] = 0;
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("reserved")
        ));
    }

    #[test]
    fn relay_ack_roundtrip() {
        for last_applied in [0u64, 1, 300, u64::MAX] {
            let frame = Frame::RelayAck { last_applied };
            let bytes = frame.encode();
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn federation_kinds_are_version_3() {
        for kind in [
            KIND_NODE_HELLO,
            KIND_RELAY_EVENT,
            KIND_RELAY_ACK,
            KIND_NODE_CHALLENGE,
            KIND_NODE_AUTH,
        ] {
            assert_eq!(wire_version(kind), Some(3));
        }
        assert_eq!(wire_version(KIND_NODE_AUTH + 1), None);
    }

    #[test]
    fn glob_overlaps_prefix_cases() {
        // Anything a subscription could match under the prefix → true.
        assert!(glob_overlaps_prefix("*", "leaf-1/"));
        assert!(glob_overlaps_prefix("leaf-1/*", "leaf-1/"));
        assert!(glob_overlaps_prefix("leaf-1/cam", "leaf-1/"));
        assert!(glob_overlaps_prefix("leaf*", "leaf-1/"));
        assert!(glob_overlaps_prefix("le*af/x", "leaf/"));
        assert!(glob_overlaps_prefix("*cam", "leaf-1/"));
        // Patterns that cannot reach past the prefix → false.
        assert!(!glob_overlaps_prefix("other/*", "leaf-1/"));
        assert!(!glob_overlaps_prefix("cam", "leaf-1/"));
        assert!(!glob_overlaps_prefix("leaf-2*", "leaf-1/"));
        // Consistency with glob_match: a matching full name implies overlap.
        for (pattern, name) in [("*", "leaf-1/cam"), ("leaf-1/c*m", "leaf-1/cam")] {
            assert!(glob_match(pattern, name));
            assert!(glob_overlaps_prefix(pattern, "leaf-1/"));
        }
    }
}

