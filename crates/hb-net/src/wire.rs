//! The heartbeat wire protocol: a compact, versioned binary framing for
//! shipping heartbeat telemetry between processes and machines.
//!
//! ## Frame layout
//!
//! Every frame is self-delimiting (little-endian throughout):
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0x48425754 ("HBWT")
//! 4       1     version      currently 1
//! 5       1     kind         frame type discriminant
//! 6       4     payload_len  bytes following the header (<= MAX_PAYLOAD)
//! 10      4     crc32        IEEE CRC-32 of the payload bytes
//! 14      n     payload
//! ```
//!
//! The magic and version let a receiver reject foreign or future streams
//! immediately; the length prefix makes framing O(1); the CRC rejects
//! corruption and desynchronization deterministically. Beat records use a
//! fixed 29-byte encoding so batches can be encoded and decoded with simple
//! offset arithmetic — no per-field allocation, friendly to zero-copy-style
//! scanning.
//!
//! ## Versioning
//!
//! Each frame carries the **lowest** protocol version that defines its kind
//! ([`wire_version`]): the original producer frames (kinds 1–4) encode as
//! version 1, the health query frames (kinds 5–8) as version 2. A decoder
//! accepts any version in `MIN_VERSION..=VERSION` and rejects a kind its
//! claimed version does not define, so a version-1-only peer keeps
//! interoperating with everything it understands while newer frames fail
//! fast instead of being misparsed. See `docs/WIRE.md` for the byte-level
//! specification with worked examples.
//!
//! ## Frame kinds
//!
//! Producer → collector (version 1):
//!
//! * [`Frame::Hello`] — sent once per connection: application identity plus
//!   its default rate window, so the collector can size its server-side
//!   [`MovingRate`](heartbeats::MovingRate).
//! * [`Frame::Beats`] — a batch of heartbeat records plus the producer-side
//!   drop counter (beats shed under backpressure), so observers can
//!   distinguish "slow app" from "slow network".
//! * [`Frame::Target`] — the application changed its declared heart-rate
//!   goal (`HB_set_target_rate`).
//! * [`Frame::Bye`] — orderly goodbye; the collector marks the app
//!   disconnected rather than waiting for staleness.
//!
//! Observer ⇄ collector, on the query port (version 2):
//!
//! * [`Frame::HistoryReq`] / [`Frame::History`] — ask for / return the
//!   collector's bounded history ring for one application
//!   ([`HistorySample`] records).
//! * [`Frame::HealthReq`] / [`Frame::Health`] — ask for / return the
//!   windowed anomaly classification ([`HealthReport`]).

use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};

use crate::crc::crc32;
use crate::error::{NetError, Result};
use crate::health::{HealthReason, HealthReport, HealthStatus, HistorySample};

/// Frame magic: `HBWT` interpreted as a little-endian u32.
pub const MAGIC: u32 = 0x5457_4248;

/// Current protocol version (health query frames).
pub const VERSION: u8 = 2;

/// Oldest protocol version still accepted (the original producer frames).
pub const MIN_VERSION: u8 = 1;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 14;

/// Upper bound on a frame payload; anything larger is a protocol violation.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Encoded size of one beat record inside a [`Frame::Beats`] payload.
pub const BEAT_LEN: usize = 29;

/// Fixed prefix of a [`Frame::Beats`] payload (`dropped_total` + count).
pub const BATCH_PREFIX_LEN: usize = 12;

/// Most beat records a single [`Frame::Beats`] can carry within
/// [`MAX_PAYLOAD`].
pub const MAX_BATCH_BEATS: usize = (MAX_PAYLOAD - BATCH_PREFIX_LEN) / BEAT_LEN;

/// Maximum application-name length accepted in a hello frame.
pub const MAX_NAME_LEN: usize = 256;

/// Encoded size of one [`HistorySample`] inside a [`Frame::History`]
/// payload.
pub const SAMPLE_LEN: usize = 40;

/// Most history samples a single [`Frame::History`] can carry within
/// [`MAX_PAYLOAD`] (the fixed prefix plus a maximal name leave room for the
/// rest).
pub const MAX_HISTORY_SAMPLES: usize = (MAX_PAYLOAD - 15 - MAX_NAME_LEN) / SAMPLE_LEN;

const KIND_HELLO: u8 = 1;
const KIND_BEATS: u8 = 2;
const KIND_TARGET: u8 = 3;
const KIND_BYE: u8 = 4;
const KIND_HISTORY_REQ: u8 = 5;
const KIND_HISTORY: u8 = 6;
const KIND_HEALTH_REQ: u8 = 7;
const KIND_HEALTH: u8 = 8;

/// The lowest protocol version that defines `kind`, which is also the
/// version stamped into the header when the frame is encoded. `None` if no
/// supported version defines it.
pub fn wire_version(kind: u8) -> Option<u8> {
    match kind {
        KIND_HELLO..=KIND_BYE => Some(1),
        KIND_HISTORY_REQ..=KIND_HEALTH => Some(2),
        _ => None,
    }
}

/// True if `name` is acceptable as an application name on the wire:
/// non-empty, within [`MAX_NAME_LEN`] bytes, and free of whitespace,
/// control characters and quotes (which would corrupt the collector's
/// line-based query protocol and Prometheus labels).
pub fn valid_app_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .chars()
            .all(|c| !c.is_whitespace() && !c.is_control() && c != '"' && c != '\\')
}

/// Rewrites an arbitrary string into a valid wire application name:
/// offending characters become `-` and the result is truncated to
/// [`MAX_NAME_LEN`] bytes (empty input becomes `"unnamed"`).
pub fn sanitize_app_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len().min(MAX_NAME_LEN));
    for c in name.chars() {
        if out.len() + c.len_utf8() > MAX_NAME_LEN {
            break;
        }
        if c.is_whitespace() || c.is_control() || c == '"' || c == '\\' {
            out.push('-');
        } else {
            out.push(c);
        }
    }
    if out.is_empty() {
        out.push_str("unnamed");
    }
    out
}

/// Connection preamble: who is producing, and how it measures itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Application name (registry key on the collector).
    pub app: String,
    /// Producer process id, for operator diagnostics.
    pub pid: u32,
    /// The window (in beats) the application registered at
    /// `HB_initialize`; the collector sizes its server-side window to match
    /// so local and remote rate estimates agree.
    pub default_window: u32,
}

/// One heartbeat record with its scope, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireBeat {
    /// The heartbeat record (sequence, timestamp, tag, thread).
    pub record: HeartbeatRecord,
    /// Global (application-wide) or local (per-thread) stream.
    pub scope: BeatScope,
}

/// A batch of beats plus the producer's cumulative drop counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BeatBatch {
    /// Total beats the producer has shed so far under backpressure.
    pub dropped_total: u64,
    /// The records in this batch, in production order.
    pub beats: Vec<WireBeat>,
}

/// A slice of one application's collector-side history ring, as returned by
/// a [`Frame::HistoryReq`] query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryChunk {
    /// The application the history belongs to.
    pub app: String,
    /// False when the collector has never seen the application (the chunk
    /// is then empty but well-formed).
    pub known: bool,
    /// Samples ever pushed into the ring, including those already
    /// overwritten — `total - samples.len()` is the number lost to the
    /// ring's bound.
    pub total: u64,
    /// The retained samples, chronological.
    pub samples: Vec<HistorySample>,
}

/// A health classification for one application, as returned by a
/// [`Frame::HealthReq`] query.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthFrame {
    /// The application the report describes.
    pub app: String,
    /// False when the collector has never seen the application (the report
    /// is then [`HealthReport::no_signal`]).
    pub known: bool,
    /// The windowed anomaly detector's verdict.
    pub report: HealthReport,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection preamble.
    Hello(Hello),
    /// A batch of heartbeat records.
    Beats(BeatBatch),
    /// A target heart-rate declaration.
    Target {
        /// Minimum desired rate in beats/s.
        min_bps: f64,
        /// Maximum desired rate in beats/s.
        max_bps: f64,
    },
    /// Orderly end of stream.
    Bye,
    /// Query: the history ring of one application (`limit == 0` = all
    /// retained samples, otherwise the most recent `limit`).
    HistoryReq {
        /// Application name.
        app: String,
        /// Most recent samples wanted; `0` means all retained.
        limit: u32,
    },
    /// Response to [`Frame::HistoryReq`].
    History(HistoryChunk),
    /// Query: the windowed health classification of one application.
    HealthReq {
        /// Application name.
        app: String,
    },
    /// Response to [`Frame::HealthReq`].
    Health(HealthFrame),
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(bytes[at..at + 2].try_into().expect("bounds checked"))
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn encode_beat(buf: &mut Vec<u8>, beat: &WireBeat) {
    put_u64(buf, beat.record.seq);
    put_u64(buf, beat.record.timestamp_ns);
    put_u64(buf, beat.record.tag.value());
    put_u32(buf, beat.record.thread.index());
    buf.push(match beat.scope {
        BeatScope::Global => 0,
        BeatScope::Local => 1,
    });
}

/// Appends a length-prefixed application name (u16 length + bytes). Names
/// beyond [`MAX_NAME_LEN`] cannot decode (every caller pre-validates; the
/// header's own length prefix means even a bogus name only yields a
/// rejected frame, never a desynchronized stream).
fn put_name(buf: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    debug_assert!(bytes.len() <= MAX_NAME_LEN, "unvalidated name on the wire");
    put_u16(buf, bytes.len() as u16);
    buf.extend_from_slice(bytes);
}

/// Decodes a length-prefixed application name at `at`, returning the name
/// and the offset just past it.
fn get_name(payload: &[u8], at: usize) -> Result<(String, usize)> {
    if payload.len() < at + 2 {
        return Err(NetError::Protocol("name length truncated".into()));
    }
    let len = get_u16(payload, at) as usize;
    if len > MAX_NAME_LEN {
        return Err(NetError::Protocol(format!(
            "application name of {len} bytes exceeds the {MAX_NAME_LEN}-byte limit"
        )));
    }
    let end = at + 2 + len;
    if payload.len() < end {
        return Err(NetError::Protocol("name truncated".into()));
    }
    let name = std::str::from_utf8(&payload[at + 2..end])
        .map_err(|_| NetError::Protocol("application name is not UTF-8".into()))?
        .to_string();
    if !valid_app_name(&name) {
        return Err(NetError::Protocol(format!(
            "invalid application name {name:?} (empty, too long, or contains \
             whitespace/control/quote characters)"
        )));
    }
    Ok((name, end))
}

/// Encodes an optional finite f64 as its bit pattern, with NaN as the
/// `None` sentinel.
fn put_opt_f64(buf: &mut Vec<u8>, value: Option<f64>) {
    put_u64(buf, value.unwrap_or(f64::NAN).to_bits());
}

/// Decodes the optional-f64 convention: NaN means `None`; any other
/// non-finite value is a protocol violation.
fn get_opt_f64(bytes: &[u8], at: usize) -> Result<Option<f64>> {
    let value = f64::from_bits(get_u64(bytes, at));
    if value.is_nan() {
        Ok(None)
    } else if value.is_finite() {
        Ok(Some(value))
    } else {
        Err(NetError::Protocol("non-finite wire value".into()))
    }
}

fn encode_sample(buf: &mut Vec<u8>, sample: &HistorySample) {
    put_u64(buf, sample.seq);
    put_u64(buf, sample.timestamp_ns);
    put_u64(buf, sample.tag);
    put_u64(buf, sample.interval_ns);
    put_opt_f64(buf, sample.rate_bps);
}

fn decode_sample(bytes: &[u8]) -> Result<HistorySample> {
    debug_assert_eq!(bytes.len(), SAMPLE_LEN);
    Ok(HistorySample {
        seq: get_u64(bytes, 0),
        timestamp_ns: get_u64(bytes, 8),
        tag: get_u64(bytes, 16),
        interval_ns: get_u64(bytes, 24),
        rate_bps: get_opt_f64(bytes, 32)?,
    })
}

fn decode_beat(bytes: &[u8]) -> Result<WireBeat> {
    debug_assert_eq!(bytes.len(), BEAT_LEN);
    let scope = match bytes[28] {
        0 => BeatScope::Global,
        1 => BeatScope::Local,
        other => {
            return Err(NetError::Protocol(format!(
                "invalid beat scope byte {other}"
            )))
        }
    };
    Ok(WireBeat {
        record: HeartbeatRecord::new(
            get_u64(bytes, 0),
            get_u64(bytes, 8),
            Tag::new(get_u64(bytes, 16)),
            BeatThreadId(get_u32(bytes, 24)),
        ),
        scope,
    })
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello(_) => KIND_HELLO,
            Frame::Beats(_) => KIND_BEATS,
            Frame::Target { .. } => KIND_TARGET,
            Frame::Bye => KIND_BYE,
            Frame::HistoryReq { .. } => KIND_HISTORY_REQ,
            Frame::History(_) => KIND_HISTORY,
            Frame::HealthReq { .. } => KIND_HEALTH_REQ,
            Frame::Health(_) => KIND_HEALTH,
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello(hello) => {
                put_u32(buf, hello.pid);
                put_u32(buf, hello.default_window);
                let name = hello.app.as_bytes();
                put_u16(buf, name.len() as u16);
                buf.extend_from_slice(name);
            }
            Frame::Beats(batch) => {
                put_u64(buf, batch.dropped_total);
                put_u32(buf, batch.beats.len() as u32);
                for beat in &batch.beats {
                    encode_beat(buf, beat);
                }
            }
            Frame::Target { min_bps, max_bps } => {
                put_u64(buf, min_bps.to_bits());
                put_u64(buf, max_bps.to_bits());
            }
            Frame::Bye => {}
            Frame::HistoryReq { app, limit } => {
                put_u32(buf, *limit);
                put_name(buf, app);
            }
            Frame::History(chunk) => {
                buf.push(u8::from(chunk.known));
                put_u32(buf, chunk.samples.len() as u32);
                put_u64(buf, chunk.total);
                put_name(buf, &chunk.app);
                for sample in &chunk.samples {
                    encode_sample(buf, sample);
                }
            }
            Frame::HealthReq { app } => {
                put_name(buf, app);
            }
            Frame::Health(health) => {
                let report = &health.report;
                buf.push(u8::from(health.known));
                buf.push(report.status.as_u8());
                put_u16(buf, HealthReason::pack(&report.reasons));
                put_u32(buf, report.window_beats);
                put_u32(buf, report.missing);
                put_u32(buf, report.duplicated);
                put_u32(buf, report.reordered);
                put_u64(buf, report.silent_ns);
                put_opt_f64(buf, report.window_rate_bps);
                put_opt_f64(buf, report.jitter_cv);
                put_name(buf, &health.app);
            }
        }
    }

    /// Appends the full encoded frame (header + payload) to `buf`.
    ///
    /// Reusing one buffer across calls amortizes allocation on the producer
    /// hot path; the buffer is never shrunk.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let header_at = buf.len();
        put_u32(buf, MAGIC);
        // Stamp the lowest version that defines the kind, so version-1
        // peers keep accepting every frame they understand.
        buf.push(wire_version(self.kind()).expect("own kinds are versioned"));
        buf.push(self.kind());
        put_u32(buf, 0); // payload_len, patched below
        put_u32(buf, 0); // crc, patched below
        let payload_at = buf.len();
        self.encode_payload(buf);
        let payload_len = (buf.len() - payload_at) as u32;
        let crc = crc32(&buf[payload_at..]);
        buf[header_at + 6..header_at + 10].copy_from_slice(&payload_len.to_le_bytes());
        buf[header_at + 10..header_at + 14].copy_from_slice(&crc.to_le_bytes());
    }

    /// Encodes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + 64);
        self.encode_into(&mut buf);
        buf
    }

    /// Parses and validates a frame header, returning `(kind, payload_len,
    /// crc)`. `bytes` must hold at least [`HEADER_LEN`] bytes.
    pub fn decode_header(bytes: &[u8]) -> Result<(u8, usize, u32)> {
        if bytes.len() < HEADER_LEN {
            return Err(NetError::Protocol(format!(
                "header truncated: {} of {HEADER_LEN} bytes",
                bytes.len()
            )));
        }
        let magic = get_u32(bytes, 0);
        if magic != MAGIC {
            return Err(NetError::Protocol(format!("bad magic {magic:#010x}")));
        }
        let version = bytes[4];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(NetError::Protocol(format!(
                "unsupported protocol version {version}"
            )));
        }
        let kind = bytes[5];
        match wire_version(kind) {
            None => return Err(NetError::Protocol(format!("unknown frame kind {kind}"))),
            Some(required) if version < required => {
                return Err(NetError::Protocol(format!(
                    "frame kind {kind} requires protocol version {required}, header claims {version}"
                )));
            }
            Some(_) => {}
        }
        let payload_len = get_u32(bytes, 6) as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(NetError::Protocol(format!(
                "payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
            )));
        }
        Ok((kind, payload_len, get_u32(bytes, 10)))
    }

    /// Decodes a validated payload into a frame.
    pub fn decode_payload(kind: u8, payload: &[u8], crc: u32) -> Result<Frame> {
        if crc32(payload) != crc {
            return Err(NetError::Protocol("payload CRC mismatch".into()));
        }
        match kind {
            KIND_HELLO => {
                if payload.len() < 10 {
                    return Err(NetError::Protocol("hello payload truncated".into()));
                }
                let pid = get_u32(payload, 0);
                let default_window = get_u32(payload, 4);
                let name_len = get_u16(payload, 8) as usize;
                if name_len > MAX_NAME_LEN {
                    return Err(NetError::Protocol(format!(
                        "application name of {name_len} bytes exceeds the {MAX_NAME_LEN}-byte limit"
                    )));
                }
                if payload.len() != 10 + name_len {
                    return Err(NetError::Protocol(format!(
                        "hello payload is {} bytes, expected {}",
                        payload.len(),
                        10 + name_len
                    )));
                }
                let app = std::str::from_utf8(&payload[10..])
                    .map_err(|_| NetError::Protocol("application name is not UTF-8".into()))?
                    .to_string();
                if !valid_app_name(&app) {
                    return Err(NetError::Protocol(format!(
                        "invalid application name {app:?} (empty, too long, or contains \
                         whitespace/control/quote characters)"
                    )));
                }
                Ok(Frame::Hello(Hello {
                    app,
                    pid,
                    default_window,
                }))
            }
            KIND_BEATS => {
                if payload.len() < 12 {
                    return Err(NetError::Protocol("beat batch payload truncated".into()));
                }
                let dropped_total = get_u64(payload, 0);
                let count = get_u32(payload, 8) as usize;
                if payload.len() != 12 + count * BEAT_LEN {
                    return Err(NetError::Protocol(format!(
                        "beat batch of {count} records should be {} bytes, got {}",
                        12 + count * BEAT_LEN,
                        payload.len()
                    )));
                }
                let mut beats = Vec::with_capacity(count);
                for i in 0..count {
                    let at = 12 + i * BEAT_LEN;
                    beats.push(decode_beat(&payload[at..at + BEAT_LEN])?);
                }
                Ok(Frame::Beats(BeatBatch {
                    dropped_total,
                    beats,
                }))
            }
            KIND_TARGET => {
                if payload.len() != 16 {
                    return Err(NetError::Protocol(format!(
                        "target payload is {} bytes, expected 16",
                        payload.len()
                    )));
                }
                let min_bps = f64::from_bits(get_u64(payload, 0));
                let max_bps = f64::from_bits(get_u64(payload, 8));
                if !min_bps.is_finite() || !max_bps.is_finite() {
                    return Err(NetError::Protocol("non-finite target rate".into()));
                }
                Ok(Frame::Target { min_bps, max_bps })
            }
            KIND_BYE => {
                if !payload.is_empty() {
                    return Err(NetError::Protocol("bye frame carries a payload".into()));
                }
                Ok(Frame::Bye)
            }
            KIND_HISTORY_REQ => {
                if payload.len() < 6 {
                    return Err(NetError::Protocol("history request truncated".into()));
                }
                let limit = get_u32(payload, 0);
                let (app, end) = get_name(payload, 4)?;
                if end != payload.len() {
                    return Err(NetError::Protocol("history request trailing bytes".into()));
                }
                Ok(Frame::HistoryReq { app, limit })
            }
            KIND_HISTORY => {
                if payload.len() < 15 {
                    return Err(NetError::Protocol("history payload truncated".into()));
                }
                let known = payload[0] != 0;
                let count = get_u32(payload, 1) as usize;
                let total = get_u64(payload, 5);
                let (app, samples_at) = get_name(payload, 13)?;
                if payload.len() != samples_at + count * SAMPLE_LEN {
                    return Err(NetError::Protocol(format!(
                        "history of {count} samples should be {} bytes, got {}",
                        samples_at + count * SAMPLE_LEN,
                        payload.len()
                    )));
                }
                let mut samples = Vec::with_capacity(count);
                for i in 0..count {
                    let at = samples_at + i * SAMPLE_LEN;
                    samples.push(decode_sample(&payload[at..at + SAMPLE_LEN])?);
                }
                Ok(Frame::History(HistoryChunk {
                    app,
                    known,
                    total,
                    samples,
                }))
            }
            KIND_HEALTH_REQ => {
                let (app, end) = get_name(payload, 0)?;
                if end != payload.len() {
                    return Err(NetError::Protocol("health request trailing bytes".into()));
                }
                Ok(Frame::HealthReq { app })
            }
            KIND_HEALTH => {
                const FIXED: usize = 44;
                if payload.len() < FIXED + 2 {
                    return Err(NetError::Protocol("health payload truncated".into()));
                }
                let known = payload[0] != 0;
                let status = HealthStatus::from_u8(payload[1]).ok_or_else(|| {
                    NetError::Protocol(format!("invalid health status byte {}", payload[1]))
                })?;
                let reasons = HealthReason::unpack(get_u16(payload, 2));
                let (app, end) = get_name(payload, FIXED)?;
                if end != payload.len() {
                    return Err(NetError::Protocol("health payload trailing bytes".into()));
                }
                Ok(Frame::Health(HealthFrame {
                    app,
                    known,
                    report: HealthReport {
                        status,
                        reasons,
                        window_beats: get_u32(payload, 4),
                        missing: get_u32(payload, 8),
                        duplicated: get_u32(payload, 12),
                        reordered: get_u32(payload, 16),
                        silent_ns: get_u64(payload, 20),
                        window_rate_bps: get_opt_f64(payload, 28)?,
                        jitter_cv: get_opt_f64(payload, 36)?,
                    },
                }))
            }
            _ => unreachable!("kind validated by decode_header"),
        }
    }

    /// Decodes one frame from the front of `bytes`, returning the frame and
    /// the number of bytes consumed.
    ///
    /// See [`BatchEncoder`] for the allocation-free producer-side encoding
    /// of beat batches.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize)> {
        let (kind, payload_len, crc) = Self::decode_header(bytes)?;
        let total = HEADER_LEN + payload_len;
        if bytes.len() < total {
            return Err(NetError::Protocol(format!(
                "frame truncated: have {} of {total} bytes",
                bytes.len()
            )));
        }
        let frame = Self::decode_payload(kind, &bytes[HEADER_LEN..total], crc)?;
        Ok((frame, total))
    }
}

/// Streaming encoder for one [`Frame::Beats`] batch.
///
/// The flusher in [`TcpBackend`](crate::TcpBackend) drains its queue once
/// per flush; materializing a [`BeatBatch`] (a `Vec<WireBeat>`) just to
/// encode it would copy every record twice. `BatchEncoder` instead appends
/// beats straight into the frame's wire encoding and patches the header
/// (count, payload length, CRC) when the batch is sealed — one frame per
/// flush, zero intermediate structures. The internal buffer is reused across
/// batches, so steady-state flushing does not allocate.
///
/// ```
/// use hb_net::wire::{BatchEncoder, Frame, WireBeat};
/// use heartbeats::{BeatScope, BeatThreadId, HeartbeatRecord, Tag};
///
/// let mut encoder = BatchEncoder::new();
/// encoder.begin(3); // 3 beats shed so far
/// encoder.push(&WireBeat {
///     record: HeartbeatRecord::new(0, 1_000, Tag::NONE, BeatThreadId(0)),
///     scope: BeatScope::Global,
/// });
/// let bytes = encoder.finish();
/// let (frame, used) = Frame::decode(bytes).unwrap();
/// assert_eq!(used, bytes.len());
/// assert!(matches!(frame, Frame::Beats(batch) if batch.beats.len() == 1));
/// ```
#[derive(Debug, Default)]
pub struct BatchEncoder {
    buf: Vec<u8>,
    count: u32,
    open: bool,
}

impl BatchEncoder {
    /// Creates an encoder with an empty reusable buffer.
    pub fn new() -> Self {
        BatchEncoder::default()
    }

    /// Starts a new batch carrying the producer's cumulative drop counter.
    /// Any previous unfinished batch is discarded.
    pub fn begin(&mut self, dropped_total: u64) {
        self.buf.clear();
        self.count = 0;
        self.open = true;
        put_u32(&mut self.buf, MAGIC);
        self.buf
            .push(wire_version(KIND_BEATS).expect("beats are versioned"));
        self.buf.push(KIND_BEATS);
        put_u32(&mut self.buf, 0); // payload_len, patched by finish()
        put_u32(&mut self.buf, 0); // crc, patched by finish()
        put_u64(&mut self.buf, dropped_total);
        put_u32(&mut self.buf, 0); // count, patched by finish()
    }

    /// Appends one beat. Returns `false` (leaving the batch unchanged) once
    /// the frame is full ([`MAX_BATCH_BEATS`]); seal it with
    /// [`finish`](Self::finish) and `begin` a new one.
    pub fn push(&mut self, beat: &WireBeat) -> bool {
        debug_assert!(self.open, "push called before begin");
        if self.count as usize >= MAX_BATCH_BEATS {
            return false;
        }
        encode_beat(&mut self.buf, beat);
        self.count += 1;
        true
    }

    /// Beats appended to the current batch so far.
    pub fn beats(&self) -> usize {
        self.count as usize
    }

    /// True if no beats have been appended since `begin`.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Seals the batch — patches the record count, payload length and CRC —
    /// and returns the complete encoded frame.
    pub fn finish(&mut self) -> &[u8] {
        assert!(self.open, "finish called before begin");
        self.open = false;
        let count_at = HEADER_LEN + 8;
        self.buf[count_at..count_at + 4].copy_from_slice(&self.count.to_le_bytes());
        let payload_len = (self.buf.len() - HEADER_LEN) as u32;
        let crc = crc32(&self.buf[HEADER_LEN..]);
        self.buf[6..10].copy_from_slice(&payload_len.to_le_bytes());
        self.buf[10..14].copy_from_slice(&crc.to_le_bytes());
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(seq: u64, scope: BeatScope) -> WireBeat {
        WireBeat {
            record: HeartbeatRecord::new(
                seq,
                seq.wrapping_mul(1_000).wrapping_add(7),
                Tag::new(seq.wrapping_mul(3)),
                BeatThreadId(2),
            ),
            scope,
        }
    }

    #[test]
    fn hello_roundtrip() {
        let frame = Frame::Hello(Hello {
            app: "x264".into(),
            pid: 1234,
            default_window: 20,
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn beats_roundtrip_preserves_records_and_scopes() {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 99,
            beats: vec![
                beat(0, BeatScope::Global),
                beat(1, BeatScope::Local),
                beat(u64::MAX / 2, BeatScope::Global),
            ],
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let frame = Frame::Beats(BeatBatch::default());
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn target_and_bye_roundtrip() {
        for frame in [
            Frame::Target {
                min_bps: 29.97,
                max_bps: 35.5,
            },
            Frame::Bye,
        ] {
            let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut buf = Vec::new();
        Frame::Bye.encode_into(&mut buf);
        Frame::Target {
            min_bps: 1.0,
            max_bps: 2.0,
        }
        .encode_into(&mut buf);
        let (first, used) = Frame::decode(&buf).unwrap();
        assert_eq!(first, Frame::Bye);
        let (second, used2) = Frame::decode(&buf[used..]).unwrap();
        assert!(matches!(second, Frame::Target { .. }));
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes[4] = VERSION + 1;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes[5] = 200;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("kind")
        ));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let frame = Frame::Hello(Hello {
            app: "bodytrack".into(),
            pid: 1,
            default_window: 10,
        });
        let mut bytes = frame.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("CRC")
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_before_reading() {
        let mut bytes = Frame::Bye.encode();
        bytes[6..10].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("limit")
        ));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let bytes = Frame::Hello(Hello {
            app: "ferret".into(),
            pid: 2,
            default_window: 30,
        })
        .encode();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            assert!(Frame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn invalid_scope_byte_is_rejected() {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 0,
            beats: vec![beat(5, BeatScope::Global)],
        });
        let mut bytes = frame.encode();
        // The scope is the final byte of the only record.
        let last = bytes.len() - 1;
        bytes[last] = 7;
        // Recompute the CRC so scope validation (not the checksum) trips.
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("scope")
        ));
    }

    #[test]
    fn count_length_mismatch_is_rejected() {
        let frame = Frame::Beats(BeatBatch {
            dropped_total: 0,
            beats: vec![beat(1, BeatScope::Global)],
        });
        let mut bytes = frame.encode();
        // Claim two records while carrying one.
        bytes[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&2u32.to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn non_finite_target_is_rejected() {
        let mut bytes = Frame::Target {
            min_bps: 1.0,
            max_bps: 2.0,
        }
        .encode();
        bytes[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn whitespace_and_quote_names_are_rejected_on_decode() {
        for bad in ["two words", "line\nbreak", "tab\there", "quo\"te", "back\\slash"] {
            let bytes = Frame::Hello(Hello {
                app: bad.into(),
                pid: 1,
                default_window: 20,
            })
            .encode();
            assert!(
                matches!(Frame::decode(&bytes), Err(NetError::Protocol(_))),
                "name {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn sanitize_app_name_produces_valid_names() {
        assert_eq!(sanitize_app_name("my app"), "my-app");
        assert_eq!(sanitize_app_name("ok-name"), "ok-name");
        assert_eq!(sanitize_app_name(""), "unnamed");
        let long = "x".repeat(MAX_NAME_LEN * 2);
        assert_eq!(sanitize_app_name(&long).len(), MAX_NAME_LEN);
        for weird in ["a\nb", "c\"d", "e\\f", "  ", "\u{7}bell"] {
            assert!(
                valid_app_name(&sanitize_app_name(weird)),
                "sanitized {weird:?} must be valid"
            );
        }
    }

    #[test]
    fn batch_encoder_matches_frame_encoding() {
        let beats: Vec<WireBeat> = (0..100)
            .map(|i| beat(i, if i % 3 == 0 { BeatScope::Local } else { BeatScope::Global }))
            .collect();
        let via_frame = Frame::Beats(BeatBatch {
            dropped_total: 7,
            beats: beats.clone(),
        })
        .encode();
        let mut encoder = BatchEncoder::new();
        encoder.begin(7);
        for b in &beats {
            assert!(encoder.push(b));
        }
        assert_eq!(encoder.beats(), 100);
        assert_eq!(encoder.finish(), via_frame.as_slice(), "byte-identical encodings");
    }

    #[test]
    fn batch_encoder_is_reusable_across_batches() {
        let mut encoder = BatchEncoder::new();
        encoder.begin(0);
        encoder.push(&beat(1, BeatScope::Global));
        let first = encoder.finish().to_vec();

        encoder.begin(5);
        encoder.push(&beat(2, BeatScope::Global));
        encoder.push(&beat(3, BeatScope::Local));
        let (frame, _) = Frame::decode(encoder.finish()).unwrap();
        match frame {
            Frame::Beats(batch) => {
                assert_eq!(batch.dropped_total, 5);
                assert_eq!(batch.beats.len(), 2);
                assert_eq!(batch.beats[1].scope, BeatScope::Local);
            }
            other => panic!("expected beats frame, got {other:?}"),
        }
        // The earlier batch was independent and valid too.
        assert!(matches!(Frame::decode(&first), Ok((Frame::Beats(_), _))));
    }

    #[test]
    fn batch_encoder_empty_batch_is_valid() {
        let mut encoder = BatchEncoder::new();
        encoder.begin(42);
        assert!(encoder.is_empty());
        let (frame, _) = Frame::decode(encoder.finish()).unwrap();
        assert_eq!(
            frame,
            Frame::Beats(BeatBatch {
                dropped_total: 42,
                beats: vec![],
            })
        );
    }

    #[test]
    fn batch_encoder_refuses_overflow() {
        let mut encoder = BatchEncoder::new();
        encoder.begin(0);
        let sample = beat(0, BeatScope::Global);
        for _ in 0..MAX_BATCH_BEATS {
            assert!(encoder.push(&sample));
        }
        assert!(!encoder.push(&sample), "frame at capacity rejects more beats");
        assert_eq!(encoder.beats(), MAX_BATCH_BEATS);
        // Still decodable at the payload ceiling.
        assert!(Frame::decode(encoder.finish()).is_ok());
    }

    #[test]
    fn history_and_health_frames_roundtrip() {
        use crate::health::{HealthReason, HealthReport, HealthStatus, HistorySample};
        let frames = [
            Frame::HistoryReq {
                app: "x264".into(),
                limit: 128,
            },
            Frame::History(HistoryChunk {
                app: "x264".into(),
                known: true,
                total: 5_000,
                samples: vec![
                    HistorySample {
                        seq: 1,
                        timestamp_ns: 1_000,
                        tag: 7,
                        interval_ns: 0,
                        rate_bps: None,
                    },
                    HistorySample {
                        seq: 2,
                        timestamp_ns: 2_000,
                        tag: 8,
                        interval_ns: 1_000,
                        rate_bps: Some(29.97),
                    },
                ],
            }),
            Frame::History(HistoryChunk {
                app: "ghost".into(),
                known: false,
                total: 0,
                samples: vec![],
            }),
            Frame::HealthReq { app: "dedup".into() },
            Frame::Health(HealthFrame {
                app: "dedup".into(),
                known: true,
                report: HealthReport {
                    status: HealthStatus::Degraded,
                    reasons: vec![HealthReason::RateBelowTarget, HealthReason::JitterSpike],
                    window_beats: 42,
                    window_rate_bps: Some(12.5),
                    jitter_cv: Some(1.75),
                    missing: 3,
                    duplicated: 0,
                    reordered: 1,
                    silent_ns: 250_000_000,
                },
            }),
            Frame::Health(HealthFrame {
                app: "ghost".into(),
                known: false,
                report: HealthReport::no_signal(),
            }),
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(bytes[4], 2, "health query frames are version 2");
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn v1_frames_still_encode_as_version_1() {
        // A version-1-only peer must keep accepting producer frames.
        for frame in [
            Frame::Hello(Hello {
                app: "legacy".into(),
                pid: 1,
                default_window: 20,
            }),
            Frame::Beats(BeatBatch::default()),
            Frame::Target {
                min_bps: 1.0,
                max_bps: 2.0,
            },
            Frame::Bye,
        ] {
            assert_eq!(frame.encode()[4], 1, "{frame:?}");
        }
    }

    #[test]
    fn v2_kind_in_v1_header_is_rejected() {
        let mut bytes = Frame::HealthReq { app: "app".into() }.encode();
        bytes[4] = 1; // claim version 1 for a version-2 kind
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("requires protocol version 2")
        ));
    }

    #[test]
    fn v2_header_accepts_v1_kinds() {
        // Version upgrades are backward compatible: a v2 header on an old
        // kind still decodes.
        let mut bytes = Frame::Bye.encode();
        bytes[4] = 2;
        assert_eq!(Frame::decode(&bytes).unwrap().0, Frame::Bye);
    }

    #[test]
    fn infinite_rate_in_sample_is_rejected() {
        let frame = Frame::History(HistoryChunk {
            app: "x".into(),
            known: true,
            total: 1,
            samples: vec![HistorySample {
                seq: 0,
                timestamp_ns: 0,
                tag: 0,
                interval_ns: 0,
                rate_bps: Some(1.0),
            }],
        });
        let mut bytes = frame.encode();
        // The rate is the final 8 bytes of the only sample.
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("non-finite")
        ));
    }

    #[test]
    fn invalid_health_status_byte_is_rejected() {
        let frame = Frame::Health(HealthFrame {
            app: "x".into(),
            known: true,
            report: HealthReport::no_signal(),
        });
        let mut bytes = frame.encode();
        bytes[HEADER_LEN + 1] = 200; // status byte
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(NetError::Protocol(msg)) if msg.contains("status")
        ));
    }

    #[test]
    fn history_count_mismatch_is_rejected() {
        let frame = Frame::History(HistoryChunk {
            app: "x".into(),
            known: true,
            total: 1,
            samples: vec![],
        });
        let mut bytes = frame.encode();
        // Claim one sample while carrying none.
        bytes[HEADER_LEN + 1..HEADER_LEN + 5].copy_from_slice(&1u32.to_le_bytes());
        let crc = crate::crc::crc32(&bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn max_history_samples_fit_one_frame() {
        let chunk = HistoryChunk {
            app: "n".repeat(MAX_NAME_LEN),
            known: true,
            total: u64::MAX,
            samples: vec![
                HistorySample {
                    seq: 0,
                    timestamp_ns: 0,
                    tag: 0,
                    interval_ns: 0,
                    rate_bps: None,
                };
                MAX_HISTORY_SAMPLES
            ],
        };
        let bytes = Frame::History(chunk).encode();
        assert!(bytes.len() - HEADER_LEN <= MAX_PAYLOAD);
        assert!(Frame::decode(&bytes).is_ok());
    }

    /// Pins the worked hex examples in `docs/WIRE.md` byte for byte, so the
    /// documentation cannot rot silently.
    #[test]
    fn worked_examples_match_wire_md() {
        fn hex(bytes: &[u8]) -> String {
            bytes
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
        assert_eq!(
            hex(&Frame::Bye.encode()),
            "48 42 57 54 01 04 00 00 00 00 00 00 00 00"
        );
        assert_eq!(
            hex(
                &Frame::Hello(Hello {
                    app: "cam".into(),
                    pid: 7,
                    default_window: 20,
                })
                .encode()
            ),
            "48 42 57 54 01 01 0d 00 00 00 0d 1b ff c1 \
             07 00 00 00 14 00 00 00 03 00 63 61 6d"
        );
        assert_eq!(
            hex(&Frame::HealthReq { app: "cam".into() }.encode()),
            "48 42 57 54 02 07 05 00 00 00 b7 bf f6 84 03 00 63 61 6d"
        );
        assert_eq!(
            hex(
                &Frame::HistoryReq {
                    app: "cam".into(),
                    limit: 2,
                }
                .encode()
            ),
            "48 42 57 54 02 05 09 00 00 00 82 74 2b 8a \
             02 00 00 00 03 00 63 61 6d"
        );
    }

    #[test]
    fn encode_into_reuses_buffer_without_clearing() {
        let mut buf = vec![0xAB];
        Frame::Bye.encode_into(&mut buf);
        assert_eq!(buf[0], 0xAB);
        let (frame, used) = Frame::decode(&buf[1..]).unwrap();
        assert_eq!(frame, Frame::Bye);
        assert_eq!(used, buf.len() - 1);
    }
}
