//! Error type for the heartbeat network layer.

use std::fmt;
use std::io;

/// Errors produced while encoding, decoding or transporting heartbeat
/// telemetry.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level I/O failure (connect, read, write).
    Io(io::Error),
    /// A frame violated the wire protocol (bad magic, version, CRC, length
    /// or payload contents). Carries a human-readable description.
    Protocol(String),
    /// The peer closed the connection mid-frame.
    UnexpectedEof,
    /// A query-port response could not be interpreted.
    BadResponse(String),
    /// The peer cannot provide the requested operation — e.g. subscribing
    /// through a collector that negotiated a wire version older than 3,
    /// which would never acknowledge a `Subscribe` frame.
    Unsupported(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "I/O error: {err}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::UnexpectedEof => write!(f, "connection closed mid-frame"),
            NetError::BadResponse(msg) => write!(f, "malformed collector response: {msg}"),
            NetError::Unsupported(msg) => write!(f, "unsupported by peer: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(err: io::Error) -> Self {
        NetError::Io(err)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::Protocol("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(NetError::UnexpectedEof.to_string().contains("mid-frame"));
        assert!(NetError::Unsupported("v2 collector".into())
            .to_string()
            .contains("v2 collector"));
        let io_err: NetError = io::Error::new(io::ErrorKind::ConnectionRefused, "nope").into();
        assert!(io_err.to_string().contains("nope"));
        assert!(std::error::Error::source(&io_err).is_some());
    }
}
