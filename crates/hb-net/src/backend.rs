//! [`TcpBackend`] — mirrors a heartbeat stream to a remote collector over
//! TCP without ever blocking the producer's hot path.
//!
//! `on_beat` only pushes the record into a bounded in-memory queue; a
//! dedicated flusher thread drains the queue in batches, maintains the
//! connection (including reconnection with backoff) and ships
//! [`Frame`]s. When the collector is slow or down the queue fills and the
//! backend sheds the *oldest* queued beats, counting every loss — the
//! freshest telemetry is the most valuable, and the producer never stalls.
//!
//! On every (re)connect the flusher sends its hello and then briefly waits
//! for the collector's [`Frame::HelloAck`]. A version-3 ack switches the
//! connection to **compact beat framing** (delta/varint records, ~5 bytes
//! per beat instead of 29); no ack within
//! [`TcpBackendConfig::negotiate_timeout`] means an old collector, and the
//! flusher stays on the universally accepted version-2 encoding. The
//! outcome is visible via [`TcpBackend::negotiated_compact`].

use std::collections::VecDeque;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use heartbeats::{Backend, BackendStats, BeatScope, HeartbeatRecord};

use crate::frame::{FrameDecoder, FrameWriter};
use crate::wire::{self, BatchEncoder, Frame, Hello, WireBeat, MAX_BATCH_BEATS};

/// Tuning knobs for a [`TcpBackend`].
#[derive(Debug, Clone)]
pub struct TcpBackendConfig {
    /// Maximum beats buffered while the collector is unreachable or slow;
    /// beyond this the oldest queued beat is shed (and counted).
    pub queue_capacity: usize,
    /// Maximum records shipped per [`Frame::Beats`].
    pub batch_max: usize,
    /// Historical idle re-check interval. The flusher is now purely
    /// notification-driven — every enqueue, target change, and shutdown
    /// signals it, so an idle flusher parks without timed wakeups and this
    /// value is no longer read. Retained so existing configurations keep
    /// compiling.
    pub flush_interval: Duration,
    /// Delay between reconnection attempts while the collector is down.
    pub reconnect_backoff: Duration,
    /// The rate window advertised in the hello frame so the collector's
    /// server-side estimate matches the producer's default window.
    pub default_window: u32,
    /// Process id advertised in the hello frame.
    pub pid: u32,
    /// Diagnostic/benchmark mode: ship one [`Frame::Beats`] per beat
    /// instead of coalescing a whole flush into one frame. The batched path
    /// (`false`, the default) amortizes the 14-byte header, the CRC pass
    /// and the syscall over every beat drained per flush.
    pub frame_per_beat: bool,
    /// Negotiate compact (version-3, delta/varint) beat framing when the
    /// collector acknowledges support (the default). `false` pins the
    /// connection to the fixed-width version-2 encoding — a diagnostic
    /// escape hatch and the benchmark baseline.
    pub prefer_compact: bool,
    /// How long to wait for the collector's [`Frame::HelloAck`] after each
    /// (re)connect before concluding the peer predates version 3 and
    /// falling back to version-2 framing. Paid once per connection
    /// establishment, and only against collectors that never answer.
    pub negotiate_timeout: Duration,
}

impl Default for TcpBackendConfig {
    fn default() -> Self {
        TcpBackendConfig {
            queue_capacity: 8192,
            batch_max: 512,
            flush_interval: Duration::from_millis(5),
            reconnect_backoff: Duration::from_millis(100),
            default_window: heartbeats::DEFAULT_WINDOW as u32,
            pid: std::process::id(),
            frame_per_beat: false,
            prefer_compact: true,
            negotiate_timeout: Duration::from_millis(100),
        }
    }
}

#[derive(Debug)]
struct Inner {
    queue: VecDeque<WireBeat>,
    /// Configured bound on `queue` (a `VecDeque`'s real allocation may be
    /// larger than requested, so the bound is tracked explicitly).
    capacity: usize,
    /// Latest declared target; `dirty` marks it unsent (set on change and on
    /// reconnect so goals survive collector restarts).
    target: Option<(f64, f64)>,
    target_dirty: bool,
    stop: bool,
}

#[derive(Debug)]
struct Shared {
    inner: Mutex<Inner>,
    wake: Condvar,
    dropped: AtomicU64,
    sent: AtomicU64,
    connected: AtomicBool,
    /// True while the live connection negotiated compact (v3) framing.
    compact: AtomicBool,
}

/// A [`Backend`] that ships heartbeats to an `hb-collector` over TCP.
///
/// The constructor does not require the collector to be up: the flusher
/// connects lazily and keeps retrying, buffering (and eventually shedding)
/// beats in the meantime. All backpressure is visible through
/// [`Backend::stats`].
///
/// ```
/// use std::sync::Arc;
/// use hb_net::{Collector, TcpBackend};
/// use heartbeats::{Backend, HeartbeatBuilder};
///
/// let collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").unwrap();
/// let backend = Arc::new(TcpBackend::new(
///     collector.ingest_addr().to_string(),
///     "doc app", // names are sanitized to the wire's rules
/// ));
/// assert_eq!(backend.app(), "doc-app");
///
/// let hb = HeartbeatBuilder::new("doc-app")
///     .backend(Arc::clone(&backend) as Arc<dyn Backend>)
///     .build()
///     .unwrap();
/// hb.heartbeat();
/// hb.flush().unwrap(); // best effort: nudges the flusher thread
/// assert_eq!(hb.total_beats(), 1);
/// ```
#[derive(Debug)]
pub struct TcpBackend {
    app: String,
    shared: Arc<Shared>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl TcpBackend {
    /// Creates a backend for application `app` shipping to `addr`
    /// (`host:port`) with default tuning.
    pub fn new(addr: impl Into<String>, app: impl Into<String>) -> Self {
        Self::with_config(addr, app, TcpBackendConfig::default())
    }

    /// Creates a backend with explicit tuning.
    ///
    /// The application name is sanitized to the wire's rules (no
    /// whitespace/control/quote characters, bounded length) and
    /// `batch_max` is clamped so every batch fits one frame — otherwise a
    /// collector would reject the stream on every connect.
    pub fn with_config(
        addr: impl Into<String>,
        app: impl Into<String>,
        mut config: TcpBackendConfig,
    ) -> Self {
        let addr = addr.into();
        let app = wire::sanitize_app_name(&app.into());
        config.batch_max = config.batch_max.clamp(1, MAX_BATCH_BEATS);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(config.queue_capacity.min(1 << 16)),
                capacity: config.queue_capacity.max(1),
                target: None,
                target_dirty: false,
                stop: false,
            }),
            wake: Condvar::new(),
            dropped: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            compact: AtomicBool::new(false),
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            let app = app.clone();
            std::thread::Builder::new()
                .name(format!("hb-net-flusher-{app}"))
                .spawn(move || flusher_loop(&shared, &addr, &app, &config))
                .expect("failed to spawn hb-net flusher thread")
        };
        TcpBackend {
            app,
            shared,
            flusher: Some(flusher),
        }
    }

    /// The application name announced to the collector.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Beats successfully handed to the TCP stream so far.
    pub fn sent(&self) -> u64 {
        self.shared.sent.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// Beats shed under backpressure (queue overflow or dead connection).
    pub fn dropped_beats(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// Whether the flusher currently holds a live connection.
    pub fn is_connected(&self) -> bool {
        self.shared.connected.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// Whether the live connection negotiated compact (version-3) beat
    /// framing. `false` while disconnected, when
    /// [`TcpBackendConfig::prefer_compact`] is off, or when the collector
    /// never acknowledged version 3 (an old peer — the v2 fallback).
    pub fn negotiated_compact(&self) -> bool {
        self.shared.compact.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }

    /// Beats currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
    }
}

impl Backend for TcpBackend {
    fn on_beat(&self, _app: &str, record: &HeartbeatRecord, scope: BeatScope) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.queue.len() >= inner.capacity {
            // Drop-oldest: fresh telemetry is worth more than stale.
            inner.queue.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
        }
        inner.queue.push_back(WireBeat {
            record: *record,
            scope,
        });
        drop(inner);
        self.shared.wake.notify_one();
    }

    fn on_target_change(&self, _app: &str, min_bps: f64, max_bps: f64) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.target = Some((min_bps, max_bps));
        inner.target_dirty = true;
        drop(inner);
        self.shared.wake.notify_one();
    }

    fn flush(&self) -> heartbeats::Result<()> {
        // Best effort: give the flusher a moment to drain, but never block
        // the caller on a dead collector.
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            let drained = {
                let inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.queue.is_empty() && !inner.target_dirty
            };
            if drained || !self.is_connected() || Instant::now() >= deadline {
                return Ok(());
            }
            self.shared.wake.notify_one();
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            mirrored: self.sent(),
            dropped: self.dropped_beats(),
        }
    }
}

impl Drop for TcpBackend {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.stop = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

enum Work {
    /// Drained work to ship.
    Batch {
        beats: Vec<WireBeat>,
        target: Option<(f64, f64)>,
    },
    /// Stop requested and nothing left to ship.
    Shutdown,
}

fn collect_work(shared: &Shared, config: &TcpBackendConfig) -> Work {
    let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if !inner.queue.is_empty() || inner.target_dirty {
            let n = inner.queue.len().min(config.batch_max);
            let beats: Vec<WireBeat> = inner.queue.drain(..n).collect();
            let target = if inner.target_dirty {
                inner.target_dirty = false;
                inner.target
            } else {
                None
            };
            return Work::Batch { beats, target };
        }
        if inner.stop {
            return Work::Shutdown;
        }
        // Every transition out of "empty queue, no dirty target, not
        // stopping" signals `wake` (`on_beat`, `on_target_change`,
        // `flush`, drop), so an idle flusher parks indefinitely instead of
        // spinning on a timed re-check — with hundreds of mostly-idle
        // producers on one host, periodic wakeups alone were measurable
        // scheduler load.
        inner = shared.wake.wait(inner).unwrap_or_else(|e| e.into_inner());
    }
}

fn flusher_loop(shared: &Shared, addr: &str, app: &str, config: &TcpBackendConfig) {
    let mut connection: Option<FrameWriter<TcpStream>> = None;
    let mut compact = false;
    let mut last_attempt: Option<Instant> = None;
    let mut encoder = BatchEncoder::new();
    loop {
        let work = collect_work(shared, config);
        let (beats, target) = match work {
            Work::Batch { beats, target } => (beats, target),
            Work::Shutdown => break,
        };

        // (Re)establish the connection, rate-limited by the backoff.
        if connection.is_none() {
            let due = last_attempt
                .map(|t| t.elapsed() >= config.reconnect_backoff)
                .unwrap_or(true);
            if due {
                last_attempt = Some(Instant::now());
                (connection, compact) = match try_connect(addr, app, config) {
                    Some((writer, compact)) => (Some(writer), compact),
                    None => (None, false),
                };
                if connection.is_some() {
                    // Re-announce the goal after every (re)connect.
                    let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                    if inner.target.is_some() {
                        inner.target_dirty = true;
                    }
                }
                shared
                    .connected
                    .store(connection.is_some(), Ordering::Relaxed); // ordering: advisory flag/stat; no payload is published with it
                shared.compact.store(compact, Ordering::Relaxed); // ordering: advisory flag/stat; no payload is published with it
            }
        }

        let Some(writer) = connection.as_mut() else {
            // Collector unreachable: shed this batch (counted) and let the
            // target stay pending for the next successful connect.
            shared
                .dropped
                .fetch_add(beats.len() as u64, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
            if let Some(t) = target {
                let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.target = Some(t);
                inner.target_dirty = true;
            }
            // Avoid a hot spin while down: nap one backoff unless stopping.
            let inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if !inner.stop {
                let _ = shared
                    .wake
                    .wait_timeout(inner, config.reconnect_backoff)
                    .unwrap_or_else(|e| e.into_inner());
            }
            continue;
        };

        let sent_len = beats.len() as u64;
        let result = ship(writer, &mut encoder, &beats, target, config, shared, compact);
        match result {
            Ok(()) => {
                shared.sent.fetch_add(sent_len, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
            }
            Err(_) => {
                // The batch is lost with the connection; count it and retry
                // the link on the next pass.
                shared.dropped.fetch_add(sent_len, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
                connection = None;
                shared.connected.store(false, Ordering::Relaxed); // ordering: advisory flag/stat; no payload is published with it
                shared.compact.store(false, Ordering::Relaxed); // ordering: advisory flag/stat; no payload is published with it
            }
        }
    }
    // Orderly goodbye if we still hold a link.
    if let Some(writer) = connection.as_mut() {
        let _ = writer.write_frame(&Frame::Bye);
        let _ = writer.flush();
    }
    // Anything left in the queue at shutdown is lost; account for it.
    let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
    let remaining = inner.queue.len() as u64;
    if remaining > 0 {
        inner.queue.clear();
        shared.dropped.fetch_add(remaining, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
    }
    shared.connected.store(false, Ordering::Relaxed); // ordering: advisory flag/stat; no payload is published with it
    shared.compact.store(false, Ordering::Relaxed); // ordering: advisory flag/stat; no payload is published with it
}

/// Connects, sends the hello, and — when compact framing is preferred —
/// waits briefly for the collector's [`Frame::HelloAck`]. Returns the
/// writer plus whether the connection negotiated compact (version-3)
/// framing.
fn try_connect(
    addr: &str,
    app: &str,
    config: &TcpBackendConfig,
) -> Option<(FrameWriter<TcpStream>, bool)> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok();
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .ok();
    let mut writer = FrameWriter::new(stream);
    writer
        .write_frame(&Frame::Hello(Hello {
            app: app.to_string(),
            pid: config.pid,
            default_window: config.default_window,
        }))
        .ok()?;
    writer.flush().ok()?;
    let compact = config.prefer_compact && negotiate_compact(writer.get_ref(), config);
    Some((writer, compact))
}

/// Reads the collector's hello acknowledgment off the freshly connected
/// ingest socket, bounded by [`TcpBackendConfig::negotiate_timeout`]. Old
/// collectors never write on this socket, so the timeout (or any read
/// error, EOF, or unexpected frame) means "assume version 2".
fn negotiate_compact(stream: &TcpStream, config: &TcpBackendConfig) -> bool {
    let timeout = config.negotiate_timeout.max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return false;
    }
    let deadline = Instant::now() + timeout;
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64];
    let mut reader = stream;
    let compact = loop {
        match reader.read(&mut buf) {
            Ok(0) => break false, // collector hung up
            Ok(n) => {
                decoder.push(&buf[..n]);
                match decoder.next_frame() {
                    Ok(Some(Frame::HelloAck { max_version })) => {
                        break max_version >= 3;
                    }
                    Ok(Some(_)) => break false, // not a hello-ack: old/odd peer
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            break false;
                        }
                    }
                    Err(_) => break false,
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {
                if Instant::now() >= deadline {
                    break false;
                }
            }
            Err(_) => break false, // timeout (WouldBlock/TimedOut) or dead link
        }
    };
    // The flusher never reads again; restore the blocking default anyway so
    // the socket's behavior is unsurprising to future code.
    stream.set_read_timeout(None).ok();
    compact
}

/// Ships one drained flush: an optional target frame plus the beats —
/// coalesced into a single beats frame by the streaming [`BatchEncoder`]
/// (compact version-3 framing when the connection negotiated it, else the
/// fixed-width version-2 encoding), or framed one beat at a time when
/// [`TcpBackendConfig::frame_per_beat`] asks for the diagnostic path.
#[allow(clippy::too_many_arguments)]
fn ship(
    writer: &mut FrameWriter<TcpStream>,
    encoder: &mut BatchEncoder,
    beats: &[WireBeat],
    target: Option<(f64, f64)>,
    config: &TcpBackendConfig,
    shared: &Shared,
    compact: bool,
) -> crate::error::Result<()> {
    let begin = |encoder: &mut BatchEncoder, dropped_total: u64| {
        if compact {
            encoder.begin_compact(dropped_total);
        } else {
            encoder.begin(dropped_total);
        }
    };
    if let Some((min_bps, max_bps)) = target {
        writer.write_frame(&Frame::Target { min_bps, max_bps })?;
    }
    if !beats.is_empty() {
        let dropped_total = shared.dropped.load(Ordering::Relaxed); // ordering: drop total piggybacks on the batch frame; cross-thread exactness is not required
        if config.frame_per_beat {
            for beat in beats {
                begin(encoder, dropped_total);
                encoder.push(beat);
                writer.write_encoded(encoder.finish())?;
            }
        } else {
            begin(encoder, dropped_total);
            for beat in beats {
                if !encoder.push(beat) {
                    // The frame filled mid-flush (only possible when every
                    // compact record is near its varint worst case): seal
                    // and ship it, then continue in a fresh frame — no beat
                    // is ever silently lost to the frame bound.
                    writer.write_encoded(encoder.finish())?;
                    begin(encoder, dropped_total);
                    let pushed = encoder.push(beat);
                    debug_assert!(pushed, "an empty frame must accept a record");
                }
            }
            writer.write_encoded(encoder.finish())?;
        }
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heartbeats::{BeatThreadId, Tag};

    fn record(seq: u64) -> HeartbeatRecord {
        HeartbeatRecord::new(seq, seq * 1_000, Tag::NONE, BeatThreadId(0))
    }

    #[test]
    fn on_beat_never_blocks_without_a_collector() {
        // Grab a port with no listener behind it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let backend = TcpBackend::with_config(
            addr.to_string(),
            "orphan",
            TcpBackendConfig {
                queue_capacity: 64,
                ..TcpBackendConfig::default()
            },
        );
        let start = Instant::now();
        for i in 0..10_000u64 {
            backend.on_beat("orphan", &record(i), BeatScope::Global);
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "10k beats into a dead collector must not stall"
        );
        assert!(backend.queue_len() <= 64);
        drop(backend);
    }

    #[test]
    fn dropped_counter_reflects_shedding() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let backend = TcpBackend::with_config(
            addr.to_string(),
            "shed",
            TcpBackendConfig {
                queue_capacity: 16,
                reconnect_backoff: Duration::from_millis(10),
                ..TcpBackendConfig::default()
            },
        );
        for i in 0..1_000u64 {
            backend.on_beat("shed", &record(i), BeatScope::Global);
        }
        // Queue overflow alone guarantees visible drops immediately.
        assert!(backend.dropped_beats() > 0);
        let stats = backend.stats();
        assert_eq!(stats.mirrored, 0, "nothing can have been sent");
        drop(backend);
    }

    #[test]
    fn drop_accounts_for_unsent_queue() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let backend = TcpBackend::new(addr.to_string(), "leftover");
        for i in 0..100u64 {
            backend.on_beat("leftover", &record(i), BeatScope::Global);
        }
        let shared = Arc::clone(&backend.shared);
        drop(backend);
        assert_eq!(shared.dropped.load(Ordering::Relaxed), 100);
        assert!(shared.inner.lock().unwrap().queue.is_empty());
    }

    #[test]
    fn flush_returns_quickly_when_disconnected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let backend = TcpBackend::new(addr.to_string(), "flush");
        backend.on_beat("flush", &record(0), BeatScope::Global);
        let start = Instant::now();
        backend.flush().unwrap();
        assert!(start.elapsed() < Duration::from_millis(500));
    }
}
