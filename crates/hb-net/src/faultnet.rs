//! # faultnet — a deterministic in-process chaos proxy
//!
//! Sits between any client (or uplink relay) and a collector and injects
//! network faults on a **seeded, reproducible schedule**: partial
//! writes/fragmentation, byte corruption, frame truncation followed by a
//! reset, bounded delays, connection resets, and hard partitions. The
//! federation hardening tests (`tests/federation_chaos.rs`) run the whole
//! collector tree through these proxies and assert that the exactly-once
//! rollup ledger and the resumable event plane hold regardless of what the
//! network does.
//!
//! Determinism: every forwarding direction of every accepted connection
//! gets its own SplitMix64 stream derived from `(seed, connection index,
//! direction)`. Given the same seed and the same connection arrival order,
//! the fault schedule is identical — a failing chaos run reproduces from
//! its logged seed. (Thread scheduling still jitters *timing*, which is why
//! the tests assert ledger invariants, not byte-exact traces.)
//!
//! The proxy is test infrastructure, but it lives in the library (not under
//! `#[cfg(test)]`) so integration tests, soaks, and downstream crates can
//! all drive it; it holds no state beyond its own sockets and counters.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Probabilities are expressed in parts-per-10000 of each forwarded chunk
/// (a `read` result), so integer arithmetic keeps the schedule exact.
const PROB_DENOM: u64 = 10_000;

/// Fault schedule for a [`FaultProxy`]. All probabilities are per forwarded
/// chunk, in parts per 10 000 (`250` = 2.5 %). The default config is a
/// moderately hostile network: frequent fragmentation, occasional
/// corruption and truncating resets, rare outright resets.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the fault schedule. The same seed (with the same
    /// connection arrival order) replays the same faults.
    pub seed: u64,
    /// Chance of fragmenting a chunk: forward a random prefix, then the
    /// remainder as a separate write (exercises partial-read handling).
    pub fragment_prob: u64,
    /// Chance of flipping one byte of the chunk before forwarding
    /// (exercises CRC rejection — must surface as `NetError`, never apply).
    pub corrupt_prob: u64,
    /// Chance of forwarding only a prefix of the chunk and then resetting
    /// the connection (a frame truncated at an arbitrary boundary).
    pub truncate_prob: u64,
    /// Chance of sleeping up to [`max_delay`](Self::max_delay) before
    /// forwarding the chunk.
    pub delay_prob: u64,
    /// Chance of resetting the connection without forwarding anything.
    pub reset_prob: u64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0x5eed_f417,
            fragment_prob: 1_500,
            corrupt_prob: 120,
            truncate_prob: 120,
            delay_prob: 400,
            reset_prob: 40,
            max_delay: Duration::from_millis(5),
        }
    }
}

impl FaultConfig {
    /// A schedule that injects nothing — the proxy becomes a plain relay
    /// (still supports [`FaultProxy::partition`] / [`FaultProxy::sever`]).
    pub fn passthrough(seed: u64) -> Self {
        FaultConfig {
            seed,
            fragment_prob: 0,
            corrupt_prob: 0,
            truncate_prob: 0,
            delay_prob: 0,
            reset_prob: 0,
            max_delay: Duration::ZERO,
        }
    }
}

/// Counters for every fault the proxy actually injected, plus traffic
/// totals. All monotone; readable while the proxy runs.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Connections accepted (and proxied) so far.
    pub connections: AtomicU64,
    /// Connections refused because the proxy was partitioned.
    pub refused: AtomicU64,
    /// Chunks forwarded in two fragments.
    pub fragments: AtomicU64,
    /// Chunks with a byte flipped.
    pub corruptions: AtomicU64,
    /// Connections reset after forwarding a truncated chunk.
    pub truncations: AtomicU64,
    /// Chunks delayed before forwarding.
    pub delays: AtomicU64,
    /// Connections reset without forwarding.
    pub resets: AtomicU64,
    /// Total bytes forwarded (after any truncation).
    pub bytes: AtomicU64,
}

impl FaultStats {
    /// Total faults of every kind injected so far.
    pub fn total_faults(&self) -> u64 {
        self.fragments.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
            + self.corruptions.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
            + self.truncations.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
            + self.delays.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
            + self.resets.load(Ordering::Relaxed) // ordering: monitoring read; staleness is acceptable
    }
}

/// A TCP proxy that forwards to `target` while injecting the faults its
/// [`FaultConfig`] schedules. Point a `TcpBackend` or an
/// `UpstreamConfig.parent` at [`addr`](Self::addr) instead of the real
/// collector address.
#[derive(Debug)]
pub struct FaultProxy {
    addr: String,
    config: Arc<FaultConfig>,
    stats: Arc<FaultStats>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    partitioned: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
}

impl FaultProxy {
    /// Binds an ephemeral local port and starts proxying to `target`.
    pub fn spawn(target: String, config: FaultConfig) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("faultnet bind");
        let addr = listener.local_addr().expect("faultnet addr").to_string();
        let config = Arc::new(config);
        let stats = Arc::new(FaultStats::default());
        let conns = Arc::new(Mutex::new(Vec::<TcpStream>::new()));
        let partitioned = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        {
            let config = Arc::clone(&config);
            let stats = Arc::clone(&stats);
            let conns = Arc::clone(&conns);
            let partitioned = Arc::clone(&partitioned);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                let mut index = 0u64;
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) { // ordering: control-plane toggle; SeqCst keeps the rare path simple
                        break;
                    }
                    let Ok(client) = stream else { break };
                    if partitioned.load(Ordering::SeqCst) { // ordering: control-plane toggle; SeqCst keeps the rare path simple
                        stats.refused.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                    let Ok(server) = TcpStream::connect(&target) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    stats.connections.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
                    {
                        let mut live = conns.lock().unwrap_or_else(|e| e.into_inner());
                        live.retain(|c| c.peer_addr().is_ok());
                        live.push(client.try_clone().expect("clone"));
                        live.push(server.try_clone().expect("clone"));
                    }
                    let (c2, s2) = (
                        client.try_clone().expect("clone"),
                        server.try_clone().expect("clone"),
                    );
                    // Each direction draws from its own stream so faults on
                    // one leg never perturb the other's schedule.
                    let up = FaultRng::new(config.seed, index, 0);
                    let down = FaultRng::new(config.seed, index, 1);
                    index += 1;
                    let (cfg_a, st_a) = (Arc::clone(&config), Arc::clone(&stats));
                    let (cfg_b, st_b) = (Arc::clone(&config), Arc::clone(&stats));
                    thread::spawn(move || faulty_pipe(client, server, up, cfg_a, st_a));
                    thread::spawn(move || faulty_pipe(s2, c2, down, cfg_b, st_b));
                }
            });
        }
        FaultProxy {
            addr,
            config,
            stats,
            conns,
            partitioned,
            shutdown,
        }
    }

    /// The proxy's listen address (`host:port`), to use as the dial target.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The fault schedule this proxy runs.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Injected-fault and traffic counters.
    pub fn stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// Hard partition: refuse new connections (and keep refusing until
    /// lifted). Combine with [`sever`](Self::sever) to also kill live ones.
    pub fn partition(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst); // ordering: control-plane toggle; SeqCst keeps the rare path simple
    }

    /// Resets every live proxied connection right now.
    pub fn sever(&self) {
        let mut live = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for conn in live.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Stops accepting, severs everything, and unblocks the accept loop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst); // ordering: control-plane toggle; SeqCst keeps the rare path simple
        self.sever();
        // Poke the listener so `incoming()` observes the flag.
        let _ = TcpStream::connect(&self.addr);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// SplitMix64 — tiny, seedable, and plenty for a fault schedule.
#[derive(Debug)]
struct FaultRng(u64);

impl FaultRng {
    fn new(seed: u64, conn: u64, dir: u64) -> FaultRng {
        // Spread (seed, conn, dir) across the state space so nearby
        // connections get unrelated schedules.
        let mut state = seed ^ conn.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (dir << 62);
        let mut rng = FaultRng(0);
        rng.0 = {
            // One warm-up step decorrelates trivially related seeds.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            mix(state)
        };
        rng
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.0)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn roll(&mut self, prob: u64) -> bool {
        prob > 0 && self.below(PROB_DENOM) < prob
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One proxied direction. Reads chunks and forwards them, rolling the
/// fault dice per chunk. The dice are rolled in a fixed order (reset,
/// truncate, corrupt, delay, fragment) so the consumed random stream — and
/// hence the schedule — is identical run to run.
fn faulty_pipe(
    mut from: TcpStream,
    mut to: TcpStream,
    mut rng: FaultRng,
    config: Arc<FaultConfig>,
    stats: Arc<FaultStats>,
) {
    let mut buf = [0u8; 8192];
    'conn: loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        if rng.roll(config.reset_prob) {
            stats.resets.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
            break;
        }
        let truncate = rng.roll(config.truncate_prob);
        let keep = if truncate {
            // Truncation at an arbitrary byte — deliberately not aligned to
            // any frame boundary, so the receiver sees a torn header or a
            // torn payload depending on the draw.
            rng.below(n as u64) as usize
        } else {
            n
        };
        if rng.roll(config.corrupt_prob) && keep > 0 {
            let at = rng.below(keep as u64) as usize;
            let bit = 1u8 << rng.below(8);
            chunk[at] ^= bit;
            stats.corruptions.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
        }
        if rng.roll(config.delay_prob) {
            let ns = config.max_delay.as_nanos() as u64;
            if ns > 0 {
                thread::sleep(Duration::from_nanos(rng.below(ns)));
            }
            stats.delays.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
        }
        let fragment = rng.roll(config.fragment_prob) && keep > 1;
        let split = if fragment {
            1 + rng.below(keep as u64 - 1) as usize
        } else {
            keep
        };
        for piece in [&chunk[..split.min(keep)], &chunk[split.min(keep)..keep]] {
            if piece.is_empty() {
                continue;
            }
            if to.write_all(piece).is_err() {
                break 'conn;
            }
            stats.bytes.fetch_add(piece.len() as u64, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
            if fragment {
                // A tiny pause between fragments defeats coalescing often
                // enough to actually exercise the partial-read paths.
                thread::sleep(Duration::from_micros(50));
            }
        }
        if fragment {
            stats.fragments.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
        }
        if truncate {
            stats.truncations.fetch_add(1, Ordering::Relaxed); // ordering: relaxed counter; read only for monitoring totals
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Deterministically mangles a byte stream the way the proxy would —
/// corruption, truncation, or both — for offline decoder fuzzing. Returns
/// the mutated copy. Feeding the result to the frame decoder must produce
/// `NetError`s, never a panic (pinned by the wire proptests).
pub fn mangle(seed: u64, bytes: &[u8]) -> Vec<u8> {
    let mut rng = FaultRng::new(seed, 0, 2);
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    // Truncate with probability 1/2, at a uniform byte offset.
    if rng.roll(PROB_DENOM / 2) {
        let keep = rng.below(out.len() as u64 + 1) as usize;
        out.truncate(keep);
    }
    // Flip 1..=4 bits at uniform positions.
    if !out.is_empty() {
        for _ in 0..(1 + rng.below(4)) {
            let at = rng.below(out.len() as u64) as usize;
            out[at] ^= 1u8 << rng.below(8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let mut a = FaultRng::new(7, 3, 0);
        let mut b = FaultRng::new(7, 3, 0);
        let mut c = FaultRng::new(7, 3, 1);
        let left: Vec<u64> = (0..64).map(|_| a.next()).collect();
        let right: Vec<u64> = (0..64).map(|_| b.next()).collect();
        let other: Vec<u64> = (0..64).map(|_| c.next()).collect();
        assert_eq!(left, right, "same (seed, conn, dir) replays identically");
        assert_ne!(left, other, "directions draw from distinct streams");
    }

    #[test]
    fn mangle_is_deterministic_and_mutating() {
        let input: Vec<u8> = (0..128u8).collect();
        let a = mangle(99, &input);
        let b = mangle(99, &input);
        assert_eq!(a, b, "same seed, same mangle");
        assert_ne!(a, input, "mangle must actually mutate");
        assert!(mangle(99, &[]).is_empty());
    }

    #[test]
    fn passthrough_proxy_relays_bytes_untouched() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let target = listener.local_addr().expect("addr").to_string();
        let echo = thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut buf = Vec::new();
            conn.read_to_end(&mut buf).expect("read");
            buf
        });
        let proxy = FaultProxy::spawn(target, FaultConfig::passthrough(1));
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"heartbeat").expect("write");
        drop(client);
        let seen = echo.join().expect("echo thread");
        assert_eq!(seen, b"heartbeat");
        assert_eq!(proxy.stats().total_faults(), 0);
        assert_eq!(proxy.stats().connections.load(Ordering::Relaxed), 1);
        proxy.shutdown();
    }

    #[test]
    fn partition_refuses_new_connections() {
        // Target that never sees a connection while partitioned.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let target = listener.local_addr().expect("addr").to_string();
        let proxy = FaultProxy::spawn(target, FaultConfig::passthrough(2));
        proxy.partition(true);
        let mut probe = TcpStream::connect(proxy.addr()).expect("dial");
        let mut buf = [0u8; 1];
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // The proxy shuts the socket down immediately: read returns 0/err.
        assert!(!matches!(probe.read(&mut buf), Ok(n) if n > 0));
        assert!(proxy.stats().refused.load(Ordering::Relaxed) >= 1);
        proxy.partition(false);
        assert!(TcpStream::connect(proxy.addr()).is_ok());
        proxy.shutdown();
    }
}
