//! CRC-32 (IEEE 802.3 polynomial) used to checksum frame payloads.
//!
//! Table-driven, one byte per step. Frames are small (a few KiB at most) so
//! this is far from the bottleneck; the checksum exists to reject corrupted
//! or desynchronized streams deterministically rather than to win
//! throughput records.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"heartbeat telemetry payload".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
