//! CRC-32 (IEEE 802.3 polynomial) used to checksum frame payloads.
//!
//! Slicing-by-8: eight 256-entry tables (built at compile time) let the hot
//! loop fold eight payload bytes per step instead of one, roughly a 4–6×
//! speedup over the classic byte-at-a-time table walk. The polynomial,
//! initial value and final XOR are the ubiquitous "CRC-32" of zlib and
//! Ethernet, so every check value is unchanged — only the throughput is.
//! Frame payloads are what gets summed: with v3 compact framing pushing
//! batches toward payload-bound sizes, the CRC pass is a real fraction of
//! encode/decode cost and worth the table space (8 KiB).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing tables: `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` is the CRC contribution of byte `b` seen `k` positions
/// before the current window end.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// One byte-at-a-time step, for the unaligned head and tail.
#[inline]
fn step(crc: u32, byte: u8) -> u32 {
    (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize]
}

/// Computes the CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("8-byte chunk")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("8-byte chunk"));
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = step(crc, byte);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original one-byte-per-step implementation, kept as the reference
    /// the sliced version must agree with on every input.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &byte in bytes {
            crc = step(crc, byte);
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // A vector long enough to exercise the 8-byte folding loop.
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length() {
        // Lengths 0..=64 cover every head/tail alignment of the 8-byte loop.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 24) as u8)
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"heartbeat telemetry payload".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
