//! # hb-net — remote heartbeat telemetry
//!
//! The Application Heartbeats paper designs its API so that *external*
//! observers — the OS, a runtime, another machine — can read an
//! application's progress and goals. The sibling crates cover the same-host
//! cases (in-process readers, `hb-shm` file/shared-memory mirrors); this
//! crate takes the final step and ships heartbeat streams **off-box**:
//!
//! * [`wire`] — a compact, versioned binary wire protocol (length-prefixed,
//!   CRC-checked frames) for heartbeat batches, target-rate changes and
//!   application hello/goodbye. Batches ship either as fixed 29-byte
//!   records (v2) or, negotiated per connection, as delta/varint **compact
//!   records** (v3, ~5–7 bytes per beat); both decode through the
//!   zero-allocation [`wire::BeatsView`] iterator.
//! * [`frame`] — frame readers/writers over any `Read`/`Write` transport,
//!   plus the incremental decoder whose [`frame::FrameEvent`]s borrow beat
//!   payloads in place.
//! * [`TcpBackend`] — a [`heartbeats::Backend`] that buffers beats in a
//!   bounded queue and ships batches from a background flusher thread. The
//!   `on_beat` hot path never blocks: when the collector is slow or down the
//!   oldest queued beats are shed and counted (`Backend::stats`).
//! * [`Collector`] — a daemon accepting many concurrent producers,
//!   maintaining a sharded per-app registry of windowed rates
//!   (server-side [`heartbeats::MovingRate`]) and goals, and serving a
//!   line-based query port with a Prometheus-style text export.
//! * [`RemoteReader`] / [`RemoteApp`] — the observer-side client;
//!   `RemoteApp` implements [`heartbeats::Observe`] (which carries blanket
//!   `control::RateSource`/`HealthSource` impls) so a
//!   [`control::ControlLoop`] can drive adaptation from a collector instead
//!   of a local reader — polling, or consuming **pushed** events through
//!   [`RemoteReader::subscribe`] / the [`subscribe`] fan-out plane
//!   (collector-side subscription registry, bounded per-subscriber queues,
//!   ingest-time health transitions; see `docs/OBSERVERS.md`).
//! * [`telemetry`] — the collector watching itself: per-stage latency
//!   histograms, per-reactor-thread utilization, and a lock-free journal of
//!   recent events behind the [`log!`] macro (see `docs/TELEMETRY.md`).
//!
//! ## End-to-end sketch
//!
//! ```no_run
//! use std::sync::Arc;
//! use hb_net::{Collector, RemoteReader, TcpBackend};
//! use heartbeats::HeartbeatBuilder;
//!
//! // Somewhere on the network: the collector daemon.
//! let collector = Collector::bind("127.0.0.1:0", "127.0.0.1:0").unwrap();
//!
//! // In the application: mirror beats to the collector.
//! let backend = Arc::new(TcpBackend::new(
//!     collector.ingest_addr().to_string(),
//!     "video-encoder",
//! ));
//! let hb = HeartbeatBuilder::new("video-encoder")
//!     .backend(backend)
//!     .build()
//!     .unwrap();
//! hb.set_target_rate(30.0, 35.0).unwrap();
//! hb.heartbeat();
//!
//! // In the observer: read progress and goals remotely.
//! let reader = Arc::new(RemoteReader::connect(collector.query_addr().to_string()).unwrap());
//! let app = reader.app("video-encoder");
//! # let _ = app;
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auth;
pub mod backend;
pub mod client;
pub mod collector;
pub mod crc;
mod error;
pub mod faultnet;
pub mod frame;
pub mod health;
pub mod reactor;
pub mod subscribe;
pub mod telemetry;
pub mod upstream;
pub mod wire;

pub use auth::{hmac_sha256, sha256};
pub use backend::{TcpBackend, TcpBackendConfig};
pub use faultnet::{FaultConfig, FaultProxy, FaultStats};
pub use client::{CollectorStats, RemoteApp, RemoteReader, Subscription};
pub use collector::{
    AppSnapshot, Collector, CollectorConfig, CollectorState, OriginRollup, OriginSnapshot,
    UplinkRejectReason,
};
pub use error::{NetError, Result};
pub use frame::{FrameDecoder, FrameReader, FrameWriter};
pub use health::{
    HealthConfig, HealthReason, HealthReport, HealthStatus, HistoryRing, HistorySample,
};
pub use reactor::{Reactor, ReactorConfig};
pub use subscribe::{LocalSubscription, SubscriptionRegistry};
pub use upstream::{UpstreamConfig, UpstreamRelay, UpstreamStats, UpstreamTap};
pub use telemetry::{
    HistoSnapshot, Journal, JournalEntry, LatencyHisto, Level, PipelineTelemetry, ReactorThreads,
    ThreadStats, ThreadStatsSnapshot,
};
pub use wire::{
    BatchEncoder, BeatBatch, EventFrame, EventPayload, Frame, HealthFrame, Hello, HistoryChunk,
    SubStatus, SubscribeReq, WireBeat,
};
